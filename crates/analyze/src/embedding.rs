//! Quantitative cluster-quality scores for embeddings.
//!
//! The paper's Fig. 11 shows *visually* that retraining turns a diffuse
//! hypervector cloud into per-class clusters. To make that claim testable
//! we score embeddings numerically: a Fisher-style separation ratio and
//! k-nearest-neighbour label agreement.

use nshd_tensor::Tensor;

/// Fisher separation ratio: between-class variance over within-class
/// variance of an `N×d` embedding. Higher = better-separated classes.
///
/// # Panics
///
/// Panics if shapes disagree or the embedding is empty.
pub fn fisher_ratio(embedding: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(embedding.shape().rank(), 2, "expected N×d embedding");
    let (n, d) = (embedding.dims()[0], embedding.dims()[1]);
    assert_eq!(n, labels.len(), "embedding/label count mismatch");
    assert!(n > 0, "empty embedding");
    let k = labels.iter().max().map(|m| m + 1).unwrap_or(0);
    let x = embedding.as_slice();

    let mut global = vec![0.0f64; d];
    for row in x.chunks(d) {
        for (g, &v) in global.iter_mut().zip(row) {
            *g += v as f64;
        }
    }
    for g in &mut global {
        *g /= n as f64;
    }

    let mut centroids = vec![vec![0.0f64; d]; k];
    let mut counts = vec![0usize; k];
    for (row, &label) in x.chunks(d).zip(labels) {
        counts[label] += 1;
        for (c, &v) in centroids[label].iter_mut().zip(row) {
            *c += v as f64;
        }
    }
    for (c, &count) in centroids.iter_mut().zip(&counts) {
        if count > 0 {
            for v in c.iter_mut() {
                *v /= count as f64;
            }
        }
    }

    let mut between = 0.0f64;
    for (c, &count) in centroids.iter().zip(&counts) {
        if count == 0 {
            continue;
        }
        let dist2: f64 = c.iter().zip(&global).map(|(a, b)| (a - b).powi(2)).sum();
        between += count as f64 * dist2;
    }
    let mut within = 0.0f64;
    for (row, &label) in x.chunks(d).zip(labels) {
        within +=
            row.iter().zip(&centroids[label]).map(|(&v, &c)| (v as f64 - c).powi(2)).sum::<f64>();
    }
    if within < 1e-12 {
        return f32::INFINITY;
    }
    (between / within) as f32
}

/// Leave-one-out k-NN label agreement in the embedding: the fraction of
/// points whose majority label among the `k` nearest neighbours matches
/// their own.
///
/// # Panics
///
/// Panics if shapes disagree, `k == 0`, or there are fewer than `k + 1`
/// points.
pub fn knn_agreement(embedding: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert_eq!(embedding.shape().rank(), 2);
    let (n, d) = (embedding.dims()[0], embedding.dims()[1]);
    assert_eq!(n, labels.len(), "embedding/label count mismatch");
    assert!(k > 0 && n > k, "need more than k points");
    let x = embedding.as_slice();
    let num_classes = labels.iter().max().map(|m| m + 1).unwrap_or(1);
    let mut hits = 0usize;
    for i in 0..n {
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let mut s = 0.0;
                for t in 0..d {
                    let diff = x[i * d + t] - x[j * d + t];
                    s += diff * diff;
                }
                (s, labels[j])
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut votes = vec![0usize; num_classes];
        for &(_, l) in dists.iter().take(k) {
            votes[l] += 1;
        }
        let majority = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .expect("at least one class");
        if majority == labels[i] {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

/// Mean silhouette coefficient of an `N×d` embedding under the given
/// labels: `(b − a) / max(a, b)` per point, where `a` is the mean
/// intra-class distance and `b` the mean distance to the nearest other
/// class. Ranges over `[-1, 1]`; higher = tighter, better-separated
/// clusters.
///
/// Points whose class has a single member contribute 0 (the sklearn
/// convention).
///
/// # Panics
///
/// Panics if shapes disagree or fewer than two classes are present.
pub fn silhouette(embedding: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(embedding.shape().rank(), 2, "expected N×d embedding");
    let (n, d) = (embedding.dims()[0], embedding.dims()[1]);
    assert_eq!(n, labels.len(), "embedding/label count mismatch");
    let k = labels.iter().max().map(|m| m + 1).unwrap_or(0);
    let distinct = {
        let mut seen = vec![false; k];
        for &l in labels {
            seen[l] = true;
        }
        seen.iter().filter(|&&v| v).count()
    };
    assert!(distinct >= 2, "silhouette needs at least two classes");
    let x = embedding.as_slice();
    let dist = |i: usize, j: usize| -> f32 {
        let mut s = 0.0;
        for t in 0..d {
            let diff = x[i * d + t] - x[j * d + t];
            s += diff * diff;
        }
        s.sqrt()
    };
    let mut total = 0.0f64;
    for i in 0..n {
        // Mean distance to every class.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += dist(i, j) as f64;
            counts[labels[j]] += 1;
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue; // singleton class: contributes 0
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    (total / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(sep: f32) -> (Tensor, Vec<usize>) {
        // Two 2-D blobs with centres ±sep on x.
        let n_per = 15;
        let mut labels = Vec::new();
        let emb = Tensor::from_fn([2 * n_per, 2], |idx| {
            let i = idx / 2;
            let j = idx % 2;
            let cls = i / n_per;
            let jitter = (((i * 31 + j * 17) % 13) as f32 - 6.0) / 12.0;
            if j == 0 {
                (if cls == 0 { -sep } else { sep }) + jitter
            } else {
                jitter
            }
        });
        for i in 0..2 * n_per {
            labels.push(i / n_per);
        }
        (emb, labels)
    }

    #[test]
    fn fisher_ratio_grows_with_separation() {
        let (tight, labels) = blobs(5.0);
        let (loose, _) = blobs(0.2);
        assert!(fisher_ratio(&tight, &labels) > 10.0 * fisher_ratio(&loose, &labels));
    }

    #[test]
    fn knn_agreement_is_high_for_separated_blobs() {
        let (emb, labels) = blobs(5.0);
        assert!(knn_agreement(&emb, &labels, 3) > 0.95);
        let (mixed, labels2) = blobs(0.01);
        assert!(knn_agreement(&mixed, &labels2, 3) < 0.95);
    }

    #[test]
    fn identical_points_per_class_give_infinite_fisher() {
        let emb = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0], [4, 2]).unwrap();
        let labels = vec![0, 0, 1, 1];
        assert!(fisher_ratio(&emb, &labels).is_infinite());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn label_count_mismatch_panics() {
        fisher_ratio(&Tensor::zeros([3, 2]), &[0, 1]);
    }

    #[test]
    fn silhouette_tracks_separation() {
        let (tight, labels) = blobs(5.0);
        let (loose, _) = blobs(0.1);
        let s_tight = silhouette(&tight, &labels);
        let s_loose = silhouette(&loose, &labels);
        assert!(s_tight > 0.7, "tight blobs silhouette {s_tight}");
        assert!(s_tight > s_loose + 0.3, "{s_tight} vs {s_loose}");
        assert!((-1.0..=1.0).contains(&s_loose));
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn silhouette_single_class_panics() {
        silhouette(&Tensor::zeros([4, 2]), &[0, 0, 0, 0]);
    }
}
