//! # nshd-analyze
//!
//! Analysis tooling for the NSHD workspace: an exact t-SNE implementation
//! (the paper's Fig. 11 explainability study), power-iteration PCA used
//! for embedding initialisation, classification metrics, and quantitative
//! cluster-quality scores that turn Fig. 11's visual claim into a
//! testable number.
//!
//! # Examples
//!
//! ```
//! use nshd_analyze::{tsne, TsneConfig};
//! use nshd_tensor::Tensor;
//!
//! let data = Tensor::from_fn([30, 8], |i| (i as f32 * 0.37).sin());
//! let cfg = TsneConfig { iterations: 50, perplexity: 8.0, ..TsneConfig::default() };
//! let embedding = tsne(&data, &cfg);
//! assert_eq!(embedding.dims(), &[30, 2]);
//! ```

#![warn(missing_docs)]

mod embedding;
mod metrics;
mod pca;
mod tsne;

pub use embedding::{fisher_ratio, knn_agreement, silhouette};
pub use metrics::{top_k_accuracy, ConfusionMatrix};
pub use pca::pca_project;
pub use tsne::{tsne, TsneConfig};
