//! Classification metrics: confusion matrix, accuracy, top-k.

/// A `k×k` confusion matrix: rows = true class, columns = prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, `num_classes == 0`, or an index is out of
    /// range.
    pub fn new(predictions: &[usize], labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
        assert!(num_classes > 0);
        let mut counts = vec![0u64; num_classes * num_classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < num_classes && l < num_classes, "class index out of range");
            counts[l * num_classes + p] += 1;
        }
        ConfusionMatrix { k: num_classes, counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Count of samples with true class `label` predicted as `pred`.
    pub fn count(&self, label: usize, pred: usize) -> u64 {
        self.counts[label * self.k + pred]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (diagonal over row sum); `None` for absent
    /// classes.
    pub fn recall(&self, label: usize) -> Option<f32> {
        let row: u64 = (0..self.k).map(|p| self.count(label, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(label, label) as f32 / row as f32)
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    /// Renders the matrix as an aligned text table (rows = true class,
    /// columns = prediction), with per-class recall in the margin.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "true\\pred")?;
        for p in 0..self.k {
            write!(f, "{p:>6}")?;
        }
        writeln!(f, "  recall")?;
        for l in 0..self.k {
            write!(f, "{l:>9}")?;
            for p in 0..self.k {
                write!(f, "{:>6}", self.count(l, p))?;
            }
            match self.recall(l) {
                Some(r) => writeln!(f, "  {r:>6.3}")?,
                None => writeln!(f, "       —")?,
            }
        }
        Ok(())
    }
}

/// Top-k accuracy from per-sample score vectors.
///
/// # Panics
///
/// Panics if lengths differ or a score row is shorter than `k`.
pub fn top_k_accuracy(scores: &[Vec<f32>], labels: &[usize], k: usize) -> f32 {
    assert_eq!(scores.len(), labels.len(), "scores/label length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for (row, &label) in scores.iter().zip(labels) {
        assert!(row.len() >= k, "need at least {k} scores per sample");
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite scores"));
        if idx[..k].contains(&label) {
            hits += 1;
        }
    }
    hits as f32 / scores.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_accuracy() {
        let preds = [0, 1, 1, 2, 0];
        let labels = [0, 1, 2, 2, 1];
        let cm = ConfusionMatrix::new(&preds, &labels, 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(2, 1), 1);
        assert_eq!(cm.count(2, 2), 1);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-6);
        assert_eq!(cm.recall(2), Some(0.5));
        assert_eq!(cm.num_classes(), 3);
    }

    #[test]
    fn recall_none_for_absent_class() {
        let cm = ConfusionMatrix::new(&[0], &[0], 3);
        assert_eq!(cm.recall(1), None);
    }

    #[test]
    fn display_renders_counts_and_recall() {
        let cm = ConfusionMatrix::new(&[0, 1, 1], &[0, 1, 0], 2);
        let text = cm.to_string();
        assert!(text.contains("recall"), "{text}");
        assert!(text.contains("0.500"), "{text}"); // class 0 recall
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn top_k_behaviour() {
        let scores = vec![vec![0.1, 0.9, 0.0], vec![0.5, 0.3, 0.2]];
        let labels = [0usize, 0];
        assert!((top_k_accuracy(&scores, &labels, 1) - 0.5).abs() < 1e-6);
        assert!((top_k_accuracy(&scores, &labels, 2) - 1.0).abs() < 1e-6);
        assert_eq!(top_k_accuracy(&[], &[], 1), 0.0);
    }
}
