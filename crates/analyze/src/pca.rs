//! Principal component analysis via power iteration, used to initialise
//! t-SNE embeddings deterministically.

use nshd_tensor::{Rng, Tensor};

/// Projects row-vector data (`N×F`) onto its top `k` principal
/// components, returning an `N×k` tensor.
///
/// Components are extracted by power iteration with deflation — ample for
/// the `k = 2` initialisation t-SNE needs.
///
/// # Panics
///
/// Panics if `data` is not rank-2, is empty, or `k` exceeds the feature
/// count.
pub fn pca_project(data: &Tensor, k: usize, seed: u64) -> Tensor {
    assert_eq!(data.shape().rank(), 2, "pca expects N×F data");
    let (n, f) = (data.dims()[0], data.dims()[1]);
    assert!(n > 0 && f > 0, "pca requires non-empty data");
    assert!(k <= f, "cannot extract {k} components from {f} features");

    // Centre the data.
    let mut centred = data.clone();
    let mut means = vec![0.0f32; f];
    for row in data.as_slice().chunks(f) {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f32;
    }
    for row in centred.as_mut_slice().chunks_mut(f) {
        for (v, &m) in row.iter_mut().zip(&means) {
            *v -= m;
        }
    }

    let mut rng = Rng::new(seed);
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    let x = centred.as_slice();
    for _ in 0..k {
        // Power iteration on XᵀX without forming it: v ← Xᵀ(Xv).
        let mut v: Vec<f32> = (0..f).map(|_| rng.normal()).collect();
        normalize(&mut v);
        for _ in 0..50 {
            // Deflate previously found components.
            for comp in &components {
                let d = dot(&v, comp);
                for (vi, &ci) in v.iter_mut().zip(comp) {
                    *vi -= d * ci;
                }
            }
            let mut xv = vec![0.0f32; n];
            for (i, row) in x.chunks(f).enumerate() {
                xv[i] = dot(row, &v);
            }
            let mut xtxv = vec![0.0f32; f];
            for (i, row) in x.chunks(f).enumerate() {
                let s = xv[i];
                if s == 0.0 {
                    continue;
                }
                for (a, &r) in xtxv.iter_mut().zip(row) {
                    *a += s * r;
                }
            }
            let norm = normalize(&mut xtxv);
            if norm < 1e-12 {
                break; // degenerate direction; keep the previous v
            }
            v = xtxv;
        }
        components.push(v);
    }

    let mut out = Tensor::zeros([n, k]);
    for (i, row) in x.chunks(f).enumerate() {
        for (j, comp) in components.iter().enumerate() {
            *out.at_mut(&[i, j]) = dot(row, comp);
        }
    }
    out
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along (1, 1, 0) with small noise: PC1 scores must
        // carry almost all the variance.
        let n = 60;
        let mut rng = Rng::new(1);
        let data = Tensor::from_fn([n, 3], |idx| {
            let i = idx / 3;
            let j = idx % 3;
            let t = (i as f32 / n as f32 - 0.5) * 10.0;
            let noise = rng.normal() * 0.05;
            match j {
                0 | 1 => t + noise,
                _ => noise,
            }
        });
        let proj = pca_project(&data, 2, 7);
        let var = |j: usize| -> f32 {
            let vals: Vec<f32> = (0..n).map(|i| proj.at(&[i, j])).collect();
            let mean: f32 = vals.iter().sum::<f32>() / n as f32;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32
        };
        assert!(var(0) > 20.0 * var(1), "PC1 var {} vs PC2 var {}", var(0), var(1));
    }

    #[test]
    fn projection_is_centred() {
        let data = Tensor::from_fn([20, 4], |i| ((i * 13 % 17) as f32) + 100.0);
        let proj = pca_project(&data, 2, 3);
        for j in 0..2 {
            let mean: f32 = (0..20).map(|i| proj.at(&[i, j])).sum::<f32>() / 20.0;
            assert!(mean.abs() < 1e-2, "component {j} mean {mean}");
        }
    }

    #[test]
    fn output_shape() {
        let data = Tensor::from_fn([5, 8], |i| i as f32);
        assert_eq!(pca_project(&data, 2, 0).dims(), &[5, 2]);
    }

    #[test]
    #[should_panic(expected = "components")]
    fn too_many_components_panics() {
        pca_project(&Tensor::zeros([3, 2]), 3, 0);
    }
}
