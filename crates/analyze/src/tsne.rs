//! Exact (O(N²)) t-SNE, used to reproduce the paper's Fig. 11
//! explainability analysis of sample hypervectors.

use crate::pca::pca_project;
use nshd_tensor::Tensor;

/// t-SNE hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Total gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor (applied for the first quarter of the
    /// iterations).
    pub exaggeration: f32,
    /// Seed for the PCA initialisation.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 120.0,
            exaggeration: 12.0,
            seed: 42,
        }
    }
}

/// Embeds `N×F` row-vector data into 2-D with exact t-SNE.
///
/// Returns an `N×2` tensor. Suitable up to a few thousand points — the
/// scale of the paper's Fig. 11.
///
/// # Panics
///
/// Panics if `data` is not rank-2 or has fewer than 3 rows.
pub fn tsne(data: &Tensor, config: &TsneConfig) -> Tensor {
    assert_eq!(data.shape().rank(), 2, "tsne expects N×F data");
    let n = data.dims()[0];
    assert!(n >= 3, "tsne needs at least 3 points");
    let p = joint_probabilities(data, config.perplexity);

    // PCA initialisation, scaled down (standard practice).
    let mut y = pca_project(data, 2.min(data.dims()[1]), config.seed);
    if y.dims()[1] < 2 {
        // Degenerate 1-feature input: pad a zero column.
        let col = y.clone();
        y = Tensor::from_fn([n, 2], |idx| if idx % 2 == 0 { col.as_slice()[idx / 2] } else { 0.0 });
    }
    let scale = y.as_slice().iter().map(|v| v.abs()).fold(0.0f32, f32::max).max(1e-6);
    y = y.scale(1e-2 / scale);

    let mut velocity = vec![0.0f32; n * 2];
    let mut gains = vec![1.0f32; n * 2];
    let exaggeration_until = config.iterations / 4;

    for iter in 0..config.iterations {
        let momentum = if iter < exaggeration_until { 0.5 } else { 0.8 };
        let p_mult = if iter < exaggeration_until { config.exaggeration } else { 1.0 };

        // Student-t affinities in the embedding.
        let yv = y.as_slice();
        let mut q_num = vec![0.0f32; n * n];
        let mut q_sum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = yv[i * 2] - yv[j * 2];
                let dy1 = yv[i * 2 + 1] - yv[j * 2 + 1];
                let num = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q_num[i * n + j] = num;
                q_num[j * n + i] = num;
                q_sum += 2.0 * num;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij − q_ij) q_num_ij (y_i − y_j).
        let mut grad = vec![0.0f32; n * 2];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = p[i * n + j] * p_mult;
                let qij = q_num[i * n + j] / q_sum;
                let mult = 4.0 * (pij - qij) * q_num[i * n + j];
                grad[i * 2] += mult * (yv[i * 2] - yv[j * 2]);
                grad[i * 2 + 1] += mult * (yv[i * 2 + 1] - yv[j * 2 + 1]);
            }
        }

        // Gain-adaptive momentum update (van der Maaten's schedule).
        let yv = y.as_mut_slice();
        for k in 0..n * 2 {
            let same_sign = grad[k].signum() == velocity[k].signum();
            gains[k] = if same_sign { (gains[k] * 0.8).max(0.01) } else { gains[k] + 0.2 };
            velocity[k] = momentum * velocity[k] - config.learning_rate * gains[k] * grad[k];
            yv[k] += velocity[k];
        }

        // Re-centre.
        let (mut m0, mut m1) = (0.0f32, 0.0f32);
        for i in 0..n {
            m0 += yv[i * 2];
            m1 += yv[i * 2 + 1];
        }
        m0 /= n as f32;
        m1 /= n as f32;
        for i in 0..n {
            yv[i * 2] -= m0;
            yv[i * 2 + 1] -= m1;
        }
    }
    y
}

/// Symmetrised joint probabilities `p_ij` from a perplexity-calibrated
/// Gaussian kernel.
fn joint_probabilities(data: &Tensor, perplexity: f32) -> Vec<f32> {
    let (n, f) = (data.dims()[0], data.dims()[1]);
    let x = data.as_slice();
    // Pairwise squared distances.
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0;
            for k in 0..f {
                let d = x[i * f + k] - x[j * f + k];
                s += d * d;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2σ²) for the target entropy.
        let row = &d2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f32, 0.0f32, f32::INFINITY);
        let mut probs = vec![0.0f32; n];
        for _ in 0..60 {
            let mut sum = 0.0f32;
            for (j, pj) in probs.iter_mut().enumerate() {
                *pj = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += *pj;
            }
            let sum = sum.max(1e-12);
            let mut entropy = 0.0f32;
            for pj in probs.iter_mut() {
                *pj /= sum;
                if *pj > 1e-12 {
                    entropy -= *pj * pj.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                beta_lo = beta;
                beta = if beta_hi.is_finite() { (beta + beta_hi) / 2.0 } else { beta * 2.0 };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        for (j, &pj) in probs.iter().enumerate() {
            p[i * n + j] = pj;
        }
    }
    // Symmetrise and normalise.
    let mut joint = vec![0.0f32; n * n];
    let norm = 2.0 * n as f32;
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / norm).max(1e-12);
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    /// Two well-separated Gaussian blobs in 10-D must stay separated in
    /// the embedding.
    #[test]
    fn separates_two_blobs() {
        let n_per = 20;
        let mut rng = Rng::new(1);
        let data = Tensor::from_fn([2 * n_per, 10], |idx| {
            let i = idx / 10;
            let centre = if i < n_per { -5.0 } else { 5.0 };
            centre + rng.normal() * 0.3
        });
        let cfg = TsneConfig { iterations: 250, perplexity: 10.0, ..TsneConfig::default() };
        let y = tsne(&data, &cfg);
        // Measure separation along the axis of largest spread.
        let a: Vec<(f32, f32)> = (0..n_per).map(|i| (y.at(&[i, 0]), y.at(&[i, 1]))).collect();
        let b: Vec<(f32, f32)> =
            (n_per..2 * n_per).map(|i| (y.at(&[i, 0]), y.at(&[i, 1]))).collect();
        let centroid = |pts: &[(f32, f32)]| {
            let n = pts.len() as f32;
            (pts.iter().map(|p| p.0).sum::<f32>() / n, pts.iter().map(|p| p.1).sum::<f32>() / n)
        };
        let (ax, ay) = centroid(&a);
        let (bx, by) = centroid(&b);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let spread = |pts: &[(f32, f32)], c: (f32, f32)| {
            pts.iter().map(|p| ((p.0 - c.0).powi(2) + (p.1 - c.1).powi(2)).sqrt()).sum::<f32>()
                / pts.len() as f32
        };
        let within = spread(&a, (ax, ay)) + spread(&b, (bx, by));
        assert!(between > within, "blobs not separated: between {between}, within {within}");
    }

    #[test]
    fn output_shape_and_centering() {
        let data = Tensor::from_fn([12, 4], |i| ((i * 31 % 23) as f32) / 23.0);
        let y =
            tsne(&data, &TsneConfig { iterations: 50, perplexity: 5.0, ..TsneConfig::default() });
        assert_eq!(y.dims(), &[12, 2]);
        for j in 0..2 {
            let mean: f32 = (0..12).map(|i| y.at(&[i, j])).sum::<f32>() / 12.0;
            assert!(mean.abs() < 1e-3, "axis {j} mean {mean}");
        }
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_given_config() {
        let data = Tensor::from_fn([10, 3], |i| (i as f32 * 0.7).sin());
        let cfg = TsneConfig { iterations: 40, perplexity: 4.0, ..TsneConfig::default() };
        assert_eq!(tsne(&data, &cfg), tsne(&data, &cfg));
    }

    #[test]
    fn joint_probabilities_are_symmetric_and_normalised() {
        let data = Tensor::from_fn([8, 5], |i| ((i * 7 % 11) as f32) / 11.0);
        let p = joint_probabilities(&data, 4.0);
        let n = 8;
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        for i in 0..n {
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        tsne(&Tensor::zeros([2, 4]), &TsneConfig::default());
    }
}
