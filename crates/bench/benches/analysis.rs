//! Criterion benches for the analysis tooling (t-SNE iterations, PCA),
//! sized to the paper's Fig. 11 workload.

use criterion::{criterion_group, criterion_main, Criterion};
use nshd_analyze::{pca_project, tsne, TsneConfig};
use nshd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_tsne(c: &mut Criterion) {
    let mut rng = Rng::new(21);
    let data = Tensor::from_fn([200, 100], |_| rng.normal());
    let mut group = c.benchmark_group("analysis");
    group.bench_function("tsne_200x100_50iter", |b| {
        let cfg = TsneConfig { iterations: 50, perplexity: 15.0, ..TsneConfig::default() };
        b.iter(|| black_box(tsne(black_box(&data), &cfg)))
    });
    group.bench_function("pca_200x100_top2", |b| {
        b.iter(|| black_box(pca_project(black_box(&data), 2, 3)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tsne
}
criterion_main!(benches);
