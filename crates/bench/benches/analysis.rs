//! Benches for the analysis tooling (t-SNE iterations, PCA),
//! sized to the paper's Fig. 11 workload.

use nshd_analyze::{pca_project, tsne, TsneConfig};
use nshd_bench::timing::Group;
use nshd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_tsne() {
    let mut rng = Rng::new(21);
    let data = Tensor::from_fn([200, 100], |_| rng.normal());
    let group = Group::new("analysis");
    let cfg = TsneConfig { iterations: 50, perplexity: 15.0, ..TsneConfig::default() };
    group.bench("tsne_200x100_50iter", || black_box(tsne(black_box(&data), &cfg)));
    group.bench("pca_200x100_top2", || black_box(pca_project(black_box(&data), 2, 3)));
}

fn main() {
    bench_tsne();
}
