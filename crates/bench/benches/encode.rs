//! Benches for HD encoding throughput — the operation the paper
//! identifies as HD learning's main bottleneck, and the reason the
//! manifold learner exists.

use nshd_bench::timing::Group;
use nshd_hdc::{LshEncoder, NonlinearEncoder, RandomProjection};
use nshd_tensor::Rng;
use std::hint::black_box;

fn feature_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.normal()).collect()
}

/// Random-projection encode at the manifold width (F̂ = 100) vs the raw
/// extracted width (F = 2048) — the Fig. 5 contrast, in wall-clock form.
fn bench_projection() {
    let group = Group::new("encode/projection");
    for &(features, label) in &[(100usize, "manifold_100"), (2048, "raw_2048")] {
        let proj = RandomProjection::new(features, 3_000, 7);
        let v = feature_vec(features, 1);
        group.bench(label, || black_box(proj.encode(black_box(&v))));
    }
}

/// The three encoder families at a common width.
fn bench_encoder_families() {
    let group = Group::new("encode/families");
    let features = 256;
    let dim = 3_000;
    let v = feature_vec(features, 2);
    let proj = RandomProjection::new(features, dim, 3);
    group.bench("random_projection", || black_box(proj.encode(black_box(&v))));
    let nonlin = NonlinearEncoder::new(features, dim, 32, -3.0, 3.0, 4);
    group.bench("nonlinear_id_level", || black_box(nonlin.encode(black_box(&v))));
    let lsh = LshEncoder::new(features, dim, 5);
    group.bench("lsh_hyperplane", || black_box(lsh.encode(black_box(&v))));
}

/// Packed (popcount) vs dense similarity — the paper's binary-kernel
/// optimisation, realised on CPU.
fn bench_similarity() {
    let group = Group::new("similarity");
    let dim = 10_000;
    let mut rng = Rng::new(9);
    let signs_a: Vec<f32> = (0..dim).map(|_| rng.bipolar()).collect();
    let signs_b: Vec<f32> = (0..dim).map(|_| rng.bipolar()).collect();
    let a = nshd_hdc::BipolarHv::from_signs(&signs_a);
    let b_hv = nshd_hdc::BipolarHv::from_signs(&signs_b);
    let dense_a = a.to_f32();
    let pa = a.to_packed();
    let pb = b_hv.to_packed();
    group.bench("dense_dot_10k", || {
        black_box(nshd_hdc::dot_dense_bipolar(black_box(&dense_a), black_box(&b_hv)))
    });
    group.bench("packed_popcount_10k", || black_box(black_box(&pa).dot(black_box(&pb))));
}

fn main() {
    bench_projection();
    bench_encoder_families();
    bench_similarity();
}
