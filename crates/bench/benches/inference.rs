//! Criterion benches for end-to-end inference: the full CNN vs NSHD with
//! a truncated extractor — the wall-clock form of the paper's
//! execution-time-reduction claim, on our analog models.

use criterion::{criterion_group, criterion_main, Criterion};
use nshd_core::{NshdConfig, NshdModel};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_nn::{fit, Adam, Architecture, Mode, TrainConfig};
use nshd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    // One small trained pipeline (training cost paid once, outside the
    // timing loops).
    let (mut train, mut test) = SynthSpec::synth10(71).with_sizes(120, 20).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(3);
    let mut teacher = Architecture::EfficientNetB0.build(10, &mut rng);
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 2, batch_size: 32, seed: 1, ..TrainConfig::default() },
    );
    let cut = 6; // the earliest paper cut: largest truncation saving
    let cfg = NshdConfig::new(cut).with_hv_dim(3_000).with_retrain_epochs(2).with_seed(5);
    let mut cnn = teacher.clone();
    let mut nshd = NshdModel::train(teacher, &train, cfg);
    let (image, _) = test.sample(0);
    let batched = image.reshape([1, 3, 32, 32]).expect("CHW image");

    let mut group = c.benchmark_group("inference/efficientnetb0");
    group.bench_function("cnn_full", |b| {
        b.iter(|| black_box(cnn.forward(black_box(&batched), Mode::Eval)))
    });
    group.bench_function("nshd_cut5", |b| {
        b.iter(|| black_box(nshd.predict(black_box(&image))))
    });
    group.finish();
}

fn bench_cnn_forward_per_arch(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_forward");
    let x = Tensor::zeros([1, 3, 32, 32]);
    for arch in [Architecture::MobileNetV2, Architecture::EfficientNetB0, Architecture::Vgg16] {
        let mut rng = Rng::new(4);
        let mut model = arch.build(10, &mut rng);
        group.bench_function(arch.display_name(), |b| {
            b.iter(|| black_box(model.forward(black_box(&x), Mode::Eval)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference, bench_cnn_forward_per_arch
}
criterion_main!(benches);
