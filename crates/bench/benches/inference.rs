//! Benches for end-to-end inference: the full CNN vs NSHD with
//! a truncated extractor — the wall-clock form of the paper's
//! execution-time-reduction claim, on our analog models.

use nshd_bench::timing::Group;
use nshd_core::{NshdConfig, NshdModel};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_nn::{fit, Adam, Architecture, Mode, TrainConfig};
use nshd_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_inference() {
    // One small trained pipeline (training cost paid once, outside the
    // timing loops).
    let (mut train, mut test) = SynthSpec::synth10(71).with_sizes(120, 20).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(3);
    let mut teacher = Architecture::EfficientNetB0.build(10, &mut rng);
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 2, batch_size: 32, seed: 1, ..TrainConfig::default() },
    );
    let cut = 6; // the earliest paper cut: largest truncation saving
    let cfg = NshdConfig::new(cut).with_hv_dim(3_000).with_retrain_epochs(2).with_seed(5);
    let mut cnn = teacher.clone();
    let nshd = NshdModel::train(teacher, &train, cfg);
    let (image, _) = test.sample(0);
    let batched = image.reshape([1, 3, 32, 32]).expect("CHW image");

    let group = Group::new("inference/efficientnetb0");
    group.bench("cnn_full", || black_box(cnn.forward(black_box(&batched), Mode::Eval)));
    group.bench("nshd_cut5", || black_box(nshd.predict(black_box(&image))));
}

fn bench_cnn_forward_per_arch() {
    let group = Group::new("cnn_forward");
    let x = Tensor::zeros([1, 3, 32, 32]);
    for arch in [Architecture::MobileNetV2, Architecture::EfficientNetB0, Architecture::Vgg16] {
        let mut rng = Rng::new(4);
        let mut model = arch.build(10, &mut rng);
        group.bench(arch.display_name(), || black_box(model.forward(black_box(&x), Mode::Eval)));
    }
}

fn main() {
    bench_inference();
    bench_cnn_forward_per_arch();
}
