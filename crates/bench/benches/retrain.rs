//! Benches for the HD retraining rules: plain MASS vs the
//! distillation-extended update of Algorithm 1.

use nshd_bench::timing::Group;
use nshd_hdc::{
    bundle_init, AssociativeMemory, BipolarHv, DistillConfig, DistillTrainer, MassTrainer,
    OnlineTrainer,
};
use nshd_tensor::Rng;
use std::hint::black_box;

fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
    BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
}

fn make_samples(n: usize, classes: usize, dim: usize) -> Vec<(BipolarHv, usize, Vec<f32>)> {
    let mut rng = Rng::new(11);
    (0..n)
        .map(|i| {
            let label = i % classes;
            let mut logits = vec![0.0f32; classes];
            logits[label] = 5.0;
            (random_hv(dim, &mut rng), label, logits)
        })
        .collect()
}

fn bench_retraining() {
    let dim = 3_000;
    let classes = 10;
    let samples = make_samples(200, classes, dim);
    let mass_samples: Vec<(BipolarHv, usize)> =
        samples.iter().map(|(h, l, _)| (h.clone(), *l)).collect();
    let init = bundle_init(classes, dim, &mass_samples);

    let group = Group::new("retrain_epoch_200x3000");
    let mass = MassTrainer::new(0.2);
    group.bench("mass", || {
        let mut memory = init.clone();
        black_box(mass.epoch(&mut memory, black_box(&mass_samples)))
    });
    let distill = DistillTrainer::new(DistillConfig::default());
    group.bench("distillation", || {
        let mut memory = init.clone();
        black_box(distill.epoch(&mut memory, black_box(&samples)))
    });
    let online = OnlineTrainer::new(0.2);
    group.bench("online_adaptive", || {
        let mut memory = init.clone();
        black_box(online.epoch(&mut memory, black_box(&mass_samples)))
    });
}

fn bench_memory_ops() {
    let dim = 3_000;
    let mut rng = Rng::new(13);
    let hv = random_hv(dim, &mut rng);
    let mut memory = AssociativeMemory::new(100, dim);
    for i in 0..100 {
        memory.bundle(i % 100, &random_hv(dim, &mut rng));
    }
    let group = Group::new("memory");
    group.bench("similarities_100x3000", || black_box(memory.similarities(black_box(&hv))));
    let mut write_memory = memory.clone();
    group.bench("bundle_3000", || write_memory.add_scaled(0, black_box(&hv), 0.1));
}

fn main() {
    bench_retraining();
    bench_memory_ops();
}
