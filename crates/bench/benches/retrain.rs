//! Criterion benches for the HD retraining rules: plain MASS vs the
//! distillation-extended update of Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use nshd_hdc::{
    bundle_init, AssociativeMemory, BipolarHv, DistillConfig, DistillTrainer, MassTrainer,
    OnlineTrainer,
};
use nshd_tensor::Rng;
use std::hint::black_box;

fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
    BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
}

fn make_samples(n: usize, classes: usize, dim: usize) -> Vec<(BipolarHv, usize, Vec<f32>)> {
    let mut rng = Rng::new(11);
    (0..n)
        .map(|i| {
            let label = i % classes;
            let mut logits = vec![0.0f32; classes];
            logits[label] = 5.0;
            (random_hv(dim, &mut rng), label, logits)
        })
        .collect()
}

fn bench_retraining(c: &mut Criterion) {
    let dim = 3_000;
    let classes = 10;
    let samples = make_samples(200, classes, dim);
    let mass_samples: Vec<(BipolarHv, usize)> =
        samples.iter().map(|(h, l, _)| (h.clone(), *l)).collect();
    let init = bundle_init(classes, dim, &mass_samples);

    let mut group = c.benchmark_group("retrain_epoch_200x3000");
    group.bench_function("mass", |b| {
        let trainer = MassTrainer::new(0.2);
        b.iter(|| {
            let mut memory = init.clone();
            black_box(trainer.epoch(&mut memory, black_box(&mass_samples)))
        })
    });
    group.bench_function("distillation", |b| {
        let trainer = DistillTrainer::new(DistillConfig::default());
        b.iter(|| {
            let mut memory = init.clone();
            black_box(trainer.epoch(&mut memory, black_box(&samples)))
        })
    });
    group.bench_function("online_adaptive", |b| {
        let trainer = OnlineTrainer::new(0.2);
        b.iter(|| {
            let mut memory = init.clone();
            black_box(trainer.epoch(&mut memory, black_box(&mass_samples)))
        })
    });
    group.finish();
}

fn bench_memory_ops(c: &mut Criterion) {
    let dim = 3_000;
    let mut rng = Rng::new(13);
    let hv = random_hv(dim, &mut rng);
    let mut memory = AssociativeMemory::new(100, dim);
    for i in 0..100 {
        memory.bundle(i % 100, &random_hv(dim, &mut rng));
    }
    let mut group = c.benchmark_group("memory");
    group.bench_function("similarities_100x3000", |b| {
        b.iter(|| black_box(memory.similarities(black_box(&hv))))
    });
    group.bench_function("bundle_3000", |b| {
        b.iter(|| memory.add_scaled(0, black_box(&hv), 0.1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_retraining, bench_memory_ops
}
criterion_main!(benches);
