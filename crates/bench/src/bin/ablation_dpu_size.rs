//! Ablation — DPU core-size design space: FPS, resource footprint, and
//! energy of NSHD vs the full CNN across the Vitis-AI core family
//! (B512–B4096), extending the paper's single-configuration Table I.

use nshd_bench::{print_header, print_row};
use nshd_core::{nshd_workload_from_stats, NshdConfig};
use nshd_hwmodel::{cnn_workload_from_stats, DpuModel, DpuSize};
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    let arch = Architecture::EfficientNetB0;
    let cut = arch.paper_cuts()[0];
    println!("# Ablation — DPU core-size sweep, {} (NSHD @ layer {})\n", arch, cut - 1);
    let stats = arch_stats(arch, SpecVariant::Reference, 10);
    let cnn = cnn_workload_from_stats(&stats, arch.display_name());
    let nshd = nshd_workload_from_stats(&stats, arch.display_name(), &NshdConfig::new(cut), 10);

    let widths = [7usize, 9, 9, 9, 10, 10, 12];
    print_header(
        &["core", "DSP", "LUT %", "power W", "CNN FPS", "NSHD FPS", "NSHD mJ/inf"],
        &widths,
    );
    for size in DpuSize::ALL {
        let dpu = DpuModel::zcu104_with_size(size);
        print_row(
            &[
                size.to_string(),
                format!("{}", dpu.dsp.used),
                format!("{:.1}", dpu.lut.utilization_percent()),
                format!("{:.2}", dpu.power_w),
                format!("{:.0}", dpu.fps(&cnn)),
                format!("{:.0}", dpu.fps(&nshd)),
                format!("{:.2}", dpu.energy_per_inference_mj(&nshd)),
            ],
            &widths,
        );
    }
    println!();
    println!("# Reading: NSHD's FPS advantage persists across core sizes, and small");
    println!("# cores trade throughput for a fraction of the fabric — the knob an");
    println!("# integrator turns when the ZCU104 budget is shared with other logic.");
}
