//! Ablation — manifold-learner design choices: output width F̂ (the paper
//! observes F̂ must be at least the class count, §VII-A), the
//! straight-through-estimator clip factor, and the manifold's presence.
//!
//! Not a paper figure; this regenerates the design-space evidence behind
//! the paper's hyperparameter choices (F̂ = 100, clipped STE).

use nshd_bench::{print_header, print_row, Bench};
use nshd_core::{nshd_macs, Classifier, NshdConfig, NshdModel};
use nshd_hdc::SteConfig;
use nshd_nn::Architecture;

fn main() {
    let bench = Bench::synth10(101);
    let arch = Architecture::EfficientNetB0;
    let cut = 8;
    let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
    println!("# Ablation — manifold learner, {} layer {}, Synth10", arch, cut - 1);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");
    let epochs = bench.scale.retrain_epochs();

    println!("## F̂ sweep (paper: F̂ ≥ #classes required; F̂ = 100 default)\n");
    let widths = [8usize, 10, 14];
    print_header(&["F̂", "accuracy", "encode MACs"], &widths);
    for f_hat in [5usize, 10, 25, 50, 100, 200] {
        let cfg = NshdConfig::new(cut)
            .with_manifold_features(f_hat)
            .with_retrain_epochs(epochs)
            .with_seed(62);
        let macs = nshd_macs(&teacher, &cfg, 10);
        let mut model = NshdModel::train(teacher.clone(), &bench.train, cfg);
        let acc = Classifier::evaluate(&mut model, &bench.test);
        print_row(
            &[format!("{f_hat}"), format!("{acc:.4}"), format!("{}", macs.manifold + macs.encode)],
            &widths,
        );
    }
    println!("\n# Expectation: accuracy collapses below F̂ = #classes (10), saturates above.\n");

    println!("## STE clip-factor sweep (gradient gating through sign)\n");
    print_header(&["clip", "accuracy", ""], &widths);
    for clip in [0.5f32, 1.0, 2.0, 4.0, f32::INFINITY] {
        let mut cfg = NshdConfig::new(cut).with_retrain_epochs(epochs).with_seed(63);
        cfg.ste = SteConfig { clip_factor: clip };
        let mut model = NshdModel::train(teacher.clone(), &bench.train, cfg);
        let acc = Classifier::evaluate(&mut model, &bench.test);
        print_row(&[format!("{clip}"), format!("{acc:.4}"), String::new()], &widths);
    }

    println!("\n## Manifold presence (same D, encode width F vs F̂)\n");
    print_header(&["variant", "accuracy", "encode MACs"], &[12usize, 10, 14]);
    for (label, use_manifold) in [("manifold", true), ("raw", false)] {
        let cfg = NshdConfig::new(cut)
            .with_manifold(use_manifold)
            .with_retrain_epochs(epochs)
            .with_seed(64);
        let macs = nshd_macs(&teacher, &cfg, 10);
        let encode = if use_manifold {
            macs.manifold + macs.encode
        } else {
            (teacher.feature_len_at(cut) * cfg.hv_dim) as u64
        };
        let mut model = NshdModel::train(teacher.clone(), &bench.train, cfg);
        let acc = Classifier::evaluate(&mut model, &bench.test);
        print_row(
            &[label.to_string(), format!("{acc:.4}"), format!("{encode}")],
            &[12usize, 10, 14],
        );
    }
}
