//! Ablation — deployment quantisation of the trained class memory:
//! f32 vs INT8 (the paper's Vitis-AI path, §VI-B: "very minor impacts on
//! the prediction quality") vs fully binary (the GPGPU constant-memory
//! representation).

use nshd_bench::{print_header, print_row, Bench};
use nshd_core::{NshdConfig, NshdModel};
use nshd_hdc::{BinaryMemory, QuantizedMemory};
use nshd_nn::Architecture;

fn main() {
    let bench = Bench::synth10(101);
    let arch = Architecture::EfficientNetB0;
    let cut = 8;
    let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
    println!("# Ablation — class-memory quantisation, {} layer {}, Synth10", arch, cut - 1);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");

    let cfg = NshdConfig::new(cut).with_retrain_epochs(bench.scale.retrain_epochs()).with_seed(72);
    let model = NshdModel::train(teacher, &bench.train, cfg);
    let samples = model.symbolize_dataset(&bench.test);

    let f32_acc = model.memory().accuracy(&samples);
    let f32_bytes = (model.memory().param_count() * 4) as u64;
    let quant = QuantizedMemory::from_memory(model.memory());
    let binary = BinaryMemory::from_memory(model.memory());

    let widths = [10usize, 10, 12, 10];
    print_header(&["memory", "accuracy", "bytes", "Δacc"], &widths);
    print_row(
        &["f32".into(), format!("{f32_acc:.4}"), format!("{f32_bytes}"), "—".into()],
        &widths,
    );
    print_row(
        &[
            "int8".into(),
            format!("{:.4}", quant.accuracy(&samples)),
            format!("{}", quant.size_bytes()),
            format!("{:+.4}", quant.accuracy(&samples) - f32_acc),
        ],
        &widths,
    );
    print_row(
        &[
            "binary".into(),
            format!("{:.4}", binary.accuracy(&samples)),
            format!("{}", binary.size_bytes()),
            format!("{:+.4}", binary.accuracy(&samples) - f32_acc),
        ],
        &widths,
    );
    println!();
    println!("# Expectation (paper §VI-B): INT8 within noise of f32; binary within a");
    println!("# few points while shrinking the memory 32×.");
}
