//! Closed-loop load generator for the fault-tolerant replicated serving
//! tier (`nshd_runtime::ReplicaSet`).
//!
//! Trains a small NSHD model on Synth10, snapshots it into N replicas,
//! and drives closed-loop client threads against the cluster:
//!
//! 1. a **load sweep** over client counts with every replica healthy —
//!    goodput versus offered load, with admission-control shed rate;
//! 2. **fault scenarios** — one replica starts stalling, failing
//!    (transient) or dying (permanent) mid-stream, flipped by whichever
//!    client crosses the halfway completion mark (so injection timing is
//!    tied to traffic progress, not wall-clock sleeps); plus a replica
//!    whose associative memory is corrupted by a seeded
//!    `nshd_hdc::FaultScenario` before serving starts;
//! 3. an **overload** phase — a stalled single-replica cluster with an
//!    admission cap of 1 driven by parallel clients, forcing typed
//!    `Overloaded` sheds.
//!
//! Every scenario checks the **survivor invariant**: each reply served
//! by a healthy replica must be bit-identical to the fault-free
//! per-sample baseline (`NshdModel::predict`). Results go to stdout and
//! `BENCH_cluster.json` at the repository root through the `nshd-obs/v1`
//! trace exporter. `--smoke` runs a down-sized configuration and exits
//! non-zero unless every request resolves, survivors stay bit-exact,
//! sheds and retries are both observed, and p99 stays within the
//! request deadline — the CI gate.
//!
//! Flags: `--replicas N` (default 3), `--requests N` (default by
//! `NSHD_SCALE`), `--smoke`.

use nshd_bench::Scale;
use nshd_core::{NshdConfig, NshdEngine, NshdModel, PipelineError};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_hdc::{FaultPlan, FaultScenario};
use nshd_nn::{
    fit, ActKind, Activation, Adam, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential,
    TrainConfig,
};
use nshd_obs::{clock, Json, Recorder};
use nshd_runtime::{
    BreakerConfig, ChaosEngine, ChaosMode, ClusterConfig, ClusterReply, ReplicaSet, RetryPolicy,
    RuntimeConfig,
};
use nshd_tensor::{Rng, Tensor};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    replicas: usize,
    requests: usize,
    smoke: bool,
}

fn parse_args(scale: Scale) -> Args {
    let mut args = Args {
        replicas: 3,
        requests: match scale {
            Scale::Quick => 256,
            Scale::Full => 1_024,
        },
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match flag.as_str() {
            "--replicas" => args.replicas = num("--replicas") as usize,
            "--requests" => args.requests = num("--requests") as usize,
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        args.replicas = args.replicas.min(3);
        args.requests = args.requests.min(96);
    }
    args
}

fn tiny_teacher(rng: &mut Rng) -> Model {
    let features = Sequential::new()
        .with(Conv2d::new(3, 8, 3, 1, 1, rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier = Sequential::new().with(Flatten::new()).with(Linear::new(8 * 16 * 16, 10, rng));
    Model {
        name: "cluster-tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    }
}

/// How one scenario perturbs the last replica of the set.
enum Fault {
    /// All replicas healthy for the whole run.
    None,
    /// Flip the victim to `mode` once half the requests have completed.
    FlipAtHalf(ChaosMode),
    /// Run the victim in `mode` from the first request.
    FromStart(ChaosMode),
    /// Serve a replica whose associative memory was corrupted by a
    /// seeded fault scenario before the run (predictions may diverge;
    /// the cluster must keep serving and survivors must stay exact).
    Degraded,
}

struct RunSpec<'a> {
    name: &'a str,
    replicas: usize,
    clients: usize,
    requests: usize,
    fault: Fault,
    max_inflight: usize,
    deadline: Duration,
}

struct RunOutcome {
    json: Json,
    issued: usize,
    resolved: usize,
    ok: usize,
    shed: usize,
    retries: u64,
    survivor_exact: bool,
    p99_us: f64,
}

/// Drives one closed-loop run: `clients` threads issue `requests`
/// requests round-robin over the image set and every outcome is
/// collected — success, typed shed, or typed failure. Returns the
/// scenario's JSON row plus the counters the smoke gate checks.
fn run_scenario(
    spec: &RunSpec<'_>,
    engine: &NshdEngine,
    images: &[Tensor],
    expected: &[usize],
) -> RunOutcome {
    assert!(spec.replicas >= 1 && spec.clients >= 1);
    let victim = spec.replicas - 1;
    let mut switch = None;
    let mut replicas: Vec<Arc<ChaosEngine<NshdEngine>>> = Vec::with_capacity(spec.replicas);
    for index in 0..spec.replicas {
        let snapshot = if index == victim {
            match &spec.fault {
                Fault::Degraded => {
                    let scenario = FaultScenario::new()
                        .with(FaultPlan::new(9, 0.4), 1)
                        .with(FaultPlan::new(10, 0.4), 2);
                    let (degraded, report) = engine.degraded(&scenario);
                    assert!(report.faults > 0, "degradation scenario injected nothing");
                    degraded
                }
                _ => engine.clone(),
            }
        } else {
            engine.clone()
        };
        let replica = if index == victim
            && matches!(spec.fault, Fault::FlipAtHalf(_) | Fault::FromStart(_))
        {
            let (chaos, s) = ChaosEngine::new(Arc::new(snapshot));
            switch = Some(s);
            chaos
        } else {
            ChaosEngine::passthrough(Arc::new(snapshot))
        };
        replicas.push(Arc::new(replica));
    }
    if let (Some(s), Fault::FromStart(mode)) = (&switch, &spec.fault) {
        s.set(*mode);
    }

    let config = ClusterConfig {
        runtime: RuntimeConfig { workers: 1, max_batch: 8, max_wait: Duration::from_micros(300) },
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            deadline: spec.deadline,
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(50) },
        max_inflight: spec.max_inflight,
    };
    let set = ReplicaSet::new(replicas, config).expect("verified engine must form a cluster");

    let completed = AtomicUsize::new(0);
    let flipped = AtomicBool::new(false);
    let half = spec.requests / 2;
    let started = clock::now();
    let per_client = spec.requests.div_ceil(spec.clients);
    let outcomes: Vec<(usize, Result<ClusterReply<usize>, PipelineError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spec.clients)
                .map(|client| {
                    let set = &set;
                    let completed = &completed;
                    let flipped = &flipped;
                    let switch = switch.as_ref();
                    scope.spawn(move || {
                        let mut local = Vec::with_capacity(per_client);
                        let first = client * per_client;
                        let last = (first + per_client).min(spec.requests);
                        for i in first..last {
                            let img = images[i % images.len()].clone();
                            local.push((i % images.len(), set.predict(img)));
                            let done = completed.fetch_add(1, Ordering::AcqRel) + 1;
                            // Whichever client crosses the halfway mark
                            // injects the fault — mid-traffic, but tied
                            // to progress instead of wall-clock timing.
                            if done >= half
                                && !flipped.swap(true, Ordering::AcqRel)
                                && matches!(spec.fault, Fault::FlipAtHalf(_))
                            {
                                if let (Some(s), Fault::FlipAtHalf(mode)) = (switch, &spec.fault) {
                                    s.set(*mode);
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread panicked")).collect()
        });
    let elapsed = started.elapsed().as_secs_f64();

    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut failed = 0usize;
    let mut survivor_exact = true;
    let mut survivor_replies = 0usize;
    for (sample, outcome) in &outcomes {
        match outcome {
            Ok(reply) => {
                ok += 1;
                let is_survivor = match spec.fault {
                    Fault::None => true,
                    _ => reply.replica != victim,
                };
                if is_survivor {
                    survivor_replies += 1;
                    if reply.value != expected[*sample] {
                        survivor_exact = false;
                    }
                }
            }
            Err(PipelineError::Overloaded { .. }) => shed += 1,
            Err(_) => failed += 1,
        }
    }
    // Replica states before shutdown, so ejections are still visible.
    let states: Vec<&'static str> =
        (0..spec.replicas).map(|i| set.replica_state(i).label()).collect();
    let metrics = set.shutdown();
    let goodput = if elapsed > 0.0 { ok as f64 / elapsed } else { 0.0 };
    let offered = if elapsed > 0.0 { outcomes.len() as f64 / elapsed } else { 0.0 };

    eprintln!(
        "[cluster_bench] {:<16} clients={} ok={ok} shed={shed} failed={failed} \
         retries={} goodput={goodput:.1} req/s survivor_exact={survivor_exact}",
        spec.name, spec.clients, metrics.router.retries
    );

    let json = Json::obj(vec![
        ("scenario", Json::str(spec.name)),
        ("replicas", Json::from(spec.replicas)),
        ("clients", Json::from(spec.clients)),
        ("issued", Json::from(outcomes.len())),
        ("ok", Json::from(ok)),
        ("shed", Json::from(shed)),
        ("failed", Json::from(failed)),
        ("offered_rps", Json::fixed(offered, 1)),
        ("goodput_rps", Json::fixed(goodput, 1)),
        ("survivor_exact", Json::from(survivor_exact)),
        ("survivor_replies", Json::from(survivor_replies)),
        ("replica_states", Json::arr(states.iter().map(|&s| Json::str(s)))),
        ("router", Json::Raw(metrics.router.to_json())),
        ("rollup", Json::Raw(metrics.rollup.to_json())),
    ]);
    RunOutcome {
        json,
        issued: outcomes.len(),
        resolved: ok + shed + failed,
        ok,
        shed,
        retries: metrics.router.retries,
        survivor_exact,
        p99_us: metrics.router.p99_us,
    }
}

fn main() {
    let scale = Scale::from_env();
    let args = parse_args(scale);
    let (train_size, hv_dim, teacher_epochs) = if args.smoke {
        (60, 1_024, 1)
    } else {
        match scale {
            Scale::Quick => (200, 2_048, 3),
            Scale::Full => (600, 2_048, 6),
        }
    };

    eprintln!("[cluster_bench] training model (train={train_size}, hv_dim={hv_dim})");
    let (mut train, mut test) = SynthSpec::synth10(71).with_sizes(train_size, 64).generate();
    normalize_pair(&mut train, &mut test);
    let mut teacher = tiny_teacher(&mut Rng::new(7));
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut Adam::new(2e-3, 1e-5),
        &TrainConfig { epochs: teacher_epochs, batch_size: 32, seed: 9, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(3)
        .with_hv_dim(hv_dim)
        .with_manifold(false)
        .with_retrain_epochs(1)
        .with_seed(13);
    let model = NshdModel::train(teacher, &train, cfg);
    let engine = NshdEngine::new(&model).expect("trained model must pass verification");

    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    // The fault-free baseline every surviving replica is held to.
    let expected: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();

    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());

    let deadline = Duration::from_secs(10);
    let sweep_clients: &[usize] = if args.smoke { &[1, 4] } else { &[1, 4, 16] };
    let mut runs: Vec<RunOutcome> = Vec::new();

    // Goodput vs offered load, every replica healthy.
    for &clients in sweep_clients {
        runs.push(run_scenario(
            &RunSpec {
                name: "healthy",
                replicas: args.replicas,
                clients,
                requests: args.requests,
                fault: Fault::None,
                max_inflight: 0,
                deadline,
            },
            &engine,
            &images,
            &expected,
        ));
    }

    // Fault matrix at a fixed load: a stalling, a dying, and a
    // silently-degraded replica.
    let fault_clients = 4;
    for (name, fault) in [
        ("stall", Fault::FlipAtHalf(ChaosMode::Stall(Duration::from_millis(20)))),
        ("kill", Fault::FlipAtHalf(ChaosMode::Kill)),
        ("degraded", Fault::Degraded),
    ] {
        runs.push(run_scenario(
            &RunSpec {
                name,
                replicas: args.replicas,
                clients: fault_clients,
                requests: args.requests,
                fault,
                max_inflight: 0,
                deadline,
            },
            &engine,
            &images,
            &expected,
        ));
    }

    // Overload: one stalled replica, admission cap 1, parallel clients —
    // admission control must shed instead of queueing to the deadline.
    runs.push(run_scenario(
        &RunSpec {
            name: "overload",
            replicas: 1,
            clients: 8,
            requests: (args.requests / 4).max(16),
            fault: Fault::FromStart(ChaosMode::Stall(Duration::from_millis(30))),
            max_inflight: 1,
            deadline,
        },
        &engine,
        &images,
        &expected,
    ));

    nshd_obs::install(previous);
    let report = recorder.report();

    let doc = Json::obj(vec![
        (
            "scale",
            Json::str(if args.smoke {
                "smoke"
            } else if scale == Scale::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        ("replicas", Json::from(args.replicas)),
        ("requests", Json::from(args.requests)),
        ("deadline_ms", Json::from(deadline.as_millis() as u64)),
        ("scenarios", Json::arr(runs.iter().map(|r| r.json.clone()))),
        ("trace", report.to_json()),
    ]);
    let json = doc.to_string();
    println!("{json}");

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_cluster.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_cluster.json");
    eprintln!("[cluster_bench] wrote {}", out.display());

    if args.smoke {
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"nshd-obs/v1\""), "trace must use the v1 exporter");
        // Every issued request resolved: success, typed shed, or typed
        // failure — never a hang or a lost reply.
        for run in &runs {
            assert_eq!(run.issued, run.resolved, "a request was issued but never resolved");
            assert!(
                run.survivor_exact,
                "a surviving replica diverged from the fault-free baseline"
            );
            assert!(
                run.p99_us <= deadline.as_secs_f64() * 1e6 * 1.5,
                "router p99 {}us blew past the {}s deadline budget",
                run.p99_us,
                deadline.as_secs_f64()
            );
        }
        let total_ok: usize = runs.iter().map(|r| r.ok).sum();
        let total_shed: usize = runs.iter().map(|r| r.shed).sum();
        let total_retries: u64 = runs.iter().map(|r| r.retries).sum();
        assert!(total_ok > 0, "no request ever succeeded");
        assert!(total_shed > 0, "overload phase never shed — admission control untested");
        assert!(total_retries > 0, "fault phases never retried — failover untested");
        assert!(out.is_file(), "BENCH_cluster.json missing at {}", out.display());
        eprintln!("[cluster_bench] smoke OK");
    }
}
