//! Fig. 10 — Efficiency and accuracy tradeoff over hypervector
//! dimensionality on the FPGA model.
//!
//! Paper reference: D = 3,000 suffices to regenerate CNN-level quality
//! (70% fewer HD parameters than D = 10,000); D = 1,000 loses on average
//! 1.64% accuracy for a further 20% parameter saving.

use nshd_bench::{print_header, print_row, Bench};
use nshd_core::{
    nshd_size_from_stats, nshd_workload_from_stats, Classifier, NshdConfig, NshdModel,
};
use nshd_hwmodel::DpuModel;
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    let bench = Bench::synth10(101);
    let arch = Architecture::EfficientNetB0;
    let cut = arch.paper_cuts()[2]; // a deep cut, where accuracy saturates
    println!("# Fig. 10 — dimensionality tradeoff, {} layer {}, Synth10\n", arch, cut - 1);
    let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");

    let dpu = DpuModel::zcu104();
    let ref_stats = arch_stats(arch, SpecVariant::Reference, 10);
    let widths = [8usize, 10, 10, 14, 16];
    print_header(&["D", "accuracy", "FPS", "HD params B", "HD vs 10K %"], &widths);
    let dims = [500usize, 1_000, 2_000, 3_000, 5_000, 10_000];
    // The paper's "HD section" parameters: projection + class
    // hypervectors (the manifold FC is fixed across D and excluded).
    let hd_bytes = |d: usize| {
        let cfg = NshdConfig::new(cut).with_hv_dim(d);
        let s = nshd_size_from_stats(&ref_stats, &cfg, 10);
        s.projection + s.classes
    };
    let hd_at_10k = hd_bytes(10_000) as f64;
    for d in dims {
        let cfg = NshdConfig::new(cut)
            .with_hv_dim(d)
            .with_retrain_epochs(bench.scale.retrain_epochs())
            .with_seed(41);
        let mut model = NshdModel::train(teacher.clone(), &bench.train, cfg.clone());
        let acc = Classifier::evaluate(&mut model, &bench.test);
        let fps = dpu.fps(&nshd_workload_from_stats(&ref_stats, arch.display_name(), &cfg, 10));
        let bytes = hd_bytes(d);
        print_row(
            &[
                format!("{d}"),
                format!("{acc:.4}"),
                format!("{fps:.0}"),
                format!("{bytes}"),
                format!("{:+.1}", (bytes as f64 / hd_at_10k - 1.0) * 100.0),
            ],
            &widths,
        );
    }
    println!();
    println!("# Shape check vs paper: accuracy saturates by D ≈ 3,000 while the HD");
    println!("# parameter count keeps shrinking (−70% at 3K vs 10K) and FPS rises.");
}
