//! Fig. 11 — Explainability of HD computing via t-SNE: sample
//! hypervectors at the first retraining iteration form a diffuse cloud;
//! by the final iteration they cluster per class.
//!
//! The paper shows this visually; we additionally quantify it with a
//! Fisher separation ratio and k-NN label agreement, and emit the two
//! embeddings as CSV for plotting.

use nshd_analyze::{fisher_ratio, knn_agreement, tsne, TsneConfig};
use nshd_bench::Bench;
use nshd_core::{NshdConfig, NshdTrainer};
use nshd_hdc::BipolarHv;
use nshd_nn::Architecture;
use nshd_tensor::Tensor;
use std::io::Write;

fn hv_matrix(samples: &[(BipolarHv, usize)]) -> (Tensor, Vec<usize>) {
    let n = samples.len();
    let d = samples[0].0.dim();
    let mut data = Tensor::zeros([n, d]);
    let mut labels = Vec::with_capacity(n);
    for (i, (hv, label)) in samples.iter().enumerate() {
        let row = hv.to_f32();
        data.write_slice(i * d, &row);
        labels.push(*label);
    }
    (data, labels)
}

fn embed_and_score(name: &str, samples: &[(BipolarHv, usize)]) -> std::io::Result<()> {
    let (data, labels) = hv_matrix(samples);
    let cfg = TsneConfig { perplexity: 20.0, iterations: 300, ..TsneConfig::default() };
    let emb = tsne(&data, &cfg);
    let fisher = fisher_ratio(&emb, &labels);
    let knn = knn_agreement(&emb, &labels, 5);
    println!("{name}: fisher separation {fisher:.3}, 5-NN label agreement {knn:.3}");
    let path = format!("target/fig11_{name}.csv");
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "x,y,label")?;
    for (i, label) in labels.iter().enumerate() {
        writeln!(file, "{},{},{label}", emb.at(&[i, 0]), emb.at(&[i, 1]))?;
    }
    println!("  embedding written to {path}");
    Ok(())
}

fn main() -> std::io::Result<()> {
    let bench = Bench::synth10(101);
    let arch = Architecture::EfficientNetB0;
    // Paper: 7th layer of EfficientNet-b0 → cut 8.
    let cut = 8;
    println!("# Fig. 11 — t-SNE of sample hypervectors, {} layer {}, Synth10\n", arch, cut - 1);
    let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");

    let epochs = bench.scale.retrain_epochs().max(10);
    let cfg = NshdConfig::new(cut).with_retrain_epochs(epochs).with_seed(51);
    let mut trainer = NshdTrainer::prepare(teacher, &bench.train, cfg);
    // First-iteration snapshot (after one epoch, as in Fig. 11a). We
    // symbolise *held-out* samples: training-set features of an overfit
    // teacher are trivially clustered from the start, which would hide
    // the effect the figure demonstrates.
    trainer.epoch();
    let first = trainer.model_mut().symbolize_dataset(&bench.test);
    for _ in 1..epochs {
        trainer.epoch();
    }
    let last = trainer.model_mut().symbolize_dataset(&bench.test);

    // Limit t-SNE input to a manageable subset.
    let max_points = 400.min(first.len());
    embed_and_score("first_iteration", &first[..max_points])?;
    embed_and_score("final_iteration", &last[..max_points])?;

    println!();
    println!("# Shape check vs paper: the final iteration scores strictly higher on");
    println!("# both cluster metrics — training pulls class hypervectors toward");
    println!("# their samples, producing per-class clusters.");
    Ok(())
}
