//! Fig. 4 — Percentage improvement in energy efficiency of NSHD over the
//! original CNN, per architecture and cut layer, on both datasets.
//!
//! Paper reference points: up to 64% saving for VGG16 at layer 27;
//! earlier cut layers always save more.

use nshd_bench::{print_header, print_row};
use nshd_core::{nshd_workload_from_stats, NshdConfig};
use nshd_hwmodel::{cnn_workload_from_stats, EnergyProfile};
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    let profile = EnergyProfile::xavier();
    println!("# Fig. 4 — Energy-efficiency improvement of NSHD vs CNN (Xavier-class profile)");
    println!("# reference-scale architectures (224x224, full widths); see DESIGN.md S3");
    println!("# positive % = NSHD consumes less energy per inference\n");
    let widths = [15usize, 7, 14, 22, 22];
    print_header(
        &["model", "layer", "energy CNN uJ", "improvement Synth10 %", "improvement Synth100 %"],
        &widths,
    );
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        let cnn = cnn_workload_from_stats(&stats, arch.display_name());
        let cnn_uj = profile.workload_energy_uj(&cnn);
        for &cut in arch.paper_cuts() {
            // The paper evaluates the earliest two cuts per model in
            // Fig. 4; we print all of them, earliest first.
            let improvement = |classes: usize| {
                let cfg = NshdConfig::new(cut);
                let nshd = nshd_workload_from_stats(&stats, arch.display_name(), &cfg, classes);
                profile.improvement_percent(&cnn, &nshd)
            };
            print_row(
                &[
                    arch.display_name().to_string(),
                    format!("{}", cut - 1),
                    format!("{cnn_uj:.2}"),
                    format!("{:+.2}", improvement(10)),
                    format!("{:+.2}", improvement(100)),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("# Shape check vs paper: earlier layers → larger savings; the deepest");
    println!("# cuts approach 0% because almost the whole CNN still runs.");
}
