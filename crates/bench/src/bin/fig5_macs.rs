//! Fig. 5 — Impact of the manifold learner on MAC counts: NSHD vs
//! BaselineHD at D = 3,000 and D = 10,000 per architecture/cut.
//!
//! Paper reference points: −20.9% / −28.95% for EfficientNet-b0 layers 6
//! and 7, up to −34% for MobileNetV2 layer 17 at D = 10,000; savings grow
//! with D.

use nshd_bench::{print_header, print_row};
use nshd_core::{baselinehd_macs_from_stats, nshd_macs_from_stats, NshdConfig};
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    println!("# Fig. 5 — MAC reduction from the manifold learner (NSHD vs BaselineHD)");
    println!("# negative % = NSHD needs fewer multiply-accumulates per inference\n");
    let widths = [15usize, 7, 14, 14, 10, 14, 14, 10];
    print_header(
        &[
            "model",
            "layer",
            "base 3K MACs",
            "NSHD 3K MACs",
            "Δ3K %",
            "base 10K MACs",
            "NSHD 10K MACs",
            "Δ10K %",
        ],
        &widths,
    );
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        for &cut in arch.paper_cuts() {
            let row_for = |d: usize| {
                let cfg = NshdConfig::new(cut).with_hv_dim(d);
                let nshd = nshd_macs_from_stats(&stats, &cfg, 10).total();
                let base = baselinehd_macs_from_stats(&stats, cut, d, 10).total();
                let delta = (nshd as f64 / base as f64 - 1.0) * 100.0;
                (base, nshd, delta)
            };
            let (b3, n3, d3) = row_for(3_000);
            let (b10, n10, d10) = row_for(10_000);
            print_row(
                &[
                    arch.display_name().to_string(),
                    format!("{}", cut - 1),
                    format!("{b3}"),
                    format!("{n3}"),
                    format!("{d3:+.2}"),
                    format!("{b10}"),
                    format!("{n10}"),
                    format!("{d10:+.2}"),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("# Shape check vs paper: NSHD always below BaselineHD; the saving is");
    println!("# larger at D = 10,000 because encoding cost scales with F·D.");
}
