//! Fig. 6 — Inference throughput (FPS) of the FPGA (DPU) implementation:
//! NSHD at the earliest paper cut vs the full CNN, over hypervector
//! dimensions.
//!
//! Paper reference point: NSHD averages +38.14% FPS over the CNN.

use nshd_bench::{print_header, print_row};
use nshd_core::{nshd_workload_from_stats, NshdConfig};
use nshd_hwmodel::{cnn_workload_from_stats, DpuModel};
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    let dpu = DpuModel::zcu104();
    println!("# Fig. 6 — Throughput (FPS) on the ZCU104 DPU model");
    println!("# NSHD at the earliest paper cut, D ∈ {{1k, 3k, 10k}}\n");
    let widths = [15usize, 7, 10, 12, 12, 12, 10];
    print_header(
        &["model", "layer", "CNN FPS", "NSHD 1K FPS", "NSHD 3K FPS", "NSHD 10K FPS", "Δ3K %"],
        &widths,
    );
    let mut improvements = Vec::new();
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        let cnn_fps = dpu.fps(&cnn_workload_from_stats(&stats, arch.display_name()));
        let cut = arch.paper_cuts()[0];
        let nshd_fps = |d: usize| {
            let cfg = NshdConfig::new(cut).with_hv_dim(d);
            dpu.fps(&nshd_workload_from_stats(&stats, arch.display_name(), &cfg, 10))
        };
        let f1 = nshd_fps(1_000);
        let f3 = nshd_fps(3_000);
        let f10 = nshd_fps(10_000);
        let delta = (f3 / cnn_fps - 1.0) * 100.0;
        improvements.push(delta);
        print_row(
            &[
                arch.display_name().to_string(),
                format!("{}", cut - 1),
                format!("{cnn_fps:.0}"),
                format!("{f1:.0}"),
                format!("{f3:.0}"),
                format!("{f10:.0}"),
                format!("{delta:+.2}"),
            ],
            &widths,
        );
    }
    let avg: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!();
    println!("# average FPS improvement at D = 3,000: {avg:+.2}% (paper: +38.14%)");
    println!("# Shape check vs paper: NSHD above CNN for every model; smaller D → more FPS.");
}
