//! Fig. 7 — Accuracy comparison: VanillaHD vs BaselineHD vs NSHD vs the
//! original CNN, across architectures and cut layers, on both datasets.
//!
//! Paper reference points: VanillaHD collapses on image data (39.88% /
//! 19.7% on CIFAR-10/100); BaselineHD recovers much of the gap; NSHD
//! reaches (and with deep enough cuts exceeds) the CNN.
//!
//! Run with `NSHD_SCALE=full` for paper-shaped budgets.

use nshd_bench::{print_header, print_row, Bench};
use nshd_core::{BaselineHd, Classifier, NshdConfig, NshdModel, VanillaHd};
use nshd_nn::Architecture;

fn main() {
    for (dataset_name, bench) in
        [("Synth10", Bench::synth10(101)), ("Synth100", Bench::synth100(102))]
    {
        println!(
            "\n## Fig. 7 — accuracy on {dataset_name} (train {}, test {})",
            bench.train.len(),
            bench.test.len()
        );
        // VanillaHD: no feature extractor at all — one row per dataset.
        let mut vanilla = VanillaHd::train(&bench.train, 3_000, bench.scale.retrain_epochs(), 1);
        let vanilla_acc = vanilla.evaluate(&bench.test);
        println!("VanillaHD (nonlinear encoding on raw pixels): {:.4}\n", vanilla_acc);

        let widths = [15usize, 7, 9, 12, 9, 9];
        print_header(&["model", "layer", "CNN", "BaselineHD", "NSHD", "Δ(N−C)"], &widths);
        for arch in [Architecture::MobileNetV2, Architecture::EfficientNetB0, Architecture::Vgg16] {
            let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
            for &cut in arch.paper_cuts() {
                let mut baseline = BaselineHd::train(
                    teacher.clone(),
                    &bench.train,
                    cut,
                    3_000,
                    bench.scale.retrain_epochs(),
                    11,
                );
                let base_acc = baseline.evaluate(&bench.test);
                let cfg = NshdConfig::new(cut)
                    .with_retrain_epochs(bench.scale.retrain_epochs())
                    .with_seed(13);
                let mut nshd = NshdModel::train(teacher.clone(), &bench.train, cfg);
                let nshd_acc = Classifier::evaluate(&mut nshd, &bench.test);
                print_row(
                    &[
                        arch.display_name().to_string(),
                        format!("{}", cut - 1),
                        format!("{cnn_acc:.4}"),
                        format!("{base_acc:.4}"),
                        format!("{nshd_acc:.4}"),
                        format!("{:+.4}", nshd_acc - cnn_acc),
                    ],
                    &widths,
                );
            }
        }
        println!();
        println!("# Shape check vs paper: VanillaHD ≪ BaselineHD ≤ NSHD ≈ CNN, with NSHD");
        println!("# closing on the CNN as the cut deepens.");
    }
    println!("\n# (EfficientNet-B7 is omitted at quick scale; run NSHD_SCALE=full to include it.)");
    if nshd_bench::Scale::from_env() == nshd_bench::Scale::Full {
        let bench = Bench::synth10(103);
        let arch = Architecture::EfficientNetB7;
        let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
        let widths = [15usize, 7, 9, 12, 9, 9];
        print_header(&["model", "layer", "CNN", "BaselineHD", "NSHD", "Δ(N−C)"], &widths);
        for &cut in arch.paper_cuts() {
            let mut baseline = BaselineHd::train(
                teacher.clone(),
                &bench.train,
                cut,
                3_000,
                bench.scale.retrain_epochs(),
                11,
            );
            let base_acc = baseline.evaluate(&bench.test);
            let cfg = NshdConfig::new(cut)
                .with_retrain_epochs(bench.scale.retrain_epochs())
                .with_seed(13);
            let mut nshd = NshdModel::train(teacher.clone(), &bench.train, cfg);
            let nshd_acc = Classifier::evaluate(&mut nshd, &bench.test);
            print_row(
                &[
                    arch.display_name().to_string(),
                    format!("{}", cut - 1),
                    format!("{cnn_acc:.4}"),
                    format!("{base_acc:.4}"),
                    format!("{nshd_acc:.4}"),
                    format!("{:+.4}", nshd_acc - cnn_acc),
                ],
                &widths,
            );
        }
    }
}
