//! Fig. 8 — Impact of knowledge distillation on learning accuracy:
//! (a) per-layer sweep on EfficientNet-b0; (b) per-model summary at the
//! earliest cut.
//!
//! Paper reference: KD fills the accuracy gap left by early, efficient
//! cut layers by eliciting knowledge stored in the removed layers.

use nshd_bench::{print_header, print_row, Bench};
use nshd_core::{Classifier, NshdConfig, NshdModel};
use nshd_nn::Architecture;

fn train_pair(bench: &Bench, teacher: &nshd_nn::Model, cut: usize) -> (f32, f32) {
    let epochs = bench.scale.retrain_epochs();
    let with_kd = NshdConfig::new(cut).with_retrain_epochs(epochs).with_seed(23);
    let without = with_kd.clone().without_distillation();
    let mut kd = NshdModel::train(teacher.clone(), &bench.train, with_kd);
    let mut plain = NshdModel::train(teacher.clone(), &bench.train, without);
    (Classifier::evaluate(&mut plain, &bench.test), Classifier::evaluate(&mut kd, &bench.test))
}

fn main() {
    let bench = Bench::synth10(101);
    println!("# Fig. 8(a) — KD impact per cut layer, Efficientnetb0, Synth10\n");
    let (teacher, cnn_acc) = bench.train_teacher(Architecture::EfficientNetB0, 7);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");
    let widths = [7usize, 10, 10, 10];
    print_header(&["layer", "no KD", "with KD", "ΔKD"], &widths);
    for &cut in Architecture::EfficientNetB0.paper_cuts() {
        let (plain, kd) = train_pair(&bench, &teacher, cut);
        print_row(
            &[
                format!("{}", cut - 1),
                format!("{plain:.4}"),
                format!("{kd:.4}"),
                format!("{:+.4}", kd - plain),
            ],
            &widths,
        );
    }

    println!("\n# Fig. 8(b) — KD impact per model at the earliest paper cut\n");
    let widths = [15usize, 7, 9, 10, 10, 10];
    print_header(&["model", "layer", "CNN", "no KD", "with KD", "ΔKD"], &widths);
    for arch in [Architecture::MobileNetV2, Architecture::EfficientNetB0, Architecture::Vgg16] {
        let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
        let cut = arch.paper_cuts()[0];
        let (plain, kd) = train_pair(&bench, &teacher, cut);
        print_row(
            &[
                arch.display_name().to_string(),
                format!("{}", cut - 1),
                format!("{cnn_acc:.4}"),
                format!("{plain:.4}"),
                format!("{kd:.4}"),
                format!("{:+.4}", kd - plain),
            ],
            &widths,
        );
    }
    println!();
    println!("# Paper expectation: KD fills the gap at early cuts. Regime note");
    println!("# (DESIGN.md §7): with in-repo teachers trained on thousands of");
    println!("# samples — not ImageNet — the HD student often matches the teacher,");
    println!("# so the measured KD delta is small and can be negative at this scale.");
}
