//! Fig. 9 — Hyperparameter grid for knowledge distillation: accuracy over
//! temperature T ∈ [12, 17] × α ∈ [0, 0.9].
//!
//! Paper reference: the α = 0 row (no distillation) is flat; accuracy
//! rises with α, peaking around α ∈ [0.6, 0.8], T ∈ [14, 16], for a boost
//! of ≈ 7.4% over α = 0.
//!
//! The sweep reuses one feature-extraction pass across all 60 cells via
//! `NshdTrainer::clone` + `set_distill_config`.

use nshd_bench::Bench;
use nshd_core::{NshdConfig, NshdTrainer};
use nshd_hdc::DistillConfig;
use nshd_nn::Architecture;

fn main() {
    let bench = Bench::synth10(101);
    // The paper sweeps EfficientNet-b7 layer 7; at quick scale we use the
    // b0 analog (same architecture family) for tractability and b7 under
    // NSHD_SCALE=full.
    let arch = if nshd_bench::Scale::from_env() == nshd_bench::Scale::Full {
        Architecture::EfficientNetB7
    } else {
        Architecture::EfficientNetB0
    };
    let cut = arch.paper_cuts()[1];
    println!("# Fig. 9 — KD hyperparameter search, {} layer {}, Synth10\n", arch, cut - 1);
    let (teacher, cnn_acc) = bench.train_teacher(arch, 7);
    println!("CNN (teacher) accuracy: {cnn_acc:.4}\n");

    let epochs = bench.scale.retrain_epochs();
    let base_cfg = NshdConfig::new(cut).with_retrain_epochs(epochs).with_seed(31);
    let prepared = NshdTrainer::prepare(teacher, &bench.train, base_cfg);

    let temperatures = [12.0f32, 13.0, 14.0, 15.0, 16.0, 17.0];
    let alphas = [0.0f32, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

    print!("{:>6}", "α\\T");
    for t in temperatures {
        print!("{t:>9.0}");
    }
    println!();
    let mut best = (0.0f32, 0.0f32, 0.0f32);
    let mut alpha_zero = 0.0f32;
    for alpha in alphas {
        print!("{alpha:>6.1}");
        for t in temperatures {
            let mut trainer = prepared.clone();
            trainer.set_distill_config(DistillConfig {
                temperature: t,
                alpha,
                ..DistillConfig::default()
            });
            for _ in 0..epochs {
                trainer.epoch();
            }
            let model = trainer.finish();
            let acc = model.evaluate(&bench.test);
            if acc > best.0 {
                best = (acc, t, alpha);
            }
            if alpha == 0.0 {
                alpha_zero = alpha_zero.max(acc);
            }
            print!("{acc:>9.4}");
        }
        println!();
    }
    println!();
    println!(
        "best: {:.4} at T={}, α={}; boost over α=0: {:+.4} (paper: +7.39%)",
        best.0,
        best.1,
        best.2,
        best.0 - alpha_zero
    );
    println!("# Shape check vs paper: the α=0 row is constant across T (structural:");
    println!("# T only enters through the distilled term). The paper reports a +7.4%");
    println!("# peak in the mid-α band; at this scale the measured peak is weaker");
    println!("# (see DESIGN.md §7 on the teacher-strength regime difference).");
}
