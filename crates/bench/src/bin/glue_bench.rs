//! HD-Glue ensemble benchmark (`nshd_glue`): accuracy versus number of
//! fused teachers, plus hot-swap latency under live traffic.
//!
//! Trains three deliberately **diverse** tiny CNN teachers on Synth10
//! (different widths, depths, seeds, and epoch budgets), then:
//!
//! 1. **Accuracy vs #teachers** — fuses the first `k` teachers for
//!    `k = 1..=3` into a consensus memory ([`GlueEnsemble::fuse`]) and
//!    scores each fusion on the train (fusion) and test sets, next to
//!    every teacher's own CNN test accuracy and standalone symbolic
//!    bundle accuracy;
//! 2. **Swap latency** — serves the full fusion through a
//!    [`GlueEngine`] behind an [`InferenceRuntime`] and times
//!    `swap_memory` / `swap_head` calls issued while a batch is in
//!    flight, plus replica-level `ReplicaSet::hot_swap`
//!    (drain + readmit) on a two-replica glue cluster.
//!
//! Results go to stdout and `BENCH_glue.json` at the repository root
//! through the `nshd-obs/v1` trace exporter. `--smoke` runs a
//! down-sized configuration and exits non-zero unless the full fusion's
//! accuracy is at least the best single teacher's symbolic accuracy,
//! every in-flight reply resolves, and the JSON lands — the CI gate.
//!
//! Flags: `--swaps N` (default by `NSHD_SCALE`), `--smoke`.

use nshd_bench::Scale;
use nshd_core::{Classifier, CnnClassifier, EmbeddingClassifier};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_glue::{GlueConfig, GlueEngine, GlueEnsemble};
use nshd_hdc::AssociativeMemory;
use nshd_nn::{
    fit, ActKind, Activation, Adam, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential,
    TrainConfig,
};
use nshd_obs::{clock, Json, Recorder};
use nshd_runtime::{
    BreakerConfig, ClusterConfig, InferenceRuntime, ReplicaSet, RetryPolicy, RuntimeConfig,
};
use nshd_tensor::{Rng, Tensor};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    swaps: usize,
    smoke: bool,
}

fn parse_args(scale: Scale) -> Args {
    let mut args = Args {
        swaps: match scale {
            Scale::Quick => 8,
            Scale::Full => 32,
        },
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--swaps" => {
                args.swaps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--swaps expects a number"));
            }
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        args.swaps = args.swaps.min(4);
    }
    args
}

/// Three diverse teacher architectures: a wide single block, a deeper
/// two-block stack, and a slim wide-kernel block. Diversity is the
/// point — HD-Glue's consensus only helps when the teachers' mistakes
/// decorrelate.
fn build_teacher(kind: usize, rng: &mut Rng) -> Model {
    match kind {
        0 => {
            let features = Sequential::new()
                .with(Conv2d::new(3, 8, 3, 1, 1, rng))
                .with(Activation::new(ActKind::Relu))
                .with(MaxPool2d::new(2));
            let classifier =
                Sequential::new().with(Flatten::new()).with(Linear::new(8 * 16 * 16, 10, rng));
            Model {
                name: "wide8".into(),
                features,
                classifier,
                input_shape: vec![3, 32, 32],
                num_classes: 10,
            }
        }
        1 => {
            let features = Sequential::new()
                .with(Conv2d::new(3, 6, 3, 1, 1, rng))
                .with(Activation::new(ActKind::Relu))
                .with(MaxPool2d::new(2))
                .with(Conv2d::new(6, 12, 3, 1, 1, rng))
                .with(Activation::new(ActKind::Relu))
                .with(MaxPool2d::new(2));
            let classifier =
                Sequential::new().with(Flatten::new()).with(Linear::new(12 * 8 * 8, 10, rng));
            Model {
                name: "deep6-12".into(),
                features,
                classifier,
                input_shape: vec![3, 32, 32],
                num_classes: 10,
            }
        }
        _ => {
            let features = Sequential::new()
                .with(Conv2d::new(3, 4, 5, 1, 2, rng))
                .with(Activation::new(ActKind::Relu))
                .with(MaxPool2d::new(2));
            let classifier =
                Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, rng));
            Model {
                name: "slim4k5".into(),
                features,
                classifier,
                input_shape: vec![3, 32, 32],
                num_classes: 10,
            }
        }
    }
}

/// A dimension-compatible replacement memory that scores differently:
/// every class row rotated by one.
fn rotated_memory(memory: &AssociativeMemory) -> AssociativeMemory {
    let n = memory.num_classes();
    let rows: Vec<Vec<f32>> = (0..n).map(|i| memory.class((i + 1) % n).to_vec()).collect();
    AssociativeMemory::try_from_classes(rows).expect("rotated rows stay rectangular")
}

fn lat_row(kind: &str, lat: &[f64]) -> Json {
    let mean = if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
    let max = lat.iter().cloned().fold(0.0f64, f64::max);
    Json::obj(vec![
        ("kind", Json::str(kind)),
        ("swaps", Json::from(lat.len())),
        ("mean_us", Json::fixed(mean, 1)),
        ("max_us", Json::fixed(max, 1)),
    ])
}

fn main() {
    let scale = Scale::from_env();
    let args = parse_args(scale);
    let (train_size, test_size, hv_dim, epoch_budgets) = if args.smoke {
        (60, 32, 1_024, [1usize, 2, 1])
    } else {
        match scale {
            Scale::Quick => (200, 64, 2_048, [2, 3, 2]),
            Scale::Full => (600, 128, 4_096, [4, 6, 4]),
        }
    };

    eprintln!("[glue_bench] training 3 teachers (train={train_size}, hv_dim={hv_dim})");
    let (mut train, mut test) = SynthSpec::synth10(71).with_sizes(train_size, test_size).generate();
    normalize_pair(&mut train, &mut test);

    let mut teachers: Vec<CnnClassifier> = Vec::with_capacity(3);
    for (kind, &epochs) in epoch_budgets.iter().enumerate() {
        let seed = 40 + kind as u64 * 17;
        let mut model = build_teacher(kind, &mut Rng::new(seed));
        fit(
            &mut model,
            train.images(),
            train.labels(),
            &mut Adam::new(2e-3, 1e-5),
            &TrainConfig { epochs, batch_size: 32, seed: seed + 1, ..TrainConfig::default() },
        );
        teachers.push(CnnClassifier::new(model));
    }

    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());

    let config = GlueConfig { hv_dim, seed: 0x617C, ..GlueConfig::default() };

    // Accuracy vs #teachers: fuse the first k teachers for k = 1..=3.
    let mut fusion_rows: Vec<Json> = Vec::new();
    let mut fused_accuracy = Vec::new();
    let mut full: Option<GlueEnsemble> = None;
    for k in 1..=teachers.len() {
        let refs: Vec<&dyn EmbeddingClassifier> =
            teachers[..k].iter().map(|t| t as &dyn EmbeddingClassifier).collect();
        let ensemble = GlueEnsemble::fuse(&refs, &train, &config).expect("fuse must succeed");
        let train_acc = ensemble.accuracy(&train).expect("train accuracy");
        let test_acc = ensemble.accuracy(&test).expect("test accuracy");
        let last = ensemble.correction().last().copied();
        eprintln!(
            "[glue_bench] fused k={k}: train={train_acc:.3} test={test_acc:.3} \
             correction_epochs={}",
            ensemble.correction().len()
        );
        fusion_rows.push(Json::obj(vec![
            ("teachers", Json::from(k)),
            ("train_accuracy", Json::fixed(train_acc as f64, 4)),
            ("test_accuracy", Json::fixed(test_acc as f64, 4)),
            ("correction_epochs", Json::from(ensemble.correction().len())),
            ("final_misclassified", Json::from(last.map(|r| r.misclassified).unwrap_or_default())),
        ]));
        fused_accuracy.push((train_acc, test_acc));
        if k == teachers.len() {
            full = Some(ensemble);
        }
    }
    let full = full.expect("the k = 3 fusion is always built");

    // Per-teacher reference points: raw CNN test accuracy and the
    // standalone symbolic bundle accuracy each head was weighted by.
    let mut teacher_rows: Vec<Json> = Vec::new();
    for (teacher, report) in teachers.iter_mut().zip(full.head_reports()) {
        let cnn_test = teacher.evaluate(&test);
        teacher_rows.push(Json::obj(vec![
            ("name", Json::str(&report.name)),
            ("cnn_test_accuracy", Json::fixed(cnn_test as f64, 4)),
            ("standalone_bundle_accuracy", Json::fixed(report.standalone_accuracy as f64, 4)),
            ("fused_weight", Json::fixed(report.weight as f64, 4)),
        ]));
    }
    let best_standalone =
        full.head_reports().iter().map(|r| r.standalone_accuracy).fold(0.0f32, f32::max);
    let (fused_train, fused_test) = *fused_accuracy.last().expect("k = 3 row exists");

    // Swap latency under live traffic: a batch is submitted, the swap
    // is timed while it is in flight, and every reply must resolve.
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let glue = Arc::new(GlueEngine::new(full.clone()));
    let runtime = InferenceRuntime::new(
        glue.clone(),
        RuntimeConfig { workers: 1, max_batch: 16, max_wait: Duration::from_micros(300) },
    )
    .expect("fused engine must verify");
    let mut memory_lat = Vec::with_capacity(args.swaps);
    let mut head_lat = Vec::with_capacity(args.swaps);
    let num_heads = glue.state().heads().len();
    for s in 0..args.swaps {
        let burst: Vec<_> = images
            .iter()
            .take(16)
            .map(|img| runtime.submit(img.clone()).expect("submit"))
            .collect();

        let rotated = rotated_memory(glue.state().memory());
        let started = clock::now();
        glue.swap_memory(rotated).expect("compatible memory must swap");
        memory_lat.push(started.elapsed().as_secs_f64() * 1e6);

        let slot = s % num_heads;
        let current = glue.state().heads()[slot].weight();
        let reweighted = glue.state().heads()[slot].with_weight(current.max(0.05) * 0.9);
        let started = clock::now();
        glue.swap_head(slot, reweighted).expect("re-weighted head must swap");
        head_lat.push(started.elapsed().as_secs_f64() * 1e6);

        let classes = glue.num_classes();
        for handle in burst {
            let value = handle.wait().expect("in-flight reply must resolve across swaps");
            assert!(value < classes, "prediction out of range");
        }
    }
    runtime.shutdown();

    // Replica-level hot swap: drain + readmit a fresh engine on a live
    // two-replica glue cluster.
    let cluster = ClusterConfig {
        runtime: RuntimeConfig { workers: 1, max_batch: 8, max_wait: Duration::from_micros(300) },
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(50) },
        max_inflight: 0,
    };
    let set = ReplicaSet::new(
        vec![Arc::new(GlueEngine::new(full.clone())), Arc::new(GlueEngine::new(full.clone()))],
        cluster,
    )
    .expect("fused engines must form a cluster");
    let mut replica_lat = Vec::with_capacity(args.swaps);
    for s in 0..args.swaps {
        for img in images.iter().take(4) {
            set.predict(img.clone()).expect("cluster serves between swaps");
        }
        let fresh = Arc::new(GlueEngine::new(full.clone()));
        let started = clock::now();
        let drained = set.hot_swap(s % 2, fresh).expect("hot swap succeeds");
        replica_lat.push(started.elapsed().as_secs_f64() * 1e6);
        assert!(drained.requests > 0 || s > 0, "the drained slot must have history");
    }
    for img in images.iter().take(4) {
        set.predict(img.clone()).expect("cluster serves after the last swap");
    }
    set.shutdown();

    nshd_obs::install(previous);
    let report = recorder.report();

    let doc = Json::obj(vec![
        (
            "scale",
            Json::str(if args.smoke {
                "smoke"
            } else if scale == Scale::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        ("hv_dim", Json::from(hv_dim)),
        ("train_size", Json::from(train_size)),
        ("test_size", Json::from(test_size)),
        ("teachers", Json::arr(teacher_rows)),
        ("accuracy_vs_teachers", Json::arr(fusion_rows)),
        (
            "swap_latency",
            Json::arr(vec![
                lat_row("memory_swap", &memory_lat),
                lat_row("head_swap", &head_lat),
                lat_row("replica_hot_swap", &replica_lat),
            ]),
        ),
        ("trace", report.to_json()),
    ]);
    let json = doc.to_string();
    println!("{json}");

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_glue.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_glue.json");
    eprintln!("[glue_bench] wrote {}", out.display());

    if args.smoke {
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"nshd-obs/v1\""), "trace must use the v1 exporter");
        assert!(
            fused_train >= best_standalone,
            "full fusion train accuracy {fused_train} fell below the best single \
             teacher's symbolic accuracy {best_standalone}"
        );
        assert!(
            fused_test > 0.0 && fused_train > 0.0,
            "the fused ensemble never classified anything"
        );
        assert!(
            memory_lat.iter().chain(&head_lat).chain(&replica_lat).all(|l| l.is_finite()),
            "swap latencies must be finite"
        );
        assert!(out.is_file(), "BENCH_glue.json missing at {}", out.display());
        eprintln!(
            "[glue_bench] smoke OK (fused train={fused_train:.3} vs best single \
             {best_standalone:.3})"
        );
    }
}
