//! Kernel-level benchmark: serial vs row-parallel compute kernels.
//!
//! Measures achieved GFLOP/s of every parallelized hot kernel — the
//! GEMM family (`matmul`, `matmul_bt`, `matmul_at`), conv2d forward
//! (im2col + GEMM) and the batched HD encode — once with one thread and
//! once with the full worker set (`par::with_threads`), over a size
//! grid. Every pair of runs is checked **bit-identical** (`to_bits`
//! equality), the determinism contract of `nshd_tensor::par`.
//!
//! Emits one JSON object on stdout with the per-kernel × size grid
//! (serial GFLOP/s, parallel GFLOP/s, speedup, bitwise equality) plus
//! the full `nshd-obs/v1` trace report, and writes the same document to
//! `BENCH_kernels.json` at the repository root.
//!
//! `--smoke` runs a down-sized grid and exits non-zero if any parallel
//! output differs from serial, the report is malformed, or — on a
//! machine with more than one core — no GEMM speedup above 1.0× is
//! measured. On a single-core machine the speedup gate is skipped and
//! the report carries `"single_core_fallback": true` (spawning workers
//! on one core can only time-slice it).
//!
//! Flags: `--threads N` (parallel worker count, default 4),
//! `--smoke`.

use nshd_bench::Scale;
use nshd_hdc::RandomProjection;
use nshd_nn::{Conv2d, Layer};
use nshd_obs::{clock, Json, Recorder};
use nshd_tensor::{matmul, matmul_at, matmul_bt, par, Rng, Tensor};
use std::hint::black_box;
use std::path::Path;

struct Args {
    threads: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args { threads: 4, smoke: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| panic!("--threads expects a positive number"));
            }
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One measured kernel × size cell.
struct Cell {
    kernel: &'static str,
    shape: String,
    flops: u64,
    serial_gflops: f64,
    parallel_gflops: f64,
    bit_identical: bool,
}

impl Cell {
    fn speedup(&self) -> f64 {
        if self.serial_gflops > 0.0 {
            self.parallel_gflops / self.serial_gflops
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::str(self.kernel)),
            ("shape", Json::str(self.shape.clone())),
            ("flops", Json::from(self.flops)),
            ("serial_gflops", Json::fixed(self.serial_gflops, 3)),
            ("parallel_gflops", Json::fixed(self.parallel_gflops, 3)),
            ("speedup", Json::fixed(self.speedup(), 2)),
            ("bit_identical", Json::from(self.bit_identical)),
        ])
    }
}

/// Times `reps` calls of `f` (after one warm-up call) and returns the
/// achieved GFLOP/s.
fn time_gflops(flops_per_rep: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm caches and allocator
    let t = clock::now();
    for _ in 0..reps {
        f();
    }
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    (flops_per_rep as f64 * reps as f64) / secs / 1e9
}

/// Repetition count targeting roughly `budget` FLOPs of total work per
/// measured configuration, so small and large sizes get comparable
/// measurement time.
fn reps_for(flops: u64, budget: u64) -> usize {
    ((budget / flops.max(1)).clamp(1, 64)) as usize
}

/// Measures one kernel at one size: serial vs `threads`-wide parallel,
/// with a bitwise comparison of the two outputs.
fn measure(
    kernel: &'static str,
    shape: String,
    flops: u64,
    reps: usize,
    threads: usize,
    run: impl Fn() -> Tensor,
) -> Cell {
    let serial_out = par::with_threads(1, &run);
    let parallel_out = par::with_threads(threads, &run);
    let bit_identical = serial_out.as_slice().len() == parallel_out.as_slice().len()
        && serial_out
            .as_slice()
            .iter()
            .zip(parallel_out.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let serial_gflops = par::with_threads(1, || {
        time_gflops(flops, reps, || {
            black_box(run());
        })
    });
    let parallel_gflops = par::with_threads(threads, || {
        time_gflops(flops, reps, || {
            black_box(run());
        })
    });
    eprintln!(
        "[kernel_bench] {kernel:<9} {shape:<18} serial {serial_gflops:7.3} GFLOP/s | \
         x{threads} {parallel_gflops:7.3} GFLOP/s | bitwise {}",
        if bit_identical { "ok" } else { "MISMATCH" }
    );
    Cell { kernel, shape, flops, serial_gflops, parallel_gflops, bit_identical }
}

fn rand_tensor(shape: [usize; 2], rng: &mut Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.uniform_in(-1.0, 1.0))
}

fn main() {
    let scale = Scale::from_env();
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let single_core_fallback = cores <= 1;

    // Size grids. Smoke stays just past the parallel threshold so the
    // gate is fast; quick/full include the >=256 square sizes the
    // acceptance criteria call for.
    let (gemm_sizes, budget, conv_batch, conv_hw, encode_batch, hv_dim): (
        &[usize],
        u64,
        usize,
        usize,
        usize,
        usize,
    ) = if args.smoke {
        (&[96, 160], 200_000_000, 4, 16, 16, 1_024)
    } else {
        match scale {
            Scale::Quick => (&[128, 256, 384], 600_000_000, 8, 32, 32, 2_048),
            Scale::Full => (&[128, 256, 512], 2_000_000_000, 16, 32, 64, 4_096),
        }
    };

    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());
    let mut rng = Rng::new(97);
    let mut cells: Vec<Cell> = Vec::new();

    // GEMM family on square sizes.
    for &s in gemm_sizes {
        let flops = 2 * (s as u64).pow(3);
        let reps = reps_for(flops, budget);
        let a = rand_tensor([s, s], &mut rng);
        let b = rand_tensor([s, s], &mut rng);
        cells.push(measure("matmul", format!("{s}x{s}x{s}"), flops, reps, args.threads, || {
            matmul(&a, &b)
        }));
        cells.push(measure("matmul_bt", format!("{s}x{s}x{s}"), flops, reps, args.threads, || {
            matmul_bt(&a, &b)
        }));
        cells.push(measure("matmul_at", format!("{s}x{s}x{s}"), flops, reps, args.threads, || {
            matmul_at(&a, &b)
        }));
    }

    // Conv2d forward: im2col + GEMM + bias scatter, batched.
    {
        let conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        let x =
            Tensor::from_fn([conv_batch, 3, conv_hw, conv_hw], |i| ((i % 97) as f32 - 48.0) / 48.0);
        let flops = 2 * conv.macs(&[3, conv_hw, conv_hw]) * conv_batch as u64;
        let reps = reps_for(flops, budget / 2);
        let shape = format!("n{conv_batch}c3@{conv_hw}x{conv_hw}");
        cells.push(measure("conv2d", shape, flops, reps, args.threads, || conv.infer(&x)));
    }

    // Batched HD encode: values · basis GEMM.
    {
        let features = 4 * (conv_hw / 2) * (conv_hw / 2);
        let proj = RandomProjection::new(features, hv_dim, 23);
        let enc = proj.batch_encoder();
        let values = rand_tensor([encode_batch, features], &mut rng);
        let flops = 2 * (encode_batch * features * hv_dim) as u64;
        let reps = reps_for(flops, budget / 2);
        let shape = format!("n{encode_batch}f{features}d{hv_dim}");
        cells.push(measure("hd_encode", shape, flops, reps, args.threads, || {
            enc.encode_raw_batch(&values)
        }));
    }

    nshd_obs::install(previous);
    let report = recorder.report();

    let all_bit_identical = cells.iter().all(|c| c.bit_identical);
    let best_gemm_speedup = cells
        .iter()
        .filter(|c| c.kernel.starts_with("matmul"))
        .map(Cell::speedup)
        .fold(0.0f64, f64::max);

    let doc = Json::obj(vec![
        (
            "scale",
            Json::str(match (args.smoke, scale) {
                (true, _) => "smoke",
                (false, Scale::Quick) => "quick",
                (false, Scale::Full) => "full",
            }),
        ),
        ("threads", Json::from(args.threads)),
        ("cores", Json::from(cores)),
        ("single_core_fallback", Json::from(single_core_fallback)),
        ("all_bit_identical", Json::from(all_bit_identical)),
        ("best_gemm_speedup", Json::fixed(best_gemm_speedup, 2)),
        ("kernels", Json::arr(cells.iter().map(Cell::to_json))),
        ("trace", report.to_json()),
    ]);
    let json = doc.to_string();
    println!("{json}");

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_kernels.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_kernels.json");
    eprintln!("[kernel_bench] wrote {}", out.display());

    assert!(
        all_bit_identical,
        "parallel kernel output diverged bitwise from serial — determinism contract broken"
    );
    if args.smoke {
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in
            ["\"kernels\":[", "\"serial_gflops\":", "\"speedup\":", "\"schema\":\"nshd-obs/v1\""]
        {
            assert!(json.contains(key), "smoke report missing {key}");
        }
        // The trace must show per-worker `par` child spans rolling up
        // under the kernel spans (parallel runs record them).
        assert!(
            report.find("matmul/par").is_some(),
            "trace missing matmul/par worker spans — parallel path never engaged"
        );
        if single_core_fallback {
            eprintln!(
                "[kernel_bench] single core available: speedup gate skipped \
                 (parallel == serial correctness still enforced)"
            );
        } else {
            assert!(
                best_gemm_speedup > 1.0,
                "no GEMM speedup on a {cores}-core machine (best {best_gemm_speedup:.2}x)"
            );
        }
        eprintln!("[kernel_bench] smoke OK");
    }
}
