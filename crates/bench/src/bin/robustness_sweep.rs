//! Robustness sweep — accuracy vs fault rate across deployment forms.
//!
//! The paper deploys the trained class memory in three forms: f32
//! accumulators (GPGPU), INT8 (Vitis-AI DPU), and packed binary (the
//! constant-memory GPGPU kernels / FPGA). This sweep injects seeded,
//! reproducible faults into each form — zero/saturate upsets for f32
//! cells, in-byte bit flips for INT8, word bit flips for packed binary —
//! at increasing rates and records test accuracy, demonstrating HD's
//! graceful degradation under hardware faults. A fourth curve corrupts
//! the *input* (salt-and-pepper noise) instead of the memory.
//!
//! Emits JSON on stdout (and to `target/robustness_sweep.json`);
//! progress goes to stderr. Run with `NSHD_SCALE=full` for paper-shaped
//! budgets.

use nshd_bench::{Bench, Scale};
use nshd_core::{NshdConfig, NshdModel};
use nshd_data::Corruption;
use nshd_hdc::{BinaryMemory, FaultPlan, QuantizedMemory};
use nshd_nn::Architecture;
use nshd_tensor::Rng;

/// Per-site fault rates swept (the paper's deployment claim is exercised
/// well past the 5% point).
const RATES: [f32; 7] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.08, 0.12];
/// Independent fault patterns averaged per (rate, form) cell.
const TRIALS: u64 = 3;

fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}

fn json_array(xs: &[f32]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let bench = Bench::synth10(101);
    let arch = Architecture::MobileNetV2;
    let (teacher, teacher_acc) = bench.train_teacher(arch, 7);
    eprintln!("[robustness] teacher {} test accuracy {teacher_acc:.4}", arch.display_name());

    let cut = arch.paper_cuts()[0];
    let cfg = NshdConfig::new(cut).with_retrain_epochs(bench.scale.retrain_epochs()).with_seed(13);
    let model = NshdModel::train(teacher, &bench.train, cfg);

    // Symbolise the held-out set once; memory-side fault injection reuses
    // the same queries for every (rate, form, trial) cell.
    let samples = model.symbolize_dataset(&bench.test);
    let clean_memory = model.memory().clone();
    let clean_quant = QuantizedMemory::from_memory(&clean_memory);
    let clean_binary = BinaryMemory::from_memory(&clean_memory);
    let packed: Vec<_> = samples.iter().map(|(hv, l)| (hv.to_packed(), *l)).collect();
    let binary_accuracy = |mem: &BinaryMemory| {
        let correct = packed.iter().filter(|(hv, l)| mem.predict(hv) == *l).count();
        correct as f32 / packed.len() as f32
    };
    eprintln!(
        "[robustness] clean accuracy: f32 {:.4}, int8 {:.4}, binary {:.4}",
        clean_memory.accuracy(&samples),
        clean_quant.accuracy(&samples),
        binary_accuracy(&clean_binary),
    );

    let mut curve_f32 = Vec::with_capacity(RATES.len());
    let mut curve_int8 = Vec::with_capacity(RATES.len());
    let mut curve_binary = Vec::with_capacity(RATES.len());
    let mut curve_input = Vec::with_capacity(RATES.len());
    for (i, &rate) in RATES.iter().enumerate() {
        let (mut f32_acc, mut int8_acc, mut bin_acc) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..TRIALS {
            let plan = FaultPlan::new(0x5EED_0000 + trial, rate);
            let mut memory = clean_memory.clone();
            plan.corrupt_associative(&mut memory, 1);
            f32_acc.push(memory.accuracy(&samples));
            let mut quant = clean_quant.clone();
            plan.perturb_quantized(&mut quant, 2);
            int8_acc.push(quant.accuracy(&samples));
            let mut binary = clean_binary.clone();
            plan.flip_binary_memory(&mut binary, 3);
            bin_acc.push(binary_accuracy(&binary));
        }
        curve_f32.push(mean(&f32_acc));
        curve_int8.push(mean(&int8_acc));
        curve_binary.push(mean(&bin_acc));

        // Input-side corruption: the same per-site rate, applied as
        // salt-and-pepper noise to the test images (one pattern per rate;
        // the whole test set is already an average over samples).
        let policy = Corruption { salt_pepper_prob: rate, ..Corruption::none() };
        let noisy = policy.apply(&bench.test, &mut Rng::new(0xC0FF + i as u64));
        curve_input.push(model.evaluate(&noisy));
        eprintln!(
            "[robustness] rate {rate:.3}: f32 {:.4}, int8 {:.4}, binary {:.4}, input {:.4}",
            curve_f32[i], curve_int8[i], curve_binary[i], curve_input[i],
        );
    }

    let scale = match bench.scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let json = format!(
        "{{\n  \"experiment\": \"robustness_sweep\",\n  \"dataset\": \"synth10\",\n  \
         \"scale\": \"{scale}\",\n  \"teacher\": \"{}\",\n  \"cut\": {cut},\n  \
         \"hv_dim\": {},\n  \"teacher_accuracy\": {teacher_acc:.4},\n  \
         \"test_samples\": {},\n  \"trials\": {TRIALS},\n  \"rates\": {},\n  \
         \"curves\": {{\n    \"f32\": {},\n    \"int8\": {},\n    \"binary\": {},\n    \
         \"input_salt_pepper\": {}\n  }}\n}}",
        arch.display_name(),
        model.config().hv_dim,
        samples.len(),
        json_array(&RATES),
        json_array(&curve_f32),
        json_array(&curve_int8),
        json_array(&curve_binary),
        json_array(&curve_input),
    );
    println!("{json}");
    if std::fs::write("target/robustness_sweep.json", format!("{json}\n")).is_ok() {
        eprintln!("[robustness] wrote target/robustness_sweep.json");
    }
    eprintln!(
        "# Shape check vs paper §VI: every deployment form decays gracefully — \
         no panics, and accuracy at the 5% fault rate stays well above chance."
    );
}
