//! Robustness sweep — accuracy vs fault rate across deployment forms.
//!
//! The paper deploys the trained class memory in three forms: f32
//! accumulators (GPGPU), INT8 (Vitis-AI DPU), and packed binary (the
//! constant-memory GPGPU kernels / FPGA). This sweep injects seeded,
//! reproducible faults into each form — zero/saturate upsets for f32
//! cells, in-byte bit flips for INT8, word bit flips for packed binary —
//! at increasing rates and records test accuracy, demonstrating HD's
//! graceful degradation under hardware faults. A fourth curve corrupts
//! the *input* (salt-and-pepper noise) instead of the memory.
//!
//! Emits JSON on stdout through the `nshd-obs` exporter, writes the
//! same document to `BENCH_robustness.json` at the repository root (and
//! the historical `target/robustness_sweep.json`); progress goes to
//! stderr. Run with `NSHD_SCALE=full` for paper-shaped budgets, or
//! `--smoke` for a down-sized CI gate that exits non-zero when the
//! report is malformed.

use nshd_bench::{Bench, Scale};
use nshd_core::{NshdConfig, NshdModel};
use nshd_data::{normalize_pair, Corruption, ImageDataset, SynthSpec};
use nshd_hdc::{BinaryMemory, FaultPlan, QuantizedMemory};
use nshd_nn::{
    evaluate, fit, ActKind, Activation, Adam, Architecture, Conv2d, Flatten, Linear, MaxPool2d,
    Model, Sequential, TrainConfig,
};
use nshd_obs::Json;
use nshd_tensor::Rng;
use std::path::Path;

/// Per-site fault rates swept (the paper's deployment claim is exercised
/// well past the 5% point).
const RATES: [f32; 7] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.08, 0.12];
/// Down-sized sweep for the `--smoke` CI gate.
const SMOKE_RATES: [f32; 3] = [0.0, 0.02, 0.08];
/// Independent fault patterns averaged per (rate, form) cell.
const TRIALS: u64 = 3;

fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}

fn json_curve(xs: &[f32]) -> Json {
    Json::arr(xs.iter().map(|&x| Json::fixed(f64::from(x), 4)))
}

/// Everything the sweep itself needs, regardless of how it was trained.
struct Setup {
    model: NshdModel,
    test: ImageDataset,
    teacher_name: String,
    teacher_acc: f32,
    cut: usize,
    scale_label: &'static str,
    rates: Vec<f32>,
    trials: u64,
}

/// The regular (quick/full) setup: a cached MobileNetV2 teacher.
fn full_setup() -> Setup {
    let bench = Bench::synth10(101);
    let arch = Architecture::MobileNetV2;
    let (teacher, teacher_acc) = bench.train_teacher(arch, 7);
    eprintln!("[robustness] teacher {} test accuracy {teacher_acc:.4}", arch.display_name());
    let cut = arch.paper_cuts()[0];
    let cfg = NshdConfig::new(cut).with_retrain_epochs(bench.scale.retrain_epochs()).with_seed(13);
    let model = NshdModel::train(teacher, &bench.train, cfg);
    Setup {
        model,
        test: bench.test,
        teacher_name: arch.display_name().to_string(),
        teacher_acc,
        cut,
        scale_label: match bench.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        rates: RATES.to_vec(),
        trials: TRIALS,
    }
}

/// The `--smoke` setup: a tiny ad-hoc teacher trained for a few epochs,
/// a short rate list, one trial — seconds end-to-end. The teacher is
/// small but must still be *real*: its test accuracy is evaluated and
/// gated meaningfully above chance, because a sweep distilled from an
/// untrained teacher measures nothing.
fn smoke_setup() -> Setup {
    let (mut train, mut test) = SynthSpec::synth10(101).with_sizes(160, 48).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(7);
    let features = Sequential::new()
        .with(Conv2d::new(3, 8, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(8 * 16 * 16, 10, &mut rng));
    let mut teacher = Model {
        name: "robust-tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    };
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut Adam::new(2e-3, 1e-5),
        &TrainConfig { epochs: 6, batch_size: 32, seed: 9, ..TrainConfig::default() },
    );
    let teacher_acc = evaluate(&mut teacher, test.images(), test.labels(), 48);
    eprintln!("[robustness] smoke teacher test accuracy {teacher_acc:.4}");
    let cut = 3;
    let cfg = NshdConfig::new(cut)
        .with_hv_dim(512)
        .with_manifold(false)
        .with_retrain_epochs(1)
        .with_seed(13);
    let model = NshdModel::train(teacher, &train, cfg);
    Setup {
        model,
        test,
        teacher_name: "robust-tiny".into(),
        teacher_acc,
        cut,
        scale_label: "smoke",
        rates: SMOKE_RATES.to_vec(),
        trials: 1,
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let setup = if smoke { smoke_setup() } else { full_setup() };
    let Setup { model, test, teacher_name, teacher_acc, cut, scale_label, rates, trials } = setup;

    // Symbolise the held-out set once; memory-side fault injection reuses
    // the same queries for every (rate, form, trial) cell.
    let samples = model.symbolize_dataset(&test);
    let clean_memory = model.memory().clone();
    let clean_quant = QuantizedMemory::from_memory(&clean_memory);
    let clean_binary = BinaryMemory::from_memory(&clean_memory);
    let packed: Vec<_> = samples.iter().map(|(hv, l)| (hv.to_packed(), *l)).collect();
    let binary_accuracy = |mem: &BinaryMemory| {
        let correct = packed.iter().filter(|(hv, l)| mem.predict(hv) == *l).count();
        correct as f32 / packed.len() as f32
    };
    eprintln!(
        "[robustness] clean accuracy: f32 {:.4}, int8 {:.4}, binary {:.4}",
        clean_memory.accuracy(&samples),
        clean_quant.accuracy(&samples),
        binary_accuracy(&clean_binary),
    );

    let mut curve_f32 = Vec::with_capacity(rates.len());
    let mut curve_int8 = Vec::with_capacity(rates.len());
    let mut curve_binary = Vec::with_capacity(rates.len());
    let mut curve_input = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        let (mut f32_acc, mut int8_acc, mut bin_acc) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let plan = FaultPlan::new(0x5EED_0000 + trial, rate);
            let mut memory = clean_memory.clone();
            plan.corrupt_associative(&mut memory, 1);
            f32_acc.push(memory.accuracy(&samples));
            let mut quant = clean_quant.clone();
            plan.perturb_quantized(&mut quant, 2);
            int8_acc.push(quant.accuracy(&samples));
            let mut binary = clean_binary.clone();
            plan.flip_binary_memory(&mut binary, 3);
            bin_acc.push(binary_accuracy(&binary));
        }
        curve_f32.push(mean(&f32_acc));
        curve_int8.push(mean(&int8_acc));
        curve_binary.push(mean(&bin_acc));

        // Input-side corruption: the same per-site rate, applied as
        // salt-and-pepper noise to the test images (one pattern per rate;
        // the whole test set is already an average over samples).
        let policy = Corruption { salt_pepper_prob: rate, ..Corruption::none() };
        let noisy = policy.apply(&test, &mut Rng::new(0xC0FF + i as u64));
        curve_input.push(model.evaluate(&noisy));
        eprintln!(
            "[robustness] rate {rate:.3}: f32 {:.4}, int8 {:.4}, binary {:.4}, input {:.4}",
            curve_f32[i], curve_int8[i], curve_binary[i], curve_input[i],
        );
    }

    let doc = Json::obj(vec![
        ("experiment", Json::str("robustness_sweep")),
        ("dataset", Json::str("synth10")),
        ("scale", Json::str(scale_label)),
        ("teacher", Json::str(teacher_name)),
        ("cut", Json::from(cut)),
        ("hv_dim", Json::from(model.config().hv_dim)),
        ("teacher_accuracy", Json::fixed(f64::from(teacher_acc), 4)),
        ("test_samples", Json::from(samples.len())),
        ("trials", Json::from(trials)),
        ("rates", json_curve(&rates)),
        (
            "curves",
            Json::obj(vec![
                ("f32", json_curve(&curve_f32)),
                ("int8", json_curve(&curve_int8)),
                ("binary", json_curve(&curve_binary)),
                ("input_salt_pepper", json_curve(&curve_input)),
            ]),
        ),
    ]);
    let json = doc.to_string();
    println!("{json}");

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_robustness.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_robustness.json");
    eprintln!("[robustness] wrote {}", out.display());
    if std::fs::write("target/robustness_sweep.json", format!("{json}\n")).is_ok() {
        eprintln!("[robustness] wrote target/robustness_sweep.json");
    }

    if smoke {
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["\"experiment\":\"robustness_sweep\"", "\"scale\":\"smoke\"", "\"curves\":"] {
            assert!(json.contains(key), "smoke report missing {key}");
        }
        // A sweep distilled from an untrained teacher measures nothing:
        // the smoke teacher must sit meaningfully above 10-class chance.
        assert!(
            teacher_acc >= 0.2,
            "smoke teacher accuracy {teacher_acc:.4} is not meaningfully above chance (0.1)"
        );
        for curve in [&curve_f32, &curve_int8, &curve_binary, &curve_input] {
            assert_eq!(curve.len(), rates.len(), "curve length mismatch");
            assert!(
                curve.iter().all(|a| (0.0..=1.0).contains(a)),
                "accuracy out of range: {curve:?}"
            );
        }
        assert!(out.is_file(), "BENCH_robustness.json missing at {}", out.display());
        eprintln!("[robustness] smoke OK");
    } else {
        eprintln!(
            "# Shape check vs paper §VI: every deployment form decays gracefully — \
             no panics, and accuracy at the 5% fault rate stays well above chance."
        );
    }
}
