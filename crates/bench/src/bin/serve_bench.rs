//! Serving-runtime benchmark: batched multi-worker inference through
//! `nshd-runtime` versus a single-threaded per-sample baseline.
//!
//! Trains a small NSHD model on Synth10, then serves the same request
//! stream two ways:
//!
//! 1. **baseline** — one image at a time through `NshdModel::predict`
//!    on the calling thread (bit-serial HD encode, scalar scoring);
//! 2. **batched** — every request submitted to an `InferenceRuntime`
//!    (micro-batching collector + worker pool + GEMM encode + one
//!    `matmul_bt` score per batch), with an `nshd-obs` recorder
//!    installed so every stage is traced and profiled.
//!
//! Emits one JSON object on stdout with both throughputs, the batched
//! latency/queue-wait/execute statistics, per-stage
//! (extract/encode/score) wall time and achieved GFLOP/s, and the full
//! `nshd-obs` trace report; the same document is written to
//! `BENCH_serve.json` at the repository root, and the hierarchical
//! flame report goes to stderr. `--smoke` runs a down-sized
//! configuration and exits non-zero if the report is malformed or the
//! predictions diverge — the CI gate.
//!
//! Flags: `--workers N` (default 4), `--batch N` (default 32),
//! `--max-wait-us N` (default 500), `--requests N` (default by
//! `NSHD_SCALE`), `--smoke`.

use nshd_bench::Scale;
use nshd_core::{NshdConfig, NshdEngine, NshdModel};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_nn::{
    fit, ActKind, Activation, Adam, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential,
    TrainConfig,
};
use nshd_obs::{clock, Json, Recorder, Report};
use nshd_runtime::{InferenceRuntime, RuntimeConfig};
use nshd_tensor::{Rng, Tensor};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    workers: usize,
    max_batch: usize,
    max_wait_us: u64,
    requests: usize,
    smoke: bool,
}

fn parse_args(scale: Scale) -> Args {
    let mut args = Args {
        workers: 4,
        max_batch: 32,
        max_wait_us: 500,
        requests: match scale {
            Scale::Quick => 512,
            Scale::Full => 2_048,
        },
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match flag.as_str() {
            "--workers" => args.workers = num("--workers") as usize,
            "--batch" => args.max_batch = num("--batch") as usize,
            "--max-wait-us" => args.max_wait_us = num("--max-wait-us"),
            "--requests" => args.requests = num("--requests") as usize,
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        args.workers = 2;
        args.requests = args.requests.min(96);
    }
    args
}

/// A deliberately early-cut teacher: the serving profile the runtime
/// targets keeps the CNN prefix cheap and lets HD encoding dominate,
/// which is where batching pays (GEMM encode vs bit-serial).
fn tiny_teacher(rng: &mut Rng) -> Model {
    let features = Sequential::new()
        .with(Conv2d::new(3, 8, 3, 1, 1, rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier = Sequential::new().with(Flatten::new()).with(Linear::new(8 * 16 * 16, 10, rng));
    Model {
        name: "serve-tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Per-stage summary pulled out of the trace: wall time and achieved
/// GFLOP/s for one pipeline stage nested under the batch `request` span.
fn stage_json(report: &Report, stage: &str) -> Json {
    match report.find(&format!("request/{stage}")) {
        Some(node) => Json::obj(vec![
            ("count", Json::from(node.stats.count)),
            ("total_ms", Json::fixed(node.stats.total_nanos as f64 / 1e6, 3)),
            ("mean_us", Json::fixed(node.stats.mean_nanos() / 1e3, 1)),
            ("gflops", Json::fixed(node.gflops(), 3)),
        ]),
        None => Json::Null,
    }
}

fn main() {
    let scale = Scale::from_env();
    let args = parse_args(scale);
    let (train_size, hv_dim, teacher_epochs, retrain_epochs) = if args.smoke {
        (60, 1_024, 1, 1)
    } else {
        match scale {
            Scale::Quick => (200, 2_048, 3, 2),
            Scale::Full => (600, 2_048, 6, 4),
        }
    };

    eprintln!("[serve_bench] training model (train={train_size}, hv_dim={hv_dim})");
    let (mut train, mut test) = SynthSpec::synth10(71).with_sizes(train_size, 128).generate();
    normalize_pair(&mut train, &mut test);
    let mut teacher = tiny_teacher(&mut Rng::new(7));
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut Adam::new(2e-3, 1e-5),
        &TrainConfig { epochs: teacher_epochs, batch_size: 32, seed: 9, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(3)
        .with_hv_dim(hv_dim)
        .with_manifold(false)
        .with_retrain_epochs(retrain_epochs)
        .with_seed(13);
    let model = NshdModel::train(teacher, &train, cfg);

    // The request stream cycles the test split.
    let images: Vec<Tensor> = (0..args.requests).map(|i| test.sample(i % test.len()).0).collect();

    // Baseline: single-threaded, one image at a time, deliberately
    // unrecorded so its per-sample spans don't dilute the batched trace.
    eprintln!("[serve_bench] baseline: {} per-sample predictions", images.len());
    let mut baseline_preds = Vec::with_capacity(images.len());
    let mut baseline_lat_us: Vec<f64> = Vec::with_capacity(images.len());
    let base_start = clock::now();
    for img in &images {
        let t = clock::now();
        baseline_preds.push(model.predict(img));
        baseline_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let base_elapsed = base_start.elapsed().as_secs_f64();
    let base_rps = images.len() as f64 / base_elapsed;
    baseline_lat_us.sort_by(f64::total_cmp);

    // Batched: everything through the serving runtime, traced.
    eprintln!(
        "[serve_bench] batched: workers={} max_batch={} max_wait={}us",
        args.workers, args.max_batch, args.max_wait_us
    );
    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());
    let engine = Arc::new(NshdEngine::new(&model).expect("trained model must pass verification"));
    let runtime = InferenceRuntime::new(
        engine,
        RuntimeConfig {
            workers: args.workers,
            max_batch: args.max_batch,
            max_wait: Duration::from_micros(args.max_wait_us),
        },
    )
    .expect("verified engine must construct a runtime");
    let handles: Vec<_> = images
        .iter()
        .map(|img| runtime.submit(img.clone()).expect("runtime accepts requests while live"))
        .collect();
    let batched_preds: Vec<usize> =
        handles.into_iter().map(|h| h.wait().expect("well-formed requests must succeed")).collect();
    let metrics = runtime.shutdown();
    nshd_obs::install(previous);
    let report = recorder.report();

    let flame = report.text();
    eprintln!("[serve_bench] batched-phase trace:\n{flame}");

    let predictions_match = batched_preds == baseline_preds;
    let speedup = if base_rps > 0.0 { metrics.requests_per_sec / base_rps } else { 0.0 };
    let doc = Json::obj(vec![
        (
            "scale",
            Json::str(if args.smoke {
                "smoke"
            } else if scale == Scale::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        ("requests", Json::from(images.len())),
        ("workers", Json::from(args.workers)),
        ("max_batch", Json::from(args.max_batch)),
        ("max_wait_us", Json::from(args.max_wait_us)),
        ("hv_dim", Json::from(hv_dim)),
        (
            "baseline",
            Json::obj(vec![
                ("requests_per_sec", Json::fixed(base_rps, 1)),
                ("p50_us", Json::fixed(percentile(&baseline_lat_us, 0.50), 1)),
                ("p99_us", Json::fixed(percentile(&baseline_lat_us, 0.99), 1)),
            ]),
        ),
        ("batched", Json::Raw(metrics.to_json())),
        (
            "stages",
            Json::obj(vec![
                ("extract", stage_json(&report, "extract")),
                ("encode", stage_json(&report, "encode")),
                ("score", stage_json(&report, "score")),
            ]),
        ),
        ("trace", report.to_json()),
        ("speedup", Json::fixed(speedup, 2)),
        ("predictions_match", Json::from(predictions_match)),
    ]);
    let json = doc.to_string();
    println!("{json}");

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_serve.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!("[serve_bench] wrote {}", out.display());

    if args.smoke {
        assert!(!json.is_empty() && json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"batched\":",
            "\"batch_histogram\":[[",
            "\"p99\":",
            "\"queue_wait_us\":",
            "\"execute_us\":",
            "\"speedup\":",
            "\"stages\":",
            "\"schema\":\"nshd-obs/v1\"",
        ] {
            assert!(json.contains(key), "smoke report missing {key}");
        }
        assert!(
            predictions_match,
            "smoke: batched predictions diverged from the sequential baseline"
        );
        assert_eq!(metrics.requests as usize, images.len());
        // The trace must show the engine stages nested under the batch
        // request span, and the extract stage must report real compute.
        for stage in ["extract", "encode", "score"] {
            let node = report
                .find(&format!("request/{stage}"))
                .unwrap_or_else(|| panic!("smoke trace missing request/{stage}"));
            assert!(node.stats.count > 0, "request/{stage} never entered");
        }
        let extract = report.find("request/extract").expect("checked above");
        assert!(extract.gflops() > 0.0, "extract stage reported no FLOPs");
        assert!(
            flame.lines().any(|l| l.starts_with("request ")),
            "flame report missing the request root:\n{flame}"
        );
        assert!(
            flame.lines().any(|l| l.starts_with("  extract")),
            "flame report does not nest extract under request:\n{flame}"
        );
        assert!(out.is_file(), "BENCH_serve.json missing at {}", out.display());
        eprintln!("[serve_bench] smoke OK");
    }
}
