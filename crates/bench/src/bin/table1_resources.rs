//! Table I — Resource utilisation of the DPU accelerator on the Xilinx
//! ZCU104 (the configuration constant our DPU model reports).

use nshd_bench::{print_header, print_row};
use nshd_hwmodel::DpuModel;

fn main() {
    let dpu = DpuModel::zcu104();
    println!("# Table I — Design acceleration on Xilinx ZCU104\n");
    let widths = [6usize, 10, 10, 12];
    print_header(&["", "Total", "Available", "Utilization"], &widths);
    for (name, used, avail, pct) in dpu.resource_table() {
        let (u, a) = (format_k(used), format_k(avail));
        print_row(&[name.to_string(), u, a, format!("{pct:.2}%")], &widths);
    }
    println!();
    println!("Frequency: {} MHz", dpu.frequency_hz / 1e6);
    println!("Power:     {:.3} W", dpu.power_w);
}

fn format_k(v: u64) -> String {
    if v >= 10_000 {
        format!("{:.1}K", v as f64 / 1_000.0)
    } else {
        format!("{v}")
    }
}
