//! Table II — Model size (learning parameters) comparison: CNN vs NSHD vs
//! BaselineHD at each paper cut layer.
//!
//! Paper reference points: NSHD below both CNN and BaselineHD at early
//! cuts (e.g. VGG16@29: BaselineHD ≈ +40% over NSHD); NSHD can exceed the
//! CNN only at the deepest EfficientNet cuts where the HD stage dominates.

use nshd_bench::{print_header, print_row};
use nshd_core::{
    baselinehd_size_from_stats, cnn_size_from_stats, nshd_size_from_stats, NshdConfig,
};
use nshd_nn::specs::{arch_stats, SpecVariant};
use nshd_nn::Architecture;

fn main() {
    println!("# Table II — Model size (learning parameters)\n");
    let widths = [15usize, 7, 12, 12, 12, 10];
    print_header(&["Model", "Layer", "CNN", "NSHD", "BaselineHD", "Δbase %"], &widths);
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        let cnn_mb = cnn_size_from_stats(&stats) as f64 / (1024.0 * 1024.0);
        for &cut in arch.paper_cuts() {
            let cfg = NshdConfig::new(cut);
            let nshd = nshd_size_from_stats(&stats, &cfg, 10);
            let base = baselinehd_size_from_stats(&stats, cut, cfg.hv_dim, 10);
            let delta = (base.total() as f64 / nshd.total() as f64 - 1.0) * 100.0;
            print_row(
                &[
                    arch.display_name().to_string(),
                    format!("{}", cut - 1),
                    format!("{cnn_mb:.2}MB"),
                    format!("{:.2}MB", nshd.total_mb()),
                    format!("{:.2}MB", base.total_mb()),
                    format!("{delta:+.1}"),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("# Shape check vs paper: NSHD < BaselineHD everywhere (the manifold");
    println!("# layer shrinks the projection); NSHD < CNN at early cuts.");
}
