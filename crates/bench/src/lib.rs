//! # nshd-bench
//!
//! The experiment harness regenerating every table and figure of the
//! NSHD paper (DAC 2023). One binary per experiment:
//!
//! | Binary | Paper result |
//! |--------|--------------|
//! | `fig4_energy`       | Fig. 4 — energy-efficiency improvement vs CNN |
//! | `fig5_macs`         | Fig. 5 — manifold learner's MAC reduction |
//! | `fig6_fpga_fps`     | Fig. 6 — FPGA (DPU) throughput |
//! | `table1_resources`  | Table I — ZCU104 resource utilisation |
//! | `table2_model_size` | Table II — model sizes |
//! | `fig7_accuracy`     | Fig. 7 — accuracy comparison |
//! | `fig8_kd_impact`    | Fig. 8 — knowledge-distillation impact |
//! | `fig9_kd_sweep`     | Fig. 9 — (t, α) hyperparameter grid |
//! | `fig10_dim_tradeoff`| Fig. 10 — dimensionality/efficiency tradeoff |
//! | `fig11_tsne`        | Fig. 11 — t-SNE explainability |
//!
//! Criterion micro-benchmarks (under `benches/`) cover the timing claims:
//! encode throughput, similarity search, retraining epochs, and
//! end-to-end inference. Experiment scale is controlled by the
//! `NSHD_SCALE` environment variable (`quick` — CI-sized, the default —
//! or `full` — paper-shaped runs that take tens of minutes on one core).

#![warn(missing_docs)]

pub mod timing;

use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
use nshd_nn::{evaluate, fit, load_model, save_model, Adam, Architecture, Model, TrainConfig};
use nshd_tensor::Rng;
use std::path::PathBuf;

/// Experiment scale selected by the `NSHD_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized runs: small datasets, few epochs, minutes end-to-end.
    Quick,
    /// Paper-shaped runs: larger datasets and budgets.
    Full,
}

impl Scale {
    /// Reads the scale from the environment (default [`Scale::Quick`]).
    pub fn from_env() -> Scale {
        match std::env::var("NSHD_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Training-set size for accuracy experiments.
    pub fn train_size(self) -> usize {
        match self {
            Scale::Quick => 600,
            Scale::Full => 2_000,
        }
    }

    /// Test-set size for accuracy experiments.
    pub fn test_size(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Full => 600,
        }
    }

    /// Teacher CNN training epochs.
    pub fn teacher_epochs(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 30,
        }
    }

    /// NSHD retraining epochs.
    pub fn retrain_epochs(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 20,
        }
    }
}

/// A prepared experiment environment: normalised train/test splits.
pub struct Bench {
    /// Active scale.
    pub scale: Scale,
    /// Normalised training split.
    pub train: ImageDataset,
    /// Normalised test split.
    pub test: ImageDataset,
    /// Cache tag identifying the dataset configuration.
    tag: String,
}

impl Bench {
    /// Builds the Synth10 environment (the CIFAR-10 substitute).
    pub fn synth10(seed: u64) -> Bench {
        Bench::build(SynthSpec::synth10(seed), Scale::from_env(), format!("synth10-{seed}"))
    }

    /// Builds the Synth100 environment (the CIFAR-100 substitute). Sizes
    /// scale up relative to Synth10 so each of the 100 classes still has
    /// a usable number of samples.
    pub fn synth100(seed: u64) -> Bench {
        let scale = Scale::from_env();
        let spec =
            SynthSpec::synth100(seed).with_sizes(scale.train_size() * 5 / 2, scale.test_size() * 2);
        let (mut train, mut test) = spec.generate();
        normalize_pair(&mut train, &mut test);
        Bench { scale, train, test, tag: format!("synth100-{seed}") }
    }

    fn build(spec: SynthSpec, scale: Scale, tag: String) -> Bench {
        let spec = spec.with_sizes(scale.train_size(), scale.test_size());
        let (mut train, mut test) = spec.generate();
        normalize_pair(&mut train, &mut test);
        Bench { scale, train, test, tag }
    }

    /// Trains a teacher CNN of the given architecture on the training
    /// split, returning the model and its test accuracy. Trained weights
    /// are cached under `target/teacher-cache/` keyed by architecture,
    /// dataset, scale and seed, so every experiment binary reuses the
    /// same teachers; delete that directory to force retraining.
    pub fn train_teacher(&self, arch: Architecture, seed: u64) -> (Model, f32) {
        let mut rng = Rng::new(seed);
        let mut model = arch.build(self.train.num_classes(), &mut rng);
        let cache = self.cache_path(arch, seed);
        if let Ok(file) = std::fs::File::open(&cache) {
            if load_model(&mut model, std::io::BufReader::new(file)).is_ok() {
                let acc = evaluate(&mut model, self.test.images(), self.test.labels(), 50);
                eprintln!("[bench] loaded cached teacher {}", cache.display());
                return (model, acc);
            }
        }
        let mut opt = Adam::new(2e-3, 1e-5);
        fit(
            &mut model,
            self.train.images(),
            self.train.labels(),
            &mut opt,
            &TrainConfig {
                epochs: self.scale.teacher_epochs(),
                batch_size: 32,
                seed: seed ^ 0xbeef,
                ..TrainConfig::default()
            },
        );
        if let Some(dir) = cache.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(file) = std::fs::File::create(&cache) {
            let _ = save_model(&mut model, std::io::BufWriter::new(file));
        }
        let acc = evaluate(&mut model, self.test.images(), self.test.labels(), 50);
        (model, acc)
    }

    fn cache_path(&self, arch: Architecture, seed: u64) -> PathBuf {
        let scale = match self.scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        };
        PathBuf::from(format!(
            "target/teacher-cache/{}-{}-{}-{}.nshd",
            arch.display_name(),
            self.tag,
            scale,
            seed
        ))
    }
}

/// Prints a table row with aligned columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let cells: Vec<String> =
        cols.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
    println!("| {} |", cells.join(" | "));
}

/// Prints a table header followed by a separator line.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    print_row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(), widths);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        if std::env::var("NSHD_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
        assert!(Scale::Full.train_size() > Scale::Quick.train_size());
    }

    #[test]
    fn bench_builds_normalised_splits() {
        let spec = SynthSpec::synth10(1).with_sizes(20, 10);
        let (mut train, mut test) = spec.generate();
        normalize_pair(&mut train, &mut test);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
    }
}
