//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion dependency is
//! replaced by this self-contained harness: warm up, pick an iteration
//! count targeting a fixed measurement budget, and report mean/min
//! per-iteration times. Benches stay `harness = false` binaries runnable
//! via `cargo bench`.

use nshd_obs::clock;
use std::time::Duration;

/// Target wall-clock budget for one measurement loop.
const BUDGET: Duration = Duration::from_millis(300);
/// Iteration ceiling, so trivially fast closures terminate promptly.
const MAX_ITERS: u32 = 100_000;

/// One measured benchmark: per-iteration mean and minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration (across measurement batches).
    pub min: Duration,
    /// Number of timed iterations.
    pub iters: u32,
}

/// Times `f`, adapting the iteration count to the measurement budget.
pub fn measure<T>(mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up + calibration run.
    let start = clock::now();
    std::hint::black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = ((BUDGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128)) as u32;

    // Measure in batches of up to 10 so `min` smooths scheduler noise.
    let batches = iters.min(10);
    let per_batch = iters / batches;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut counted = 0u32;
    for _ in 0..batches {
        let start = clock::now();
        for _ in 0..per_batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed / per_batch);
        counted += per_batch;
    }
    Measurement { mean: total / counted.max(1), min, iters: counted }
}

/// A named group of benchmarks, printed as aligned rows.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group, printing its header.
    pub fn new(name: &str) -> Group {
        println!("\n## {name}");
        Group { name: name.to_string() }
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench<T>(&self, label: &str, f: impl FnMut() -> T) -> Measurement {
        let m = measure(f);
        println!(
            "{}/{label:<24} mean {:>12}  min {:>12}  ({} iters)",
            self.name,
            format_duration(m.mean),
            format_duration(m.min),
            m.iters
        );
        m
    }
}

/// Formats a duration with an appropriate unit.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_times() {
        let m = measure(|| (0..100).map(|i: u64| i * i).sum::<u64>());
        assert!(m.mean > Duration::ZERO);
        assert!(m.min <= m.mean * 2);
        assert!(m.iters >= 1);
    }

    #[test]
    fn format_covers_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
