//! The comparison models of the paper's Fig. 7: VanillaHD, BaselineHD,
//! and the CNN itself, behind one [`Classifier`] interface.

use crate::robust::PipelineError;
use crate::scaler::FeatureScaler;
use nshd_data::ImageDataset;
use nshd_hdc::{
    bundle_init, AssociativeMemory, BipolarHv, MassTrainer, NonlinearEncoder, RandomProjection,
};
use nshd_nn::{evaluate as nn_evaluate, Mode, Model};
use nshd_tensor::{Tensor, TensorError};

/// A trained image classifier that can be scored on a dataset.
pub trait Classifier {
    /// Display name for experiment tables.
    fn name(&self) -> String;

    /// Classification accuracy over a dataset.
    fn evaluate(&mut self, dataset: &ImageDataset) -> f32;
}

/// A [`Classifier`] whose penultimate-layer embedding is exposed — the
/// teacher interface the HD-Glue ensemble (`nshd-glue`) fuses over.
///
/// The embedding is the *raw* flattened activation at the classifier's
/// truncation point (no per-teacher standardisation; consumers fit
/// their own [`FeatureScaler`] so every teacher is normalised on the
/// same data).
pub trait EmbeddingClassifier: Classifier {
    /// Flattened length of one sample's penultimate-layer embedding.
    fn embedding_dim(&self) -> usize;

    /// Penultimate-layer embeddings for a batch of CHW images, as an
    /// `N×E` row-major matrix (immutable eval-mode inference; safe to
    /// call from several threads).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Tensor`] when an image's shape differs
    /// from the network's input shape, and
    /// [`PipelineError::NonFiniteActivation`] when inputs or embeddings
    /// contain NaN/∞.
    fn embed_batch(&self, images: &[Tensor]) -> Result<Tensor, PipelineError>;

    /// Snapshots the extractor as `(teacher clone, cut)` so a serving
    /// head can be built without keeping the classifier alive.
    fn extractor(&self) -> (Model, usize);
}

/// Shared [`EmbeddingClassifier::embed_batch`] implementation: stack,
/// run the truncated teacher once, flatten to `N×E`, and reject
/// non-finite values.
fn embed_with(teacher: &Model, cut: usize, images: &[Tensor]) -> Result<Tensor, PipelineError> {
    let embedding = teacher.feature_len_at(cut);
    if images.is_empty() {
        return Ok(Tensor::zeros([0, embedding]));
    }
    for image in images {
        if image.dims() != teacher.input_shape {
            return Err(TensorError::IncompatibleShapes {
                lhs: teacher.input_shape.clone(),
                rhs: image.dims().to_vec(),
            }
            .into());
        }
        if image.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(PipelineError::NonFiniteActivation { stage: "embedding input" });
        }
    }
    let batch = Tensor::stack(images)?;
    let feats = teacher.infer_features_at(&batch, cut);
    if feats.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(PipelineError::NonFiniteActivation { stage: "embedding" });
    }
    Ok(feats.reshaped([images.len(), embedding])?)
}

/// VanillaHD: the standalone HD model with nonlinear (ID–level) encoding
/// on raw pixels and MASS retraining — no feature extractor at all.
///
/// This is the baseline whose CIFAR performance the paper's introduction
/// quotes as 39.88% / 19.7%.
pub struct VanillaHd {
    encoder: NonlinearEncoder,
    memory: AssociativeMemory,
}

impl VanillaHd {
    /// Trains VanillaHD on raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `dim`/`epochs` are zero-ish in a
    /// way that prevents training.
    pub fn train(train: &ImageDataset, dim: usize, epochs: usize, seed: u64) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let features = train.sample(0).0.len();
        // Normalised pixels span roughly [-3, 3]; 32 quantisation levels.
        let encoder = NonlinearEncoder::new(features, dim, 32, -3.0, 3.0, seed);
        let samples: Vec<(BipolarHv, usize)> = (0..train.len())
            .map(|i| {
                let (img, label) = train.sample(i);
                (encoder.encode(img.as_slice()), label)
            })
            .collect();
        let mut memory = bundle_init(train.num_classes(), dim, &samples);
        let trainer = MassTrainer::new(0.2);
        for _ in 0..epochs {
            trainer.epoch(&mut memory, &samples);
        }
        VanillaHd { encoder, memory }
    }
}

impl Classifier for VanillaHd {
    fn name(&self) -> String {
        "VanillaHD".into()
    }

    fn evaluate(&mut self, dataset: &ImageDataset) -> f32 {
        let samples: Vec<(BipolarHv, usize)> = (0..dataset.len())
            .map(|i| {
                let (img, label) = dataset.sample(i);
                (self.encoder.encode(img.as_slice()), label)
            })
            .collect();
        self.memory.accuracy(&samples)
    }
}

/// BaselineHD: prior work's CNN-features-into-HD approach (the paper's
/// reference \[9\]) — a truncated extractor whose *raw* flattened features are
/// random-projection encoded (no manifold layer) with plain MASS
/// retraining (no distillation).
pub struct BaselineHd {
    teacher: Model,
    cut: usize,
    scaler: FeatureScaler,
    projection: RandomProjection,
    memory: AssociativeMemory,
}

impl BaselineHd {
    /// Trains BaselineHD from a (pre-trained) teacher CNN truncated at
    /// `cut`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `cut` exceeds the feature stack.
    pub fn train(
        mut teacher: Model,
        train: &ImageDataset,
        cut: usize,
        dim: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        assert!(cut <= teacher.features.len(), "cut {cut} exceeds feature stack");
        let features = teacher.feature_len_at(cut);
        let projection = RandomProjection::new(features, dim, seed);
        // Extract once, standardise per feature (see `FeatureScaler`),
        // then encode.
        let feats: Vec<Tensor> = (0..train.len())
            .map(|i| {
                let (img, _) = train.sample(i);
                let batched = img
                    .reshape([1, img.dims()[0], img.dims()[1], img.dims()[2]])
                    .expect("CHW image");
                teacher.features_at(&batched, cut, Mode::Eval).batch_item(0)
            })
            .collect();
        let scaler = FeatureScaler::fit(&feats);
        let samples: Vec<(BipolarHv, usize)> = feats
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let scaled = scaler.transform(f);
                (projection.encode(scaled.as_slice()), train.sample(i).1)
            })
            .collect();
        let mut memory = bundle_init(train.num_classes(), dim, &samples);
        let trainer = MassTrainer::new(0.2);
        for _ in 0..epochs {
            trainer.epoch(&mut memory, &samples);
        }
        BaselineHd { teacher, cut, scaler, projection, memory }
    }

    /// The truncation point.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Symbolises one CHW image.
    pub fn symbolize(&mut self, image: &Tensor) -> BipolarHv {
        let batched = image
            .reshape([1, image.dims()[0], image.dims()[1], image.dims()[2]])
            .expect("CHW image");
        let feats = self.teacher.features_at(&batched, self.cut, Mode::Eval);
        let scaled = self.scaler.transform(&feats.batch_item(0));
        self.projection.encode(scaled.as_slice())
    }
}

impl Classifier for BaselineHd {
    fn name(&self) -> String {
        format!("BaselineHD({}@{})", self.teacher.name, self.cut)
    }

    fn evaluate(&mut self, dataset: &ImageDataset) -> f32 {
        let samples: Vec<(BipolarHv, usize)> = (0..dataset.len())
            .map(|i| {
                let (img, label) = dataset.sample(i);
                (self.symbolize(&img), label)
            })
            .collect();
        self.memory.accuracy(&samples)
    }
}

/// The original CNN as a classifier (the paper's "CNN" series).
pub struct CnnClassifier {
    model: Model,
}

impl CnnClassifier {
    /// Wraps a trained CNN.
    pub fn new(model: Model) -> Self {
        CnnClassifier { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

impl Classifier for CnnClassifier {
    fn name(&self) -> String {
        format!("CNN({})", self.model.name)
    }

    fn evaluate(&mut self, dataset: &ImageDataset) -> f32 {
        nn_evaluate(&mut self.model, dataset.images(), dataset.labels(), 32)
    }
}

impl EmbeddingClassifier for CnnClassifier {
    fn embedding_dim(&self) -> usize {
        self.model.feature_len_at(self.model.features.len())
    }

    fn embed_batch(&self, images: &[Tensor]) -> Result<Tensor, PipelineError> {
        // The CNN's penultimate layer is the end of its feature stack
        // (everything before the classifier head).
        embed_with(&self.model, self.model.features.len(), images)
    }

    fn extractor(&self) -> (Model, usize) {
        (self.model.clone(), self.model.features.len())
    }
}

impl Classifier for crate::model::NshdModel {
    fn name(&self) -> String {
        format!("NSHD({}@{})", self.teacher().name, self.config().cut)
    }

    fn evaluate(&mut self, dataset: &ImageDataset) -> f32 {
        NshdModel::evaluate(self, dataset)
    }
}

impl EmbeddingClassifier for crate::model::NshdModel {
    fn embedding_dim(&self) -> usize {
        self.teacher().feature_len_at(self.config().cut)
    }

    fn embed_batch(&self, images: &[Tensor]) -> Result<Tensor, PipelineError> {
        // NSHD's symbolic stage already truncates the teacher at the
        // configured cut; that truncation point is its embedding.
        embed_with(self.teacher(), self.config().cut, images)
    }

    fn extractor(&self) -> (Model, usize) {
        (self.teacher().clone(), self.config().cut)
    }
}

use crate::model::NshdModel;

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_data::{normalize_pair, SynthSpec};
    use nshd_nn::{fit, Adam, Architecture, TrainConfig};
    use nshd_tensor::Rng;

    fn data() -> (ImageDataset, ImageDataset) {
        let (mut train, mut test) = SynthSpec::synth10(31).with_sizes(100, 60).generate();
        normalize_pair(&mut train, &mut test);
        (train, test)
    }

    #[test]
    fn vanilla_hd_is_weak_but_trainable() {
        let (train, test) = data();
        let mut vanilla = VanillaHd::train(&train, 1_000, 3, 7);
        let acc = vanilla.evaluate(&test);
        // On jittered synthetic scenes raw-pixel HD stays far from CNN
        // quality (the paper's §I observation) but above chance.
        assert!(acc < 0.7, "VanillaHD unexpectedly strong: {acc}");
        assert_eq!(vanilla.name(), "VanillaHD");
    }

    #[test]
    fn baseline_hd_uses_extracted_features() {
        let (train, test) = data();
        let mut rng = Rng::new(9);
        let mut teacher = Architecture::EfficientNetB0.build(10, &mut rng);
        let mut opt = Adam::new(2e-3, 1e-5);
        fit(
            &mut teacher,
            train.images(),
            train.labels(),
            &mut opt,
            &TrainConfig { epochs: 3, batch_size: 32, seed: 4, ..TrainConfig::default() },
        );
        let mut baseline = BaselineHd::train(teacher, &train, 8, 1_000, 3, 11);
        let acc = baseline.evaluate(&test);
        assert!(acc > 0.15, "BaselineHD accuracy {acc}");
        assert!(baseline.name().starts_with("BaselineHD"));
        assert_eq!(baseline.cut(), 8);
    }

    #[test]
    fn cnn_classifier_scores_its_model() {
        let (train, test) = data();
        let mut rng = Rng::new(10);
        let mut teacher = Architecture::MobileNetV2.build(10, &mut rng);
        let mut opt = Adam::new(2e-3, 1e-5);
        fit(
            &mut teacher,
            train.images(),
            train.labels(),
            &mut opt,
            &TrainConfig { epochs: 3, batch_size: 32, seed: 5, ..TrainConfig::default() },
        );
        let mut cnn = CnnClassifier::new(teacher);
        let acc = cnn.evaluate(&test);
        assert!(acc > 0.12, "CNN accuracy {acc}");
        assert!(cnn.name().starts_with("CNN("));
    }
}
