//! NSHD pipeline configuration.

use nshd_hdc::{DistillConfig, SteConfig};

/// Configuration of an NSHD model, with the paper's defaults.
///
/// # Examples
///
/// ```
/// use nshd_core::NshdConfig;
///
/// let cfg = NshdConfig::new(8)        // cut after EfficientNet block 7
///     .with_hv_dim(3_000)             // paper default D
///     .with_manifold_features(100)    // paper default F̂
///     .with_retrain_epochs(10);
/// assert_eq!(cfg.cut, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NshdConfig {
    /// Number of feature layers kept from the CNN (a cut of `n` truncates
    /// after the paper's layer index `n−1`).
    pub cut: usize,
    /// Hypervector dimensionality `D` (paper default 3,000).
    pub hv_dim: usize,
    /// Manifold-layer output width `F̂` (paper default 100; must be at
    /// least the class count for accurate predictions, §VII-A).
    pub manifold_features: usize,
    /// Whether the manifold learner is present (disabled for the
    /// BaselineHD comparison, which projects the raw extracted features).
    pub use_manifold: bool,
    /// Knowledge-distillation hyperparameters (α = 0 degenerates to pure
    /// MASS retraining).
    pub distill: DistillConfig,
    /// Retraining epochs over the symbolised training set.
    pub retrain_epochs: usize,
    /// Learning rate of the manifold-layer update decoded through the HD
    /// encoder.
    pub manifold_lr: f32,
    /// Straight-through-estimator settings for that update.
    pub ste: SteConfig,
    /// Seed for the projection matrix and manifold initialisation.
    pub seed: u64,
}

impl NshdConfig {
    /// Creates a configuration with the paper's defaults for a given cut
    /// point.
    pub fn new(cut: usize) -> Self {
        NshdConfig {
            cut,
            hv_dim: 3_000,
            manifold_features: 100,
            use_manifold: true,
            distill: DistillConfig::default(),
            retrain_epochs: 10,
            manifold_lr: 0.05,
            ste: SteConfig::default(),
            seed: 0x5eed,
        }
    }

    /// Sets the hypervector dimensionality `D`.
    pub fn with_hv_dim(mut self, d: usize) -> Self {
        self.hv_dim = d;
        self
    }

    /// Sets the manifold output width `F̂`.
    pub fn with_manifold_features(mut self, f: usize) -> Self {
        self.manifold_features = f;
        self
    }

    /// Enables or disables the manifold learner.
    pub fn with_manifold(mut self, enabled: bool) -> Self {
        self.use_manifold = enabled;
        self
    }

    /// Replaces the distillation hyperparameters.
    pub fn with_distill(mut self, distill: DistillConfig) -> Self {
        self.distill = distill;
        self
    }

    /// Disables knowledge distillation (α = 0): pure MASS retraining.
    pub fn without_distillation(mut self) -> Self {
        self.distill.alpha = 0.0;
        self
    }

    /// Sets the retraining epoch count.
    pub fn with_retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn validate(&self) {
        assert!(self.hv_dim > 0, "hypervector dimension must be positive");
        assert!(self.manifold_features > 0, "manifold width must be positive");
        assert!(self.cut > 0, "cut must keep at least one feature layer");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = NshdConfig::new(8);
        assert_eq!(cfg.hv_dim, 3_000);
        assert_eq!(cfg.manifold_features, 100);
        assert!(cfg.use_manifold);
        // Paper temperature default; α is re-tuned for this
        // reproduction's teacher regime (see DistillConfig::default).
        assert!((cfg.distill.temperature - 15.0).abs() < 1e-6);
        assert!((cfg.distill.alpha - 0.3).abs() < 1e-6);
    }

    #[test]
    fn builder_chain() {
        let cfg = NshdConfig::new(5)
            .with_hv_dim(1000)
            .with_manifold_features(50)
            .with_manifold(false)
            .without_distillation()
            .with_retrain_epochs(3)
            .with_seed(9);
        assert_eq!(cfg.hv_dim, 1000);
        assert_eq!(cfg.manifold_features, 50);
        assert!(!cfg.use_manifold);
        assert_eq!(cfg.distill.alpha, 0.0);
        assert_eq!(cfg.retrain_epochs, 3);
        assert_eq!(cfg.seed, 9);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_fails_validation() {
        NshdConfig::new(1).with_hv_dim(0).validate();
    }
}
