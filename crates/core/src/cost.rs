//! Cost accounting for the NSHD pipelines: hardware workloads (Figs. 4
//! and 6), MAC breakdowns (Fig. 5), and model sizes (Table II).

use crate::config::NshdConfig;
use nshd_hwmodel::{extractor_workload_from_stats, OpKind, Phase, Workload};
use nshd_nn::stats::{model_stats, ModelStats};
use nshd_nn::Model;

/// Byte size of one projection cell (bipolar → 1 bit, so ⅛ byte; computed
/// in aggregate below).
const CLASS_HV_BYTES_PER_DIM: u64 = 4; // class hypervectors stay f32

/// Pooled feature count after the manifold's window-2 max pool.
fn pooled_len(feat_shape: &[usize]) -> usize {
    let (c, h, w) = (feat_shape[0], feat_shape[1], feat_shape[2]);
    if h >= 2 && w >= 2 {
        c * (h / 2) * (w / 2)
    } else {
        c * h * w
    }
}

/// MAC breakdown of an HD pipeline's per-sample inference (Fig. 5's
/// accounting, which counts binding/bundling as elementwise
/// multiply/accumulate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacBreakdown {
    /// Convolution extractor MACs.
    pub extractor: u64,
    /// Manifold-layer MACs (0 for BaselineHD).
    pub manifold: u64,
    /// HD encoding MACs (`F·D` on the encoded width).
    pub encode: u64,
    /// Similarity-search MACs (`k·D`).
    pub similarity: u64,
}

impl MacBreakdown {
    /// Total MACs.
    pub fn total(&self) -> u64 {
        self.extractor + self.manifold + self.encode + self.similarity
    }
}

/// Fig. 5: NSHD's per-sample MACs at a cut, from architecture statistics
/// (use [`nshd_nn::specs::arch_stats`] with
/// [`nshd_nn::specs::SpecVariant::Reference`] for paper-scale numbers).
pub fn nshd_macs_from_stats(
    stats: &ModelStats,
    config: &NshdConfig,
    num_classes: usize,
) -> MacBreakdown {
    let feat_shape = nshd_nn::specs::feature_shape_at(stats, config.cut);
    let pl = pooled_len(&feat_shape);
    let f_hat = config.manifold_features;
    MacBreakdown {
        extractor: stats.feature_macs_to(config.cut),
        manifold: (pl * f_hat) as u64,
        encode: (f_hat * config.hv_dim) as u64,
        similarity: (num_classes * config.hv_dim) as u64,
    }
}

/// Fig. 5: NSHD's per-sample MACs at a cut, with the manifold layer.
pub fn nshd_macs(model: &Model, config: &NshdConfig, num_classes: usize) -> MacBreakdown {
    nshd_macs_from_stats(&model_stats(model), config, num_classes)
}

/// Fig. 5: BaselineHD's per-sample MACs from architecture statistics.
pub fn baselinehd_macs_from_stats(
    stats: &ModelStats,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> MacBreakdown {
    let features = stats.feature_len_at(cut);
    MacBreakdown {
        extractor: stats.feature_macs_to(cut),
        manifold: 0,
        encode: (features * hv_dim) as u64,
        similarity: (num_classes * hv_dim) as u64,
    }
}

/// Fig. 5: BaselineHD's per-sample MACs — no manifold, so the projection
/// runs on the full extracted feature width.
pub fn baselinehd_macs(
    model: &Model,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> MacBreakdown {
    baselinehd_macs_from_stats(&model_stats(model), cut, hv_dim, num_classes)
}

/// Model-size breakdown in bytes (Table II's accounting: f32 CNN and
/// manifold weights, 1-bit projection cells, f32 class hypervectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Extractor (kept CNN prefix) bytes.
    pub extractor: u64,
    /// Manifold-layer bytes (0 when absent).
    pub manifold: u64,
    /// Binary projection matrix bytes.
    pub projection: u64,
    /// Class-hypervector bytes.
    pub classes: u64,
}

impl SizeBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.extractor + self.manifold + self.projection + self.classes
    }

    /// Total in binary megabytes, Table II's unit.
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }
}

/// Table II: NSHD's learning-parameter size at a cut, from architecture
/// statistics.
pub fn nshd_size_from_stats(
    stats: &ModelStats,
    config: &NshdConfig,
    num_classes: usize,
) -> SizeBreakdown {
    let feat_shape = nshd_nn::specs::feature_shape_at(stats, config.cut);
    let pl = pooled_len(&feat_shape);
    let f_hat = config.manifold_features;
    SizeBreakdown {
        extractor: stats.feature_params_to(config.cut) as u64 * 4,
        manifold: ((pl * f_hat + f_hat) * 4) as u64,
        projection: ((f_hat * config.hv_dim) as u64).div_ceil(8),
        classes: (num_classes * config.hv_dim) as u64 * CLASS_HV_BYTES_PER_DIM,
    }
}

/// Table II: NSHD's learning-parameter size at a cut.
pub fn nshd_size(model: &Model, config: &NshdConfig, num_classes: usize) -> SizeBreakdown {
    nshd_size_from_stats(&model_stats(model), config, num_classes)
}

/// Table II: BaselineHD's size at a cut, from architecture statistics.
pub fn baselinehd_size_from_stats(
    stats: &ModelStats,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> SizeBreakdown {
    let features = stats.feature_len_at(cut);
    SizeBreakdown {
        extractor: stats.feature_params_to(cut) as u64 * 4,
        manifold: 0,
        projection: ((features * hv_dim) as u64).div_ceil(8),
        classes: (num_classes * hv_dim) as u64 * CLASS_HV_BYTES_PER_DIM,
    }
}

/// Table II: BaselineHD's size at a cut (projection over the full feature
/// width, no manifold).
pub fn baselinehd_size(
    model: &Model,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> SizeBreakdown {
    baselinehd_size_from_stats(&model_stats(model), cut, hv_dim, num_classes)
}

/// Table II: the full CNN's size from architecture statistics.
pub fn cnn_size_from_stats(stats: &ModelStats) -> u64 {
    stats.total_params as u64 * 4
}

/// Table II: the full CNN's size.
pub fn cnn_size_bytes(model: &Model) -> u64 {
    model.param_count() as u64 * 4
}

/// Builds the NSHD inference workload from architecture statistics:
/// truncated extractor (INT8 convolutions) + manifold + binary HD encode
/// + binary similarity search.
pub fn nshd_workload_from_stats(
    stats: &ModelStats,
    name: &str,
    config: &NshdConfig,
    num_classes: usize,
) -> Workload {
    let mut w = extractor_workload_from_stats(stats, config.cut, name);
    w.name = format!("NSHD ({}@{})", name, config.cut);
    let feat_shape = nshd_nn::specs::feature_shape_at(stats, config.cut);
    let feat_len: usize = feat_shape.iter().product();
    let pl = pooled_len(&feat_shape);
    let f_hat = config.manifold_features;
    let d = config.hv_dim;
    if config.use_manifold {
        w.phases.push(Phase::new("manifold:pool", OpKind::Elementwise, 0, 0, feat_len as u64));
        w.phases.push(Phase::new(
            "manifold:fc",
            OpKind::MacInt8,
            (pl * f_hat) as u64,
            (pl * f_hat + f_hat) as u64, // INT8 weights
            f_hat as u64,
        ));
    }
    let encode_width = if config.use_manifold { f_hat } else { feat_len };
    w.phases.push(Phase::new(
        "hd:encode",
        OpKind::BinaryOp,
        (encode_width * d) as u64,
        ((encode_width * d) as u64).div_ceil(8), // binary projection bits
        d as u64,
    ));
    w.phases.push(Phase::new(
        "hd:similarity",
        OpKind::BinaryOp,
        (num_classes * d) as u64,
        (num_classes * d) as u64, // int8-quantised class hypervectors
        num_classes as u64,
    ));
    w
}

/// Builds the NSHD inference workload for the hardware models.
pub fn nshd_workload(model: &Model, config: &NshdConfig, num_classes: usize) -> Workload {
    nshd_workload_from_stats(&model_stats(model), &model.name, config, num_classes)
}

/// Builds the BaselineHD workload from architecture statistics.
pub fn baselinehd_workload_from_stats(
    stats: &ModelStats,
    name: &str,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> Workload {
    let cfg = NshdConfig::new(cut).with_hv_dim(hv_dim).with_manifold(false);
    let mut w = nshd_workload_from_stats(stats, name, &cfg, num_classes);
    w.name = format!("BaselineHD ({name}@{cut})");
    w
}

/// Builds the BaselineHD workload (projection over full features).
pub fn baselinehd_workload(
    model: &Model,
    cut: usize,
    hv_dim: usize,
    num_classes: usize,
) -> Workload {
    baselinehd_workload_from_stats(&model_stats(model), &model.name, cut, hv_dim, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_nn::Architecture;
    use nshd_tensor::Rng;

    fn model() -> Model {
        Architecture::EfficientNetB0.build(10, &mut Rng::new(1))
    }

    #[test]
    fn manifold_cuts_encode_macs() {
        let m = model();
        let cfg = NshdConfig::new(7);
        let nshd = nshd_macs(&m, &cfg, 10);
        let base = baselinehd_macs(&m, 7, cfg.hv_dim, 10);
        // Same extractor, but the encode stage shrinks from F·D to F̂·D,
        // far outweighing the added manifold MACs (paper Fig. 5).
        assert_eq!(nshd.extractor, base.extractor);
        assert!(nshd.encode < base.encode);
        assert!(nshd.total() < base.total(), "{} vs {}", nshd.total(), base.total());
    }

    #[test]
    fn mac_savings_grow_with_dimension() {
        let m = model();
        let saving = |d: usize| {
            let cfg = NshdConfig::new(7).with_hv_dim(d);
            let nshd = nshd_macs(&m, &cfg, 10).total() as f64;
            let base = baselinehd_macs(&m, 7, d, 10).total() as f64;
            (1.0 - nshd / base) * 100.0
        };
        // Paper: higher savings for D = 10,000 than for D = 3,000.
        assert!(saving(10_000) > saving(3_000));
    }

    #[test]
    fn nshd_smaller_than_baselinehd_and_cnn() {
        let m = model();
        let cfg = NshdConfig::new(7);
        let nshd = nshd_size(&m, &cfg, 10);
        let base = baselinehd_size(&m, 7, cfg.hv_dim, 10);
        assert!(nshd.total() < base.total(), "{} vs {}", nshd.total(), base.total());
        // The paper's Table II shows NSHD below the CNN for early cuts.
        let early = NshdConfig::new(6);
        let nshd_early = nshd_size(&m, &early, 10);
        assert!(nshd_early.total() < cnn_size_bytes(&m));
    }

    #[test]
    fn workload_phases_cover_pipeline() {
        let m = model();
        let cfg = NshdConfig::new(7);
        let w = nshd_workload(&m, &cfg, 10);
        let names: Vec<&str> = w.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"manifold:fc"));
        assert!(names.contains(&"hd:encode"));
        assert!(names.contains(&"hd:similarity"));
        // Without the manifold, encode width grows.
        let base = baselinehd_workload(&m, 7, cfg.hv_dim, 10);
        let enc = |w: &Workload| {
            w.phases.iter().find(|p| p.name == "hd:encode").map(|p| p.ops).expect("encode phase")
        };
        assert!(enc(&base) > enc(&w));
    }

    #[test]
    fn size_breakdown_total_adds_up() {
        let m = model();
        let cfg = NshdConfig::new(7);
        let s = nshd_size(&m, &cfg, 10);
        assert_eq!(s.total(), s.extractor + s.manifold + s.projection + s.classes);
        assert!(s.total_mb() > 0.0);
    }
}
