//! The thread-shareable batched inference engine behind the serving
//! runtime (`nshd-runtime`).
//!
//! [`NshdEngine`] snapshots a trained [`NshdModel`] into an immutable,
//! `Send + Sync` form optimised for batch throughput:
//!
//! - images are stacked into one NCHW tensor and pushed through the
//!   truncated teacher **once per batch** (`&self` inference path);
//! - HD encoding runs as a single dense GEMM via
//!   [`nshd_hdc::BatchEncoder`] instead of `N` bit-serial passes;
//! - associative-memory scoring is one `matmul_bt` against the class
//!   matrix instead of `N·k` scalar cosine loops.
//!
//! The two halves are exposed separately ([`extract_values`] /
//! [`finish_values`]) so the runtime can data-parallelise the
//! convolutional half across workers and still finish the whole batch
//! with one GEMM.
//!
//! **Determinism.** The produced hypervectors are bit-identical to
//! [`NshdModel::symbolize`]: evaluation-mode CNN layers are
//! batch-size-independent, and the GEMM encoder accumulates features in
//! the same order (with the same zero-skip) as the bit-serial encoder.
//! Similarity *scores* may differ from the sequential path in the last
//! float bits (different dot-product lane structure), so equality is
//! guaranteed at the argmax/prediction level, not the raw score level.
//!
//! [`extract_values`]: NshdEngine::extract_values
//! [`finish_values`]: NshdEngine::finish_values

use crate::manifold::ManifoldLearner;
use crate::model::NshdModel;
use crate::robust::PipelineError;
use crate::scaler::FeatureScaler;
use crate::verify::{self, AnalysisReport};
use nshd_data::ImageDataset;
use nshd_hdc::{AssociativeMemory, BatchEncoder, BipolarHv, FaultReport, FaultScenario};
use nshd_nn::Model;
use nshd_tensor::{Tensor, TensorError};

/// An immutable, `Send + Sync` snapshot of a trained NSHD pipeline,
/// ready for concurrent batched inference.
///
/// # Examples
///
/// ```no_run
/// use nshd_core::{NshdConfig, NshdEngine, NshdModel};
/// # let model: NshdModel = unimplemented!();
/// let engine = NshdEngine::from_model(&model);
/// // `engine` can now be put in an `Arc` and shared across threads.
/// ```
#[derive(Clone)]
pub struct NshdEngine {
    teacher: Model,
    cut: usize,
    scaler: FeatureScaler,
    manifold: Option<ManifoldLearner>,
    encoder: BatchEncoder,
    memory: AssociativeMemory,
}

// The engine must stay shareable across worker threads; fail the build
// if a field ever loses `Send + Sync`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NshdEngine>();
};

impl NshdEngine {
    /// Snapshots a trained model into an engine after statically
    /// verifying the whole pipeline ([`crate::verify_model`]). The model
    /// remains usable; the engine holds its own copies (teacher weights,
    /// class memory) plus the unpacked dense projection basis.
    ///
    /// # Errors
    ///
    /// Returns the [`AnalysisReport`] naming the first misconfigured
    /// stage when verification fails; no engine state is built in that
    /// case.
    #[must_use = "the engine is only constructed when verification passes"]
    pub fn new(model: &NshdModel) -> Result<Self, AnalysisReport> {
        verify::verify_model(model)?;
        Ok(NshdEngine {
            teacher: model.teacher().clone(),
            cut: model.config().cut,
            scaler: model.scaler().clone(),
            manifold: model.manifold().cloned(),
            encoder: model.projection().batch_encoder(),
            memory: model.memory().clone(),
        })
    }

    /// Panicking convenience wrapper around [`NshdEngine::new`].
    ///
    /// # Panics
    ///
    /// Panics with the verification report when the model is
    /// misconfigured.
    pub fn from_model(model: &NshdModel) -> Self {
        match Self::new(model) {
            Ok(engine) => engine,
            Err(report) => panic!("{report}"),
        }
    }

    /// Re-checks the snapshot's internal consistency — the same static
    /// analysis [`NshdEngine::new`] runs, applied to the engine's own
    /// copies. `nshd-runtime` calls this before spawning any worker
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns the [`AnalysisReport`] naming the first inconsistent
    /// stage.
    pub fn verify(&self) -> Result<(), AnalysisReport> {
        let feat_shape = verify::verify_extractor(&self.teacher, self.cut)?;
        verify::verify_stages(
            &feat_shape,
            self.scaler.len(),
            self.manifold.as_ref(),
            self.encoder.features(),
            self.encoder.dim(),
            &self.memory,
            self.teacher.num_classes,
        )
    }

    /// Snapshot-clones the engine with `scenario`'s faults injected into
    /// its class memory — the degraded-replica input for chaos testing
    /// the replicated serving tier. The original engine is untouched
    /// (replicas never share mutable state), the teacher weights and
    /// projection basis are shared copies, and only the associative
    /// memory is corrupted; an empty scenario yields a replica that
    /// predicts bit-identically to `self`.
    pub fn degraded(&self, scenario: &FaultScenario) -> (NshdEngine, FaultReport) {
        let mut replica = self.clone();
        let report = scenario.apply_associative(&mut replica.memory);
        (replica, report)
    }

    /// Number of classes the engine predicts over.
    pub fn num_classes(&self) -> usize {
        self.memory.num_classes()
    }

    /// The snapshotted associative memory.
    pub fn memory(&self) -> &AssociativeMemory {
        &self.memory
    }

    /// Stage 1 — CNN feature extraction: stacks the CHW images into one
    /// NCHW batch, runs the truncated teacher once, then standardises
    /// and (optionally) manifold-compresses each sample. This is the
    /// compute-heavy half the runtime splits across workers.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Tensor`] when an image's shape differs
    /// from the teacher's input shape, and
    /// [`PipelineError::NonFiniteActivation`] when the extracted values
    /// contain NaN/∞ (which would poison the argmax downstream).
    #[must_use = "extraction can fail on malformed inputs"]
    pub fn try_extract_values(&self, images: &[Tensor]) -> Result<Vec<Vec<f32>>, PipelineError> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let _sp = nshd_obs::span("extract");
        for image in images {
            if image.dims() != self.teacher.input_shape {
                return Err(TensorError::IncompatibleShapes {
                    lhs: self.teacher.input_shape.clone(),
                    rhs: image.dims().to_vec(),
                }
                .into());
            }
            // ReLU washes NaN inputs to zero, so poisoned images must be
            // caught here rather than at the output check below.
            if image.as_slice().iter().any(|v| !v.is_finite()) {
                return Err(PipelineError::NonFiniteActivation { stage: "engine input" });
            }
        }
        let batch = Tensor::stack(images)?;
        let feats = self.teacher.infer_features_at(&batch, self.cut);
        let values: Vec<Vec<f32>> = (0..images.len())
            .map(|b| {
                let feat = self.scaler.transform(&feats.batch_item(b));
                match &self.manifold {
                    Some(m) => m.forward(&feat).1,
                    None => feat.as_slice().to_vec(),
                }
            })
            .collect();
        if values.iter().flatten().any(|v| !v.is_finite()) {
            return Err(PipelineError::NonFiniteActivation { stage: "engine feature extraction" });
        }
        Ok(values)
    }

    /// Panicking wrapper around
    /// [`try_extract_values`](NshdEngine::try_extract_values).
    ///
    /// # Panics
    ///
    /// Panics if images disagree with the teacher's input shape or the
    /// extracted values are non-finite.
    pub fn extract_values(&self, images: &[Tensor]) -> Vec<Vec<f32>> {
        match self.try_extract_values(images) {
            Ok(values) => values,
            Err(e) => panic!("{e}"),
        }
    }

    /// Encodes extracted feature values into bipolar hypervectors with
    /// one dense GEMM. Bit-identical to encoding each row through
    /// [`NshdModel::symbolize`]'s per-sample path.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Tensor`] when rows differ in length or
    /// don't match the projection's feature width.
    #[must_use = "encoding can fail on malformed value rows"]
    pub fn try_encode_values(&self, values: &[Vec<f32>]) -> Result<Vec<BipolarHv>, PipelineError> {
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let _sp = nshd_obs::span("encode");
        for row in values {
            if row.len() != self.encoder.features() {
                return Err(TensorError::IncompatibleShapes {
                    lhs: vec![self.encoder.features()],
                    rhs: vec![row.len()],
                }
                .into());
            }
        }
        let matrix = Tensor::from_rows(values)?;
        Ok(self.encoder.encode_batch(&matrix))
    }

    /// Panicking wrapper around
    /// [`try_encode_values`](NshdEngine::try_encode_values).
    ///
    /// # Panics
    ///
    /// Panics if rows differ in length or don't match the projection.
    pub fn encode_values(&self, values: &[Vec<f32>]) -> Vec<BipolarHv> {
        match self.try_encode_values(values) {
            Ok(hvs) => hvs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Stage 2 — HD encode + associative scoring for a whole batch of
    /// extracted values: one GEMM to encode, one `matmul_bt` to score.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Tensor`] when rows differ in length or
    /// don't match the projection's feature width.
    #[must_use = "scoring can fail on malformed value rows"]
    pub fn try_finish_values(&self, values: &[Vec<f32>]) -> Result<Vec<usize>, PipelineError> {
        let hvs = self.try_encode_values(values)?;
        let _sp = nshd_obs::span("score");
        Ok(self.memory.predict_batch(&hvs))
    }

    /// Panicking wrapper around
    /// [`try_finish_values`](NshdEngine::try_finish_values).
    ///
    /// # Panics
    ///
    /// Panics if rows differ in length or don't match the projection.
    pub fn finish_values(&self, values: &[Vec<f32>]) -> Vec<usize> {
        match self.try_finish_values(values) {
            Ok(preds) => preds,
            Err(e) => panic!("{e}"),
        }
    }

    /// Symbolises a batch of CHW images into query hypervectors —
    /// bit-identical to per-image [`NshdModel::symbolize`].
    pub fn symbolize_batch(&self, images: &[Tensor]) -> Vec<BipolarHv> {
        self.encode_values(&self.extract_values(images))
    }

    /// Predicts classes for a batch of CHW images.
    pub fn predict_batch(&self, images: &[Tensor]) -> Vec<usize> {
        self.finish_values(&self.extract_values(images))
    }

    /// Predicts the class of a single CHW image (a batch of one).
    pub fn predict(&self, image: &Tensor) -> usize {
        self.predict_batch(std::slice::from_ref(image))[0]
    }

    /// Classification accuracy over a dataset through the batched path,
    /// processed in bounded chunks.
    pub fn evaluate(&self, dataset: &ImageDataset) -> f32 {
        if dataset.is_empty() {
            return 0.0;
        }
        const CHUNK: usize = 64;
        let mut correct = 0usize;
        let mut index = 0usize;
        while index < dataset.len() {
            let end = (index + CHUNK).min(dataset.len());
            let images: Vec<Tensor> = (index..end).map(|i| dataset.sample(i).0).collect();
            let preds = self.predict_batch(&images);
            correct += preds
                .iter()
                .enumerate()
                .filter(|(b, p)| **p == dataset.sample(index + b).1)
                .count();
            index = end;
        }
        correct as f32 / dataset.len() as f32
    }
}

impl std::fmt::Debug for NshdEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NshdEngine")
            .field("teacher", &self.teacher.name)
            .field("cut", &self.cut)
            .field("manifold", &self.manifold.is_some())
            .field("classes", &self.memory.num_classes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NshdConfig;
    use nshd_data::{normalize_pair, SynthSpec};
    use nshd_nn::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential};
    use nshd_tensor::Rng;

    /// A small untrained teacher — prediction *parity* between the
    /// batched and per-sample paths doesn't need a good model.
    fn tiny_teacher(rng: &mut Rng) -> Model {
        let features = Sequential::new()
            .with(Conv2d::new(3, 4, 3, 1, 1, rng))
            .with(Activation::new(ActKind::Relu))
            .with(MaxPool2d::new(2));
        let classifier =
            Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, rng));
        Model {
            name: "tiny".into(),
            features,
            classifier,
            input_shape: vec![3, 32, 32],
            num_classes: 10,
        }
    }

    fn trained_setup(use_manifold: bool) -> (NshdModel, ImageDataset) {
        let (mut train, mut test) = SynthSpec::synth10(17).with_sizes(40, 16).generate();
        normalize_pair(&mut train, &mut test);
        let teacher = tiny_teacher(&mut Rng::new(2));
        let cfg = NshdConfig::new(3)
            .with_hv_dim(512)
            .with_manifold(use_manifold)
            .with_manifold_features(24)
            .with_retrain_epochs(1)
            .with_seed(9);
        (NshdModel::train(teacher, &train, cfg), test)
    }

    #[test]
    fn batched_engine_matches_per_sample_model() {
        for use_manifold in [true, false] {
            let (model, test) = trained_setup(use_manifold);
            let engine = NshdEngine::from_model(&model);
            let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
            // Hypervectors are bit-identical to the per-sample path.
            let batched_hvs = engine.symbolize_batch(&images);
            for (img, hv) in images.iter().zip(&batched_hvs) {
                assert_eq!(*hv, model.symbolize(img), "manifold={use_manifold}");
            }
            // Predictions agree for every image and any chunking.
            let batched = engine.predict_batch(&images);
            let sequential: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();
            assert_eq!(batched, sequential, "manifold={use_manifold}");
            for chunk in images.chunks(5) {
                let preds = engine.predict_batch(chunk);
                for (img, p) in chunk.iter().zip(preds) {
                    assert_eq!(p, engine.predict(img));
                }
            }
            // And dataset-level accuracy matches the model's.
            assert_eq!(engine.evaluate(&test), model.evaluate(&test));
        }
    }

    #[test]
    fn malformed_inputs_are_reported_not_panicked() {
        let (model, _) = trained_setup(false);
        let engine = NshdEngine::from_model(&model);
        // Wrong image shape: reported, not a deep conv panic.
        let err = engine.try_extract_values(&[Tensor::zeros([3, 16, 16])]).unwrap_err();
        assert!(matches!(err, PipelineError::Tensor(_)), "{err:?}");
        assert!(err.to_string().contains("tensor"), "{err}");
        // A poisoned image surfaces as a non-finite-activation report.
        let poisoned = Tensor::from_fn([3, 32, 32], |_| f32::NAN);
        let err = engine.try_extract_values(&[poisoned]).unwrap_err();
        assert!(matches!(err, PipelineError::NonFiniteActivation { .. }), "{err:?}");
        // Wrong value-row width at the encode stage.
        let err = engine.try_finish_values(&[vec![0.0; 3]]).unwrap_err();
        assert!(matches!(err, PipelineError::Tensor(_)), "{err:?}");
        // The happy path is unaffected.
        let ok = engine.try_extract_values(&[Tensor::zeros([3, 32, 32])]).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn misconfigured_models_are_rejected_at_construction() {
        use crate::verify::Stage;

        // A healthy model verifies and yields an engine that re-verifies.
        let (model, _) = trained_setup(true);
        let engine = NshdEngine::new(&model).expect("healthy model verifies");
        engine.verify().expect("snapshot re-verifies");

        // Memory width torn away from the encoder's D: rejected with a
        // structured report naming the memory stage and both widths.
        let mut torn = model.clone();
        torn.set_memory_raw(vec![vec![0.0f32; 256]; 10]);
        let report = NshdEngine::new(&torn).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
        assert_eq!(report.expected, vec![512]);
        assert_eq!(report.actual, vec![256]);
        assert!(report.to_string().contains("memory"), "{report}");

        // Scaler fitted on the wrong feature width: scaler stage.
        let mut torn = model.clone();
        let (mean, inv_std) = torn.scaler_raw();
        torn.set_scaler_raw(mean[..mean.len() - 1].to_vec(), inv_std[..inv_std.len() - 1].to_vec())
            .expect("lengths agree with each other");
        let report = NshdEngine::new(&torn).unwrap_err();
        assert_eq!(report.stage, Stage::Scaler);

        // A poisoned class memory is caught before any thread could be.
        let mut torn = model;
        torn.memory_mut().class_mut(0)[0] = f32::NAN;
        let report = NshdEngine::new(&torn).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
        assert!(report.to_string().contains("non-finite"), "{report}");
    }

    #[test]
    fn degraded_snapshots_corrupt_only_their_own_memory() {
        use nshd_hdc::{FaultPlan, FaultScenario};

        let (model, test) = trained_setup(false);
        let engine = NshdEngine::from_model(&model);
        let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
        let clean_preds = engine.predict_batch(&images);

        // An empty scenario is a bit-identical replica.
        let (twin, report) = engine.degraded(&FaultScenario::new());
        assert_eq!(report, nshd_hdc::FaultReport::default());
        assert_eq!(twin.predict_batch(&images), clean_preds);

        // A heavy scenario corrupts the replica's memory — and only the
        // replica's: the original engine still predicts identically.
        let scenario =
            FaultScenario::new().with(FaultPlan::new(61, 0.4), 1).with(FaultPlan::new(62, 0.2), 2);
        let (hurt, report) = engine.degraded(&scenario);
        assert!(report.faults > 0, "heavy scenario landed no faults");
        assert_eq!(engine.predict_batch(&images), clean_preds, "original engine was mutated");
        // The degraded replica still answers (no panic) with in-range
        // class indices.
        let degraded_preds = hurt.predict_batch(&images);
        assert!(degraded_preds.iter().all(|&p| p < engine.num_classes()));
    }

    #[test]
    fn empty_batches_are_fine() {
        let (model, _) = trained_setup(false);
        let engine = NshdEngine::from_model(&model);
        assert!(engine.extract_values(&[]).is_empty());
        assert!(engine.predict_batch(&[]).is_empty());
        assert!(engine.symbolize_batch(&[]).is_empty());
    }
}
