//! # nshd-core
//!
//! The NSHD pipeline — the primary contribution of *Comprehensive
//! Integration of Hyperdimensional Computing with Deep Learning towards
//! Neuro-Symbolic AI* (DAC 2023) — assembled from the workspace
//! substrates:
//!
//! 1. **Symbolisation** `H = Φ_P(Ψ(conv(x)))`: a trained CNN truncated at
//!    a configurable layer, the manifold learner Ψ (max-pool + FC
//!    regressor to `F̂` features), and binary random-projection encoding.
//! 2. **Knowledge-distillation retraining** (Algorithm 1): MASS updates
//!    blended with soft targets from the *uncut* teacher, so the knowledge
//!    in the removed layers still reaches the HD model.
//! 3. **Manifold training across the encoder** (§V-C): class-hypervector
//!    errors decoded back to feature space through a straight-through
//!    estimator and the projection adjoint.
//!
//! The crate also provides the paper's comparison models — [`VanillaHd`],
//! [`BaselineHd`], [`CnnClassifier`] — and the cost accounting behind
//! Figs. 4–6 and Table II.
//!
//! # Examples
//!
//! ```no_run
//! use nshd_core::{NshdConfig, NshdModel};
//! use nshd_data::{normalize_pair, SynthSpec};
//! use nshd_nn::{fit, Adam, Architecture, TrainConfig};
//! use nshd_tensor::Rng;
//!
//! let (mut train, mut test) = SynthSpec::synth10(42).generate();
//! normalize_pair(&mut train, &mut test);
//! let mut teacher = Architecture::EfficientNetB0.build(10, &mut Rng::new(1));
//! fit(&mut teacher, train.images(), train.labels(),
//!     &mut Adam::new(2e-3, 1e-5), &TrainConfig::default());
//! let mut nshd = NshdModel::train(teacher, &train, NshdConfig::new(8));
//! println!("accuracy: {:.3}", nshd.evaluate(&test));
//! ```

#![warn(missing_docs)]

mod baselines;
mod config;
mod cost;
mod engine;
mod manifold;
mod model;
mod robust;
mod scaler;
mod serialize;
mod verify;

pub use baselines::{BaselineHd, Classifier, CnnClassifier, EmbeddingClassifier, VanillaHd};
pub use config::NshdConfig;
pub use cost::{
    baselinehd_macs, baselinehd_macs_from_stats, baselinehd_size, baselinehd_size_from_stats,
    baselinehd_workload, baselinehd_workload_from_stats, cnn_size_bytes, cnn_size_from_stats,
    nshd_macs, nshd_macs_from_stats, nshd_size, nshd_size_from_stats, nshd_workload,
    nshd_workload_from_stats, MacBreakdown, SizeBreakdown,
};
pub use engine::NshdEngine;
pub use manifold::ManifoldLearner;
pub use model::{NshdModel, NshdTrainer, RetrainEpoch};
pub use robust::{DivergenceGuard, GuardVerdict, PipelineError, RollbackReason};
pub use scaler::FeatureScaler;
pub use serialize::load_pipeline;
pub use verify::{
    verify_ensemble, verify_model, verify_quantized, verify_teacher, AnalysisReport, EnsembleDims,
    Stage,
};
