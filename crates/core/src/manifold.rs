//! The manifold learner Ψ: max-pool + fully-connected regressor that
//! compresses convolution-extracted features to `F̂` values before HD
//! encoding (paper §IV-C), trained by gradients decoded through the HD
//! encoder (§V-C).

use nshd_nn::{Layer, MaxPool2d, Mode};
use nshd_tensor::{Rng, Tensor};

/// The manifold learner: `Ψ(x) = W · flatten(maxpool₂(x)) + b`.
#[derive(Debug, Clone)]
pub struct ManifoldLearner {
    feat_shape: Vec<usize>,
    pool_window: usize,
    pooled_len: usize,
    out_features: usize,
    /// `out × pooled_len` weight matrix.
    weight: Tensor,
    bias: Vec<f32>,
}

impl ManifoldLearner {
    /// Creates a manifold learner for extractor outputs of shape
    /// `feat_shape` (CHW), producing `out_features` values.
    ///
    /// The paper pools with window 2; when the feature map's spatial
    /// extent is already 1, pooling is skipped (it would be undefined).
    ///
    /// # Panics
    ///
    /// Panics if `feat_shape` is not CHW or `out_features == 0`.
    pub fn new(feat_shape: &[usize], out_features: usize, rng: &mut Rng) -> Self {
        assert_eq!(feat_shape.len(), 3, "manifold expects CHW extractor output");
        assert!(out_features > 0);
        let (c, h, w) = (feat_shape[0], feat_shape[1], feat_shape[2]);
        let pool_window = if h >= 2 && w >= 2 { 2 } else { 1 };
        let (ph, pw) = (h / pool_window, w / pool_window);
        let pooled_len = c * ph * pw;
        let bound = (6.0 / (pooled_len + out_features) as f32).sqrt();
        let weight = Tensor::from_fn([out_features, pooled_len], |_| rng.uniform_in(-bound, bound));
        ManifoldLearner {
            feat_shape: feat_shape.to_vec(),
            pool_window,
            pooled_len,
            out_features,
            weight,
            bias: vec![0.0; out_features],
        }
    }

    /// Output width `F̂`.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The extractor-output shape (CHW) this learner was built for.
    pub fn feat_shape(&self) -> &[usize] {
        &self.feat_shape
    }

    /// Flattened input width after pooling.
    pub fn pooled_len(&self) -> usize {
        self.pooled_len
    }

    /// Learning-parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// MACs per sample (the FC regressor; pooling is elementwise).
    pub fn macs(&self) -> u64 {
        (self.pooled_len * self.out_features) as u64
    }

    /// Runs the pooling stage only.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the configured shape.
    pub fn pool(&self, features: &Tensor) -> Vec<f32> {
        assert_eq!(features.dims(), &self.feat_shape[..], "extractor output shape mismatch");
        if self.pool_window == 1 {
            return features.as_slice().to_vec();
        }
        let batched = features
            .reshape([1, self.feat_shape[0], self.feat_shape[1], self.feat_shape[2]])
            .expect("same element count");
        let mut pool = MaxPool2d::new(self.pool_window);
        pool.forward(&batched, Mode::Eval).into_vec()
    }

    /// Full forward pass for one sample: returns `(pooled, output)`.
    /// The pooled vector is needed again by [`update`](Self::update).
    pub fn forward(&self, features: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let pooled = self.pool(features);
        let out = self.apply_fc(&pooled);
        (pooled, out)
    }

    /// The FC regressor on an already-pooled vector.
    ///
    /// # Panics
    ///
    /// Panics if `pooled.len() != self.pooled_len()`.
    pub fn apply_fc(&self, pooled: &[f32]) -> Vec<f32> {
        assert_eq!(pooled.len(), self.pooled_len, "pooled length mismatch");
        let w = self.weight.as_slice();
        (0..self.out_features)
            .map(|o| {
                nshd_tensor::dot(&w[o * self.pooled_len..(o + 1) * self.pooled_len], pooled)
                    + self.bias[o]
            })
            .collect()
    }

    /// The raw `(weight, bias)` values, weight row-major `F̂ × pooled_len`
    /// (serialization).
    pub fn weights_raw(&self) -> (Vec<f32>, Vec<f32>) {
        (self.weight.as_slice().to_vec(), self.bias.clone())
    }

    /// Replaces the learned weights.
    ///
    /// # Errors
    ///
    /// Returns a message when lengths do not match this learner's shape.
    pub fn set_weights_raw(&mut self, weight: Vec<f32>, bias: Vec<f32>) -> Result<(), String> {
        if weight.len() != self.out_features * self.pooled_len {
            return Err(format!(
                "manifold weight length {} does not match {}×{}",
                weight.len(),
                self.out_features,
                self.pooled_len
            ));
        }
        if bias.len() != self.out_features {
            return Err(format!(
                "manifold bias length {} does not match F̂ {}",
                bias.len(),
                self.out_features
            ));
        }
        self.weight = Tensor::from_vec(weight, [self.out_features, self.pooled_len])
            .expect("length checked above");
        self.bias = bias;
        Ok(())
    }

    /// Applies one decoded-gradient ascent step:
    /// `W += lr · g ⊗ pooled`, `b += lr · g`, where `g` is the
    /// feature-space gradient decoded through the HD encoder
    /// ([`nshd_hdc::feature_gradient`]).
    ///
    /// # Panics
    ///
    /// Panics if the gradient or pooled lengths mismatch.
    pub fn update(&mut self, pooled: &[f32], grad_out: &[f32], lr: f32) {
        assert_eq!(grad_out.len(), self.out_features, "gradient width mismatch");
        assert_eq!(pooled.len(), self.pooled_len, "pooled length mismatch");
        let w = self.weight.as_mut_slice();
        for (o, &g) in grad_out.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &mut w[o * self.pooled_len..(o + 1) * self.pooled_len];
            let step = lr * g;
            for (wi, &xi) in row.iter_mut().zip(pooled) {
                *wi += step * xi;
            }
            self.bias[o] += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_halves_spatial_dims() {
        let mut rng = Rng::new(1);
        let m = ManifoldLearner::new(&[4, 8, 8], 10, &mut rng);
        assert_eq!(m.pooled_len(), 4 * 4 * 4);
        assert_eq!(m.out_features(), 10);
        assert_eq!(m.macs(), 64 * 10);
        assert_eq!(m.param_count(), 64 * 10 + 10);
    }

    #[test]
    fn unit_spatial_maps_skip_pooling() {
        let mut rng = Rng::new(2);
        let m = ManifoldLearner::new(&[16, 1, 1], 8, &mut rng);
        assert_eq!(m.pooled_len(), 16);
        let x = Tensor::from_fn([16, 1, 1], |i| i as f32);
        let (pooled, out) = m.forward(&x);
        assert_eq!(pooled, x.as_slice());
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn pool_takes_window_maxima() {
        let mut rng = Rng::new(3);
        let m = ManifoldLearner::new(&[1, 2, 2], 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], [1, 2, 2]).unwrap();
        assert_eq!(m.pool(&x), vec![5.0]);
    }

    #[test]
    fn update_moves_output_along_gradient() {
        let mut rng = Rng::new(4);
        let mut m = ManifoldLearner::new(&[2, 2, 2], 3, &mut rng);
        let x = Tensor::from_fn([2, 2, 2], |i| (i as f32 * 0.31).sin() + 0.5);
        let (pooled, before) = m.forward(&x);
        let g = vec![1.0, -1.0, 0.0];
        m.update(&pooled, &g, 0.1);
        let (_, after) = m.forward(&x);
        assert!(after[0] > before[0], "output 0 should rise");
        assert!(after[1] < before[1], "output 1 should fall");
        assert!((after[2] - before[2]).abs() < 1e-6, "output 2 unchanged");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ManifoldLearner::new(&[2, 4, 4], 5, &mut Rng::new(7));
        let b = ManifoldLearner::new(&[2, 4, 4], 5, &mut Rng::new(7));
        let x = Tensor::from_fn([2, 4, 4], |i| i as f32 * 0.1);
        assert_eq!(a.forward(&x).1, b.forward(&x).1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_shape_panics() {
        let mut rng = Rng::new(8);
        let m = ManifoldLearner::new(&[2, 4, 4], 5, &mut rng);
        m.pool(&Tensor::zeros([2, 3, 4]));
    }
}
