//! The NSHD model and its training procedure.
//!
//! Training follows the paper end to end: truncate a *trained* CNN at the
//! configured cut, cache extracted features and full-teacher logits,
//! initialise the manifold learner and the random projection, bundle-init
//! the class memory, then run knowledge-distillation retraining
//! (Algorithm 1) while updating the manifold layer with errors decoded
//! through the HD encoder (§V-C).

use crate::config::NshdConfig;
use crate::manifold::ManifoldLearner;
use crate::scaler::FeatureScaler;
use nshd_data::ImageDataset;
use nshd_hdc::{feature_gradient, AssociativeMemory, BipolarHv, DistillTrainer, RandomProjection};
use nshd_nn::{Mode, Model};
use nshd_tensor::{Rng, Tensor};

/// Per-epoch retraining statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Training accuracy measured before that epoch's updates.
    pub train_accuracy: f32,
}

/// A trained NSHD model: truncated CNN extractor, manifold learner,
/// random-projection encoder, and retrained class memory.
#[derive(Clone)]
pub struct NshdModel {
    teacher: Model,
    config: NshdConfig,
    scaler: FeatureScaler,
    manifold: Option<ManifoldLearner>,
    projection: RandomProjection,
    memory: AssociativeMemory,
    history: Vec<RetrainEpoch>,
}

// Internal raw accessors used by the serialization module.
impl NshdModel {
    pub(crate) fn projection_seed(&self) -> u64 {
        self.projection.seed()
    }

    pub(crate) fn scaler_raw(&self) -> (Vec<f32>, Vec<f32>) {
        self.scaler.raw()
    }

    pub(crate) fn set_scaler_raw(
        &mut self,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
    ) -> Result<(), String> {
        self.scaler = FeatureScaler::from_raw(mean, inv_std)?;
        Ok(())
    }

    pub(crate) fn manifold_raw(&self) -> Option<(Vec<f32>, Vec<f32>)> {
        self.manifold.as_ref().map(|m| m.weights_raw())
    }

    pub(crate) fn set_manifold_raw(
        &mut self,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Result<(), String> {
        match &mut self.manifold {
            Some(m) => m.set_weights_raw(weight, bias),
            None => Err("model has no manifold layer".into()),
        }
    }

    pub(crate) fn set_memory_raw(&mut self, classes: Vec<Vec<f32>>) {
        self.memory = AssociativeMemory::from_classes(classes);
    }

    pub(crate) fn teacher_mut_internal(&mut self) -> &mut Model {
        &mut self.teacher
    }

    pub(crate) fn scaler(&self) -> &FeatureScaler {
        &self.scaler
    }
}

impl NshdModel {
    /// Trains an NSHD model from a (pre-trained) teacher CNN.
    ///
    /// This is the convenience wrapper over [`NshdTrainer`]: prepare,
    /// run every retraining epoch, finish.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the cut exceeds the
    /// teacher's feature stack, or the dataset is empty.
    pub fn train(teacher: Model, train: &ImageDataset, config: NshdConfig) -> NshdModel {
        let mut trainer = NshdTrainer::prepare(teacher, train, config);
        for _ in 0..trainer.config().retrain_epochs {
            trainer.epoch();
        }
        trainer.finish()
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &NshdConfig {
        &self.config
    }

    /// The retraining history (one entry per epoch).
    pub fn history(&self) -> &[RetrainEpoch] {
        &self.history
    }

    /// The class memory.
    pub fn memory(&self) -> &AssociativeMemory {
        &self.memory
    }

    /// Mutable class memory — the hook fault-injection experiments and
    /// the [`DivergenceGuard`](crate::DivergenceGuard) tests use to
    /// manipulate deployed state directly.
    pub fn memory_mut(&mut self) -> &mut AssociativeMemory {
        &mut self.memory
    }

    /// The projection encoder.
    pub fn projection(&self) -> &RandomProjection {
        &self.projection
    }

    /// The manifold learner, if enabled.
    pub fn manifold(&self) -> Option<&ManifoldLearner> {
        self.manifold.as_ref()
    }

    /// The underlying teacher CNN (still holding all layers).
    pub fn teacher(&self) -> &Model {
        &self.teacher
    }

    /// Symbolises one image (CHW) into its query hypervector.
    ///
    /// Runs the evaluation-mode `&self` inference path, so a trained
    /// model can be shared across threads without cloning its memory.
    pub fn symbolize(&self, image: &Tensor) -> BipolarHv {
        let batched = image
            .reshape([1, image.dims()[0], image.dims()[1], image.dims()[2]])
            .expect("CHW image");
        let feats = self.teacher.infer_features_at(&batched, self.config.cut);
        let feat = self.scaler.transform(&feats.batch_item(0));
        let values = match &self.manifold {
            Some(m) => m.forward(&feat).1,
            None => feat.as_slice().to_vec(),
        };
        self.projection.encode(&values)
    }

    /// Predicts the class of one image (CHW).
    pub fn predict(&self, image: &Tensor) -> usize {
        let _sp = nshd_obs::span("request");
        let hv = self.symbolize(image);
        self.memory.predict(&hv)
    }

    /// The `k` most similar classes for one image, best first, with
    /// their cosine similarities — the ranked symbolic answer a
    /// downstream reasoner consumes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the class count.
    pub fn predict_top_k(&self, image: &Tensor, k: usize) -> Vec<(usize, f32)> {
        assert!(k >= 1 && k <= self.memory.num_classes(), "invalid k = {k}");
        let hv = self.symbolize(image);
        let mut scored: Vec<(usize, f32)> =
            self.memory.similarities(&hv).into_iter().enumerate().collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarities"));
        scored.truncate(k);
        scored
    }

    /// Symbolises a whole dataset into `(hypervector, label)` pairs (used
    /// by evaluation and the t-SNE explainability analysis).
    pub fn symbolize_dataset(&self, dataset: &ImageDataset) -> Vec<(BipolarHv, usize)> {
        (0..dataset.len())
            .map(|i| {
                let (img, label) = dataset.sample(i);
                (self.symbolize(&img), label)
            })
            .collect()
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(&self, dataset: &ImageDataset) -> f32 {
        let samples = self.symbolize_dataset(dataset);
        self.memory.accuracy(&samples)
    }
}

impl std::fmt::Debug for NshdModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NshdModel")
            .field("teacher", &self.teacher.name)
            .field("cut", &self.config.cut)
            .field("hv_dim", &self.config.hv_dim)
            .field("manifold", &self.manifold.is_some())
            .field("classes", &self.memory.num_classes())
            .finish()
    }
}

/// Step-wise NSHD training, exposing per-epoch state for the experiments
/// that need it (Fig. 8's KD ablation, Fig. 11's first-vs-last-iteration
/// t-SNE).
#[derive(Clone)]
pub struct NshdTrainer {
    model: NshdModel,
    distill: DistillTrainer,
    /// Cached extractor outputs, one CHW tensor per training sample.
    features: Vec<Tensor>,
    teacher_logits: Vec<Vec<f32>>,
    labels: Vec<usize>,
    epoch_index: usize,
    /// Decoded gradients are scaled by `D/√F̂` to undo the 1/D decoding
    /// attenuation, making `manifold_lr` magnitude-meaningful.
    gradient_scale: f32,
}

impl NshdTrainer {
    /// Extracts features and teacher logits, initialises the manifold,
    /// projection, and bundle-initialised class memory.
    ///
    /// # Panics
    ///
    /// Panics if static verification ([`crate::verify_teacher`]) rejects
    /// the teacher/configuration pair (invalid dimensions, a cut that
    /// exceeds the teacher's feature stack, inconsistent layer shapes,
    /// batch-norm not eval-ready) or the dataset is empty. See
    /// [`try_prepare`](NshdTrainer::try_prepare) for the non-panicking
    /// entry point.
    pub fn prepare(mut teacher: Model, train: &ImageDataset, config: NshdConfig) -> Self {
        let _sp = nshd_obs::span("prepare");
        config.validate();
        if let Err(report) = crate::verify::verify_teacher(&teacher, &config) {
            panic!("{report}");
        }
        assert!(!train.is_empty(), "cannot train NSHD on an empty dataset");
        let num_classes = train.num_classes();
        let mut rng = Rng::new(config.seed);

        // Cache extracted features and full-teacher logits in one pass.
        let mut features = Vec::with_capacity(train.len());
        let mut teacher_logits = Vec::with_capacity(train.len());
        let mut labels = Vec::with_capacity(train.len());
        const BATCH: usize = 32;
        let mut index = 0usize;
        while index < train.len() {
            let end = (index + BATCH).min(train.len());
            let imgs: Vec<Tensor> = (index..end).map(|i| train.sample(i).0).collect();
            let batch = Tensor::stack(&imgs).expect("non-empty batch");
            let feats = teacher.features_at(&batch, config.cut, Mode::Eval);
            let logits = teacher.logits_from_features(&feats, config.cut, Mode::Eval);
            for b in 0..(end - index) {
                features.push(feats.batch_item(b));
                let row = logits.batch_item(b);
                teacher_logits.push(row.as_slice().to_vec());
                labels.push(train.sample(index + b).1);
            }
            index = end;
        }

        // Standardise the extracted features: without per-feature scaling
        // a few dominant channels collapse every encoding onto the same
        // hypervector (see `FeatureScaler`).
        let scaler = FeatureScaler::fit(&features);
        for feat in &mut features {
            scaler.apply(feat);
        }

        let feat_shape = teacher.feature_shape_at(config.cut);
        let manifold = if config.use_manifold {
            Some(ManifoldLearner::new(&feat_shape, config.manifold_features, &mut rng))
        } else {
            None
        };
        let encode_width = match &manifold {
            Some(m) => m.out_features(),
            None => feat_shape.iter().product(),
        };
        let projection = RandomProjection::new(encode_width, config.hv_dim, rng.next_u64());

        // Bundle-initialise the class memory from the initial encodings.
        let mut memory = AssociativeMemory::new(num_classes, config.hv_dim);
        for (feat, &label) in features.iter().zip(&labels) {
            let values = match &manifold {
                Some(m) => m.forward(feat).1,
                None => feat.as_slice().to_vec(),
            };
            memory.bundle(label, &projection.encode(&values));
        }

        let distill = DistillTrainer::new(config.distill.clone());
        let gradient_scale = config.hv_dim as f32 / (encode_width as f32).sqrt();
        let model = NshdModel {
            teacher,
            config,
            scaler,
            manifold,
            projection,
            memory,
            history: Vec::new(),
        };
        NshdTrainer {
            model,
            distill,
            features,
            teacher_logits,
            labels,
            epoch_index: 0,
            gradient_scale,
        }
    }

    /// The configuration being trained.
    pub fn config(&self) -> &NshdConfig {
        &self.model.config
    }

    /// Replaces the distillation hyperparameters mid-run. Combined with
    /// `Clone`, this lets hyperparameter sweeps (the paper's Fig. 9 grid)
    /// reuse one expensive feature-extraction pass across every (t, α)
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DistillTrainer::new`]).
    pub fn set_distill_config(&mut self, distill: nshd_hdc::DistillConfig) {
        self.model.config.distill = distill.clone();
        self.distill = DistillTrainer::new(distill);
    }

    /// Number of cached training samples.
    pub fn num_samples(&self) -> usize {
        self.labels.len()
    }

    /// Mutable access to the in-training model — used by experiments that
    /// snapshot symbolisations of *held-out* data between epochs
    /// (Fig. 11). The returned model is fully functional; mutating its
    /// memory mid-training is the caller's responsibility.
    pub fn model_mut(&mut self) -> &mut NshdModel {
        &mut self.model
    }

    /// Symbolises the cached training set under the *current* manifold
    /// and memory — Fig. 11 snapshots this at the first and final
    /// iteration.
    pub fn symbolize_training_set(&self) -> Vec<(BipolarHv, usize)> {
        self.features
            .iter()
            .zip(&self.labels)
            .map(|(feat, &label)| {
                let values = match &self.model.manifold {
                    Some(m) => m.forward(feat).1,
                    None => feat.as_slice().to_vec(),
                };
                (self.model.projection.encode(&values), label)
            })
            .collect()
    }

    /// Runs one retraining epoch (Algorithm 1 plus the manifold update)
    /// and returns the pre-update training accuracy.
    pub fn epoch(&mut self) -> f32 {
        let _sp = nshd_obs::span("epoch");
        let mut correct = 0usize;
        let mut memory_updates = 0u64;
        let mut update_l1 = 0.0f64;
        for i in 0..self.labels.len() {
            let label = self.labels[i];
            let feat = &self.features[i];
            let (pooled, values) = match &self.model.manifold {
                Some(m) => {
                    let (p, v) = m.forward(feat);
                    (Some(p), v)
                }
                None => (None, feat.as_slice().to_vec()),
            };
            let pre = self.model.projection.encode_raw(&values);
            let hv = BipolarHv::from_signs(&pre);
            if self.model.memory.predict(&hv) == label {
                correct += 1;
            }
            // Algorithm 1 lines 3–9.
            let u = self.distill.step(&mut self.model.memory, &hv, label, &self.teacher_logits[i]);
            if nshd_obs::enabled() {
                memory_updates += u.iter().filter(|x| **x != 0.0).count() as u64;
                update_l1 += u.iter().map(|x| f64::from(x.abs())).sum::<f64>();
            }
            // §V-C: decode the class-error hypervectors through the
            // encoder (STE across sign) and update the manifold layer.
            if let (Some(manifold), Some(pooled)) = (&mut self.model.manifold, pooled) {
                let g = feature_gradient(
                    &self.model.projection,
                    &self.model.memory,
                    &u,
                    &pre,
                    &self.model.config.ste,
                );
                let scaled: Vec<f32> = g.iter().map(|x| x * self.gradient_scale).collect();
                manifold.update(&pooled, &scaled, self.model.config.manifold_lr);
            }
        }
        let accuracy = correct as f32 / self.labels.len() as f32;
        if nshd_obs::enabled() {
            nshd_obs::counter("trainer.epochs").inc();
            nshd_obs::counter("trainer.memory_updates").add(memory_updates);
            nshd_obs::gauge("trainer.train_accuracy").set(f64::from(accuracy));
            nshd_obs::gauge("trainer.update_l1").set(update_l1);
        }
        self.model.history.push(RetrainEpoch { epoch: self.epoch_index, train_accuracy: accuracy });
        self.epoch_index += 1;
        accuracy
    }

    /// Finishes training and returns the model.
    pub fn finish(self) -> NshdModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_data::{normalize_pair, SynthSpec};
    use nshd_hdc::DistillConfig;
    use nshd_nn::{fit, Adam, Architecture, TrainConfig};

    /// One shared trained teacher for every test in this module (teacher
    /// training is the expensive part; `Model: Clone` makes reuse cheap).
    fn small_setup() -> (Model, ImageDataset, ImageDataset) {
        use std::sync::OnceLock;
        static SETUP: OnceLock<(Model, ImageDataset, ImageDataset)> = OnceLock::new();
        SETUP
            .get_or_init(|| {
                let (mut train, mut test) = SynthSpec::synth10(21).with_sizes(300, 100).generate();
                normalize_pair(&mut train, &mut test);
                let mut rng = Rng::new(5);
                let mut teacher = Architecture::EfficientNetB0.build(10, &mut rng);
                let mut opt = Adam::new(2e-3, 1e-5);
                fit(
                    &mut teacher,
                    train.images(),
                    train.labels(),
                    &mut opt,
                    &TrainConfig { epochs: 8, batch_size: 32, seed: 3, ..TrainConfig::default() },
                );
                (teacher, train, test)
            })
            .clone()
    }

    #[test]
    fn full_pipeline_trains_and_beats_chance() {
        let (teacher, train, test) = small_setup();
        let cfg = NshdConfig::new(8)
            .with_hv_dim(1_000)
            .with_manifold_features(40)
            .with_retrain_epochs(5)
            .with_seed(1);
        let model = NshdModel::train(teacher, &train, cfg);
        let acc = model.evaluate(&test);
        assert!(acc > 0.35, "NSHD accuracy {acc} not above chance");
        assert_eq!(model.history().len(), 5);
        // Training accuracy generally improves from epoch 0 to the best.
        let first = model.history()[0].train_accuracy;
        let best = model.history().iter().map(|e| e.train_accuracy).fold(0.0f32, f32::max);
        assert!(best >= first);
    }

    #[test]
    fn trainer_snapshots_differ_between_first_and_last_iteration() {
        let (teacher, train, _) = small_setup();
        let cfg = NshdConfig::new(8)
            .with_hv_dim(500)
            .with_manifold_features(30)
            .with_retrain_epochs(4)
            .with_seed(2);
        let mut trainer = NshdTrainer::prepare(teacher, &train, cfg);
        let before = trainer.symbolize_training_set();
        for _ in 0..4 {
            trainer.epoch();
        }
        let after = trainer.symbolize_training_set();
        // The manifold moved, so at least some hypervectors changed.
        let changed = before.iter().zip(&after).filter(|((a, _), (b, _))| a != b).count();
        assert!(changed > 0, "manifold updates left all hypervectors unchanged");
    }

    #[test]
    fn without_manifold_encodes_raw_features() {
        let (teacher, train, test) = small_setup();
        let cfg = NshdConfig::new(8)
            .with_hv_dim(500)
            .with_manifold(false)
            .with_retrain_epochs(3)
            .with_seed(3);
        let feat_len = teacher.feature_len_at(8);
        let model = NshdModel::train(teacher, &train, cfg);
        assert_eq!(model.projection().features(), feat_len);
        assert!(model.manifold().is_none());
        let acc = model.evaluate(&test);
        assert!(acc > 0.2, "manifold-free accuracy {acc}");
    }

    #[test]
    fn distillation_config_flows_through() {
        let (teacher, train, _) = small_setup();
        let cfg = NshdConfig::new(8)
            .with_hv_dim(400)
            .with_manifold_features(20)
            .with_retrain_epochs(1)
            .with_distill(DistillConfig {
                alpha: 0.3,
                temperature: 12.0,
                ..DistillConfig::default()
            });
        let model = NshdModel::train(teacher, &train, cfg);
        assert!((model.config().distill.alpha - 0.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_cut_panics() {
        let (teacher, train, _) = small_setup();
        let cfg = NshdConfig::new(99);
        let _ = NshdTrainer::prepare(teacher, &train, cfg);
    }
}
