//! Graceful degradation for the NSHD pipeline: typed errors and a
//! divergence guard for retraining.
//!
//! The deployment story (§VI) assumes the pipeline keeps producing
//! answers under imperfect conditions — quantised memories, faulty
//! hardware, partial checkpoints. This module supplies the software half
//! of that robustness:
//!
//! - [`PipelineError`]: a typed error covering the ways the pipeline can
//!   fail at runtime (tensor-shape violations, non-finite activations,
//!   empty inputs, corrupt checkpoints) so callers can degrade instead
//!   of unwinding;
//! - [`DivergenceGuard`]: per-epoch snapshot/rollback around
//!   [`NshdTrainer`] retraining. HD retraining is an online update rule
//!   with no loss-based safety net — a fault-injected or numerically
//!   blown-up class memory makes `predict` panic on `partial_cmp` and a
//!   collapsed memory silently destroys accuracy. The guard checks state
//!   health *before* an epoch runs, snapshots the best-so-far memory and
//!   manifold, and rolls back when an epoch diverges.
//!
//! # Examples
//!
//! ```no_run
//! use nshd_core::{DivergenceGuard, GuardVerdict, NshdConfig, NshdTrainer};
//! # fn demo(teacher: nshd_nn::Model, train: &nshd_data::ImageDataset) {
//! let mut trainer = NshdTrainer::try_prepare(teacher, train, NshdConfig::new(8)).unwrap();
//! let mut guard = DivergenceGuard::new(0.15);
//! for _ in 0..trainer.config().retrain_epochs {
//!     match trainer.epoch_guarded(&mut guard) {
//!         Ok(GuardVerdict::Advanced { accuracy }) => println!("acc {accuracy:.3}"),
//!         Ok(GuardVerdict::RolledBack { reason, .. }) => println!("rolled back: {reason}"),
//!         Err(e) => panic!("unrecoverable: {e}"),
//!     }
//! }
//! # }
//! ```

use crate::model::{NshdModel, NshdTrainer};
use crate::verify::AnalysisReport;
use nshd_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Typed runtime failure of the NSHD pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A stage produced (or was handed) NaN/∞ values and no healthy
    /// state exists to fall back to.
    NonFiniteActivation {
        /// The pipeline stage where non-finite values were detected.
        stage: &'static str,
    },
    /// An operation that needs at least one sample received none.
    EmptyBatch,
    /// A persisted model could not be restored.
    CorruptCheckpoint {
        /// Byte offset into the checkpoint where the failure surfaced.
        offset: u64,
        /// What was expected versus what was found.
        detail: String,
    },
    /// Static pipeline verification rejected the model before any work
    /// started.
    Analysis(AnalysisReport),
    /// The serving runtime failed outside the engine itself — a
    /// misconfigured runtime, a dead worker thread, a closed channel.
    Runtime {
        /// The runtime component that failed (`"config"`, `"submit"`,
        /// `"extract"`, …).
        stage: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// Admission control shed the request: accepting it would have
    /// pushed the serving tier past its in-flight capacity, so it
    /// failed fast instead of queuing toward a missed deadline.
    Overloaded {
        /// Requests already in flight when this one arrived.
        inflight: usize,
        /// The admission cap it would have exceeded.
        capacity: usize,
    },
    /// The request's end-to-end deadline expired before any replica
    /// produced a result. The work may still complete in the
    /// background; the answer is simply no longer wanted.
    DeadlineExceeded {
        /// The per-request budget that ran out, in milliseconds.
        budget_ms: u64,
    },
    /// Every admissible replica was tried (with retries and backoff)
    /// and the request still failed; `last` is the final attempt's
    /// error.
    Unavailable {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error that ended the final attempt.
        last: Box<PipelineError>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            PipelineError::NonFiniteActivation { stage } => {
                write!(f, "non-finite values in {stage} with no snapshot to roll back to")
            }
            PipelineError::EmptyBatch => write!(f, "operation requires at least one sample"),
            PipelineError::CorruptCheckpoint { offset, detail } => {
                write!(f, "corrupt checkpoint at byte {offset}: {detail}")
            }
            PipelineError::Analysis(report) => write!(f, "{report}"),
            PipelineError::Runtime { stage, detail } => {
                write!(f, "serving runtime failure in {stage}: {detail}")
            }
            PipelineError::Overloaded { inflight, capacity } => {
                write!(f, "request shed: {inflight} in flight against a capacity of {capacity}")
            }
            PipelineError::DeadlineExceeded { budget_ms } => {
                write!(f, "request deadline of {budget_ms} ms expired before any replica answered")
            }
            PipelineError::Unavailable { attempts, last } => {
                write!(f, "no replica could serve the request after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Tensor(e) => Some(e),
            PipelineError::Analysis(report) => Some(report),
            PipelineError::Unavailable { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<TensorError> for PipelineError {
    fn from(e: TensorError) -> Self {
        PipelineError::Tensor(e)
    }
}

impl From<AnalysisReport> for PipelineError {
    fn from(report: AnalysisReport) -> Self {
        PipelineError::Analysis(report)
    }
}

/// Why a guarded epoch was rolled back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RollbackReason {
    /// The class memory or manifold weights contained NaN/∞.
    NonFiniteState,
    /// Training accuracy fell more than the guard's tolerance below the
    /// best epoch seen.
    AccuracyCollapse {
        /// Best pre-update training accuracy recorded so far.
        best: f32,
        /// Accuracy observed this epoch.
        observed: f32,
    },
}

impl fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackReason::NonFiniteState => write!(f, "non-finite memory or manifold state"),
            RollbackReason::AccuracyCollapse { best, observed } => {
                write!(f, "accuracy collapsed from {best:.3} to {observed:.3}")
            }
        }
    }
}

/// Outcome of one [`NshdTrainer::epoch_guarded`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// The epoch ran and the state was kept.
    Advanced {
        /// Pre-update training accuracy measured by the epoch.
        accuracy: f32,
    },
    /// The epoch (or the state it inherited) diverged; the trainer was
    /// restored to the best snapshot.
    RolledBack {
        /// What triggered the rollback.
        reason: RollbackReason,
        /// Training accuracy of the restored snapshot.
        restored_accuracy: f32,
    },
}

/// Best-so-far snapshot of the mutable training state.
#[derive(Debug, Clone)]
struct Snapshot {
    accuracy: f32,
    memory: Vec<Vec<f32>>,
    manifold: Option<(Vec<f32>, Vec<f32>)>,
}

/// Snapshot/rollback guard around NSHD retraining epochs.
///
/// `tolerance` is the absolute training-accuracy drop (relative to the
/// best epoch seen) that counts as divergence rather than normal
/// epoch-to-epoch noise.
#[derive(Debug, Clone)]
pub struct DivergenceGuard {
    tolerance: f32,
    best: Option<Snapshot>,
}

impl DivergenceGuard {
    /// Creates a guard that tolerates accuracy dips up to `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ tolerance ≤ 1`.
    pub fn new(tolerance: f32) -> Self {
        assert!((0.0..=1.0).contains(&tolerance), "tolerance must be in [0, 1], got {tolerance}");
        DivergenceGuard { tolerance, best: None }
    }

    /// Training accuracy of the best snapshot, if one has been taken.
    pub fn best_accuracy(&self) -> Option<f32> {
        self.best.as_ref().map(|s| s.accuracy)
    }

    /// Whether a snapshot is available to roll back to.
    pub fn has_snapshot(&self) -> bool {
        self.best.is_some()
    }

    fn capture(model: &NshdModel, accuracy: f32) -> Snapshot {
        let memory = model.memory();
        Snapshot {
            accuracy,
            memory: (0..memory.num_classes()).map(|c| memory.class(c).to_vec()).collect(),
            manifold: model.manifold_raw(),
        }
    }

    /// Restores the best snapshot into `model`. Returns the snapshot's
    /// accuracy, or `None` when no snapshot exists.
    fn restore(&self, model: &mut NshdModel) -> Option<f32> {
        let snap = self.best.as_ref()?;
        model.set_memory_raw(snap.memory.clone());
        if let Some((weight, bias)) = &snap.manifold {
            model
                .set_manifold_raw(weight.clone(), bias.clone())
                .expect("snapshot taken from this model fits its manifold");
        }
        Some(snap.accuracy)
    }
}

/// Whether the model's mutable training state (class memory and manifold
/// weights) is entirely finite.
fn state_is_finite(model: &NshdModel) -> bool {
    if !model.memory().is_finite() {
        return false;
    }
    match model.manifold_raw() {
        Some((weight, bias)) => {
            weight.iter().all(|v| v.is_finite()) && bias.iter().all(|v| v.is_finite())
        }
        None => true,
    }
}

impl NshdTrainer {
    /// Like [`prepare`](NshdTrainer::prepare), but reports an empty
    /// training set as [`PipelineError::EmptyBatch`] and a misconfigured
    /// teacher/config pair as [`PipelineError::Analysis`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::EmptyBatch`] when `train` has no
    /// samples, or [`PipelineError::Analysis`] when static verification
    /// ([`crate::verify_teacher`]) rejects the pipeline.
    #[must_use = "the trainer is only constructed when verification passes"]
    pub fn try_prepare(
        teacher: nshd_nn::Model,
        train: &nshd_data::ImageDataset,
        config: crate::NshdConfig,
    ) -> Result<Self, PipelineError> {
        if train.is_empty() {
            return Err(PipelineError::EmptyBatch);
        }
        crate::verify::verify_teacher(&teacher, &config)?;
        Ok(Self::prepare(teacher, train, config))
    }

    /// Runs one retraining epoch under a [`DivergenceGuard`].
    ///
    /// The call validates state health *before* the epoch (a non-finite
    /// memory would make `predict` panic mid-epoch), runs the epoch,
    /// snapshots the pre-update state whenever it is the best seen, and
    /// rolls back when the epoch left non-finite state behind or training
    /// accuracy collapsed beyond the guard's tolerance.
    ///
    /// A pre-epoch rollback returns without running the epoch; the caller
    /// simply calls again.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::NonFiniteActivation`] when the state is
    /// non-finite and the guard holds no snapshot to restore.
    pub fn epoch_guarded(
        &mut self,
        guard: &mut DivergenceGuard,
    ) -> Result<GuardVerdict, PipelineError> {
        // Health check first: a poisoned memory (fault injection, a
        // diverged previous epoch) panics inside `epoch`'s predict calls.
        if !state_is_finite(self.model_mut()) {
            return match guard.restore(self.model_mut()) {
                Some(restored_accuracy) => Ok(GuardVerdict::RolledBack {
                    reason: RollbackReason::NonFiniteState,
                    restored_accuracy,
                }),
                None => {
                    Err(PipelineError::NonFiniteActivation { stage: "class memory / manifold" })
                }
            };
        }

        // `epoch` measures accuracy of the *pre-update* state, so capture
        // that state before running and associate it with the measurement.
        let pre = DivergenceGuard::capture(self.model_mut(), 0.0);
        let accuracy = self.epoch();

        if guard.best.as_ref().is_none_or(|s| accuracy >= s.accuracy) {
            guard.best = Some(Snapshot { accuracy, ..pre });
        } else if let Some(best) = guard.best_accuracy() {
            if accuracy + guard.tolerance < best {
                let restored_accuracy =
                    guard.restore(self.model_mut()).expect("guard holds a snapshot");
                return Ok(GuardVerdict::RolledBack {
                    reason: RollbackReason::AccuracyCollapse { best, observed: accuracy },
                    restored_accuracy,
                });
            }
        }

        if !state_is_finite(self.model_mut()) {
            let restored_accuracy =
                guard.restore(self.model_mut()).expect("snapshot recorded above");
            return Ok(GuardVerdict::RolledBack {
                reason: RollbackReason::NonFiniteState,
                restored_accuracy,
            });
        }
        Ok(GuardVerdict::Advanced { accuracy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NshdConfig;
    use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
    use nshd_nn::{fit, Adam, Architecture, Model, TrainConfig};
    use nshd_tensor::{Rng, Tensor};

    fn setup() -> (Model, ImageDataset) {
        use std::sync::OnceLock;
        static SETUP: OnceLock<(Model, ImageDataset)> = OnceLock::new();
        SETUP
            .get_or_init(|| {
                let (mut train, mut test) = SynthSpec::synth10(77).with_sizes(160, 20).generate();
                normalize_pair(&mut train, &mut test);
                let mut teacher = Architecture::MobileNetV2.build(10, &mut Rng::new(6));
                let mut opt = Adam::new(2e-3, 0.0);
                fit(
                    &mut teacher,
                    train.images(),
                    train.labels(),
                    &mut opt,
                    &TrainConfig { epochs: 5, batch_size: 32, seed: 1, ..TrainConfig::default() },
                );
                (teacher, train)
            })
            .clone()
    }

    fn trainer(seed: u64) -> NshdTrainer {
        let (teacher, train) = setup();
        let cfg = NshdConfig::new(15)
            .with_hv_dim(500)
            .with_manifold_features(30)
            .with_retrain_epochs(4)
            .with_seed(seed);
        NshdTrainer::prepare(teacher, &train, cfg)
    }

    #[test]
    fn empty_dataset_is_reported_not_panicked() {
        let (teacher, _) = setup();
        let empty = ImageDataset::new(Tensor::zeros([0, 3, 32, 32]), Vec::new(), 10);
        let Err(err) = NshdTrainer::try_prepare(teacher, &empty, NshdConfig::new(15)) else {
            panic!("empty dataset accepted");
        };
        assert_eq!(err, PipelineError::EmptyBatch);
        assert!(err.to_string().contains("at least one sample"));
    }

    #[test]
    fn oversized_cut_is_reported_not_panicked() {
        let (teacher, train) = setup();
        let Err(err) = NshdTrainer::try_prepare(teacher, &train, NshdConfig::new(99)) else {
            panic!("oversized cut accepted");
        };
        let PipelineError::Analysis(report) = &err else {
            panic!("expected an analysis report, got {err:?}");
        };
        assert_eq!(report.stage, crate::verify::Stage::Config);
        assert!(err.to_string().contains("exceeds"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn guarded_epochs_match_plain_epochs_on_healthy_runs() {
        let mut plain = trainer(1);
        let mut guarded = trainer(1);
        let mut guard = DivergenceGuard::new(0.5);
        for _ in 0..3 {
            let a = plain.epoch();
            let b = guarded.epoch_guarded(&mut guard).expect("healthy run");
            assert_eq!(b, GuardVerdict::Advanced { accuracy: a });
        }
        assert!(guard.has_snapshot());
    }

    #[test]
    fn nan_epoch_recovers_via_rollback() {
        let mut trainer = trainer(2);
        let mut guard = DivergenceGuard::new(0.5);
        // One clean epoch records a healthy snapshot.
        let verdict = trainer.epoch_guarded(&mut guard).expect("clean epoch");
        let GuardVerdict::Advanced { accuracy } = verdict else {
            panic!("clean epoch rolled back: {verdict:?}");
        };
        // Inject the fault-model failure: a NaN lands in the class memory.
        trainer.model_mut().memory_mut().class_mut(0)[0] = f32::NAN;
        assert!(!trainer.model_mut().memory_mut().is_finite());
        let verdict = trainer.epoch_guarded(&mut guard).expect("rollback available");
        assert_eq!(
            verdict,
            GuardVerdict::RolledBack {
                reason: RollbackReason::NonFiniteState,
                restored_accuracy: accuracy,
            }
        );
        // The restored state is healthy and training continues normally.
        assert!(trainer.model_mut().memory_mut().is_finite());
        let verdict = trainer.epoch_guarded(&mut guard).expect("post-rollback epoch");
        assert!(matches!(verdict, GuardVerdict::Advanced { .. }), "{verdict:?}");
    }

    #[test]
    fn accuracy_collapse_rolls_back() {
        let mut trainer = trainer(3);
        let mut guard = DivergenceGuard::new(0.1);
        // Retrain a few epochs so the snapshot sits well above chance.
        for _ in 0..5 {
            trainer.epoch_guarded(&mut guard).expect("clean epoch");
        }
        let clean = guard.best_accuracy().expect("snapshot recorded");
        assert!(clean > 0.2, "retrained accuracy {clean} too low for this test");
        // Negate the memory: finite, but argmax becomes argmin, so
        // accuracy collapses to near zero.
        let memory = trainer.model_mut().memory_mut();
        for c in 0..memory.num_classes() {
            for v in memory.class_mut(c) {
                *v = -*v;
            }
        }
        let verdict = trainer.epoch_guarded(&mut guard).expect("rollback available");
        match verdict {
            GuardVerdict::RolledBack {
                reason: RollbackReason::AccuracyCollapse { best, observed },
                restored_accuracy,
            } => {
                assert!(observed < best - 0.1, "collapse {best} -> {observed}");
                assert_eq!(restored_accuracy, clean);
            }
            other => panic!("expected accuracy-collapse rollback, got {other:?}"),
        }
        // Restored memory predicts like the snapshot again.
        let verdict = trainer.epoch_guarded(&mut guard).expect("post-rollback epoch");
        let GuardVerdict::Advanced { accuracy } = verdict else {
            panic!("post-rollback epoch rolled back: {verdict:?}");
        };
        assert!(accuracy > clean - 0.1, "restored accuracy {accuracy} vs clean {clean}");
    }

    #[test]
    fn nonfinite_state_without_snapshot_is_an_error() {
        let mut trainer = trainer(4);
        trainer.model_mut().memory_mut().class_mut(0)[0] = f32::INFINITY;
        let mut guard = DivergenceGuard::new(0.2);
        let err = trainer.epoch_guarded(&mut guard).unwrap_err();
        assert!(matches!(err, PipelineError::NonFiniteActivation { .. }), "{err:?}");
        assert!(err.to_string().contains("no snapshot"));
    }

    #[test]
    fn pipeline_error_display_and_conversion() {
        let e: PipelineError = nshd_tensor::TensorError::EmptyTensor.into();
        assert!(e.to_string().contains("tensor operation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = PipelineError::CorruptCheckpoint { offset: 42, detail: "bad magic".into() };
        assert_eq!(e.to_string(), "corrupt checkpoint at byte 42: bad magic");
        assert!(PipelineError::EmptyBatch.to_string().contains("sample"));
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn invalid_tolerance_panics() {
        DivergenceGuard::new(1.5);
    }
}
