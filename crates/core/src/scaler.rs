//! Per-feature standardisation of extracted CNN features.
//!
//! Random-projection encoding is driven by *relative* feature magnitudes:
//! a handful of large-activation channels would otherwise dominate the
//! pre-sign accumulator and collapse every sample onto nearly the same
//! hypervector. Standardising each feature over the training set (the
//! usual preprocessing in HD learning pipelines) restores the contrast
//! the encoder needs.

use nshd_tensor::Tensor;

/// Per-feature mean/standard-deviation statistics fitted on the training
/// set's extracted features.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl FeatureScaler {
    /// Fits statistics over a set of equally-shaped feature tensors.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or shapes disagree.
    pub fn fit(features: &[Tensor]) -> Self {
        let first = features.first().expect("cannot fit a scaler on no features");
        let len = first.len();
        let n = features.len() as f64;
        let mut mean = vec![0.0f64; len];
        for f in features {
            assert_eq!(f.len(), len, "feature shapes disagree");
            for (m, &v) in mean.iter_mut().zip(f.as_slice()) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; len];
        for f in features {
            for ((v, &x), &m) in var.iter_mut().zip(f.as_slice()).zip(&mean) {
                *v += (x as f64 - m).powi(2);
            }
        }
        let inv_std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let std = (v / n).sqrt();
                if std < 1e-6 {
                    0.0 // constant feature carries no information; zero it
                } else {
                    1.0 / std as f32
                }
            })
            .collect();
        FeatureScaler { mean: mean.iter().map(|&m| m as f32).collect(), inv_std }
    }

    /// Feature count.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the scaler covers zero features.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Standardises a feature tensor in place (shape preserved).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted length.
    pub fn apply(&self, features: &mut Tensor) {
        assert_eq!(features.len(), self.mean.len(), "feature length mismatch");
        for ((v, &m), &s) in features.as_mut_slice().iter_mut().zip(&self.mean).zip(&self.inv_std) {
            *v = (*v - m) * s;
        }
    }

    /// Returns a standardised copy.
    pub fn transform(&self, features: &Tensor) -> Tensor {
        let mut out = features.clone();
        self.apply(&mut out);
        out
    }

    /// The raw `(mean, 1/std)` statistics (serialization).
    pub fn raw(&self) -> (Vec<f32>, Vec<f32>) {
        (self.mean.clone(), self.inv_std.clone())
    }

    /// Rebuilds a scaler from raw statistics.
    ///
    /// # Errors
    ///
    /// Returns a message when the vectors are empty or differ in length.
    #[must_use = "the scaler is only rebuilt when the statistics are consistent"]
    pub fn from_raw(mean: Vec<f32>, inv_std: Vec<f32>) -> Result<Self, String> {
        if mean.is_empty() || mean.len() != inv_std.len() {
            return Err(format!(
                "invalid scaler statistics: {} means, {} inverse stds",
                mean.len(),
                inv_std.len()
            ));
        }
        Ok(FeatureScaler { mean, inv_std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_each_feature_independently() {
        let feats: Vec<Tensor> = (0..50)
            .map(|i| {
                // Feature 0: huge scale; feature 1: tiny scale.
                Tensor::from_slice(&[1000.0 + i as f32, 0.001 * i as f32])
            })
            .collect();
        let scaler = FeatureScaler::fit(&feats);
        let scaled: Vec<Tensor> = feats.iter().map(|f| scaler.transform(f)).collect();
        for feat_idx in 0..2 {
            let vals: Vec<f32> = scaled.iter().map(|t| t.as_slice()[feat_idx]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "feature {feat_idx} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "feature {feat_idx} var {var}");
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let feats: Vec<Tensor> = (0..10).map(|i| Tensor::from_slice(&[5.0, i as f32])).collect();
        let scaler = FeatureScaler::fit(&feats);
        let out = scaler.transform(&feats[3]);
        assert_eq!(out.as_slice()[0], 0.0);
        assert!(out.as_slice()[1].abs() > 0.0);
    }

    #[test]
    fn transform_preserves_shape() {
        let feats = vec![Tensor::zeros([2, 3, 4]), Tensor::ones([2, 3, 4])];
        let scaler = FeatureScaler::fit(&feats);
        let out = scaler.transform(&feats[0]);
        assert_eq!(out.dims(), &[2, 3, 4]);
        assert_eq!(scaler.len(), 24);
    }

    #[test]
    #[should_panic(expected = "no features")]
    fn empty_fit_panics() {
        FeatureScaler::fit(&[]);
    }
}
