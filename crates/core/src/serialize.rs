//! Save/load of trained NSHD models.
//!
//! A trained pipeline is the teacher CNN weights, the feature scaler, the
//! manifold layer, the class memory, and the configuration. The random
//! projection is *not* stored — it is reconstructed from the persisted
//! seed, one of the practical perks of seeded HD encodings.
//!
//! Loading is defensive: the stream is wrapped in a byte-counting reader
//! so truncation, garbage, and non-finite payload values surface as
//! descriptive errors carrying the byte offset — never panics. The
//! typed variant ([`NshdModel::load_into_checked`]) reports failures as
//! [`PipelineError::CorruptCheckpoint`].

use crate::config::NshdConfig;
use crate::model::NshdModel;
use crate::robust::PipelineError;
use nshd_data::ImageDataset;
use nshd_nn::{load_model, save_model, CountingReader, Model};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NSHDPIP1";

impl NshdModel {
    /// Saves the trained pipeline.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save<W: Write>(&mut self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        // Configuration (the fields needed to rebuild structure).
        let cfg = self.config().clone();
        write_u64(&mut writer, cfg.cut as u64)?;
        write_u64(&mut writer, cfg.hv_dim as u64)?;
        write_u64(&mut writer, cfg.manifold_features as u64)?;
        write_u64(&mut writer, u64::from(cfg.use_manifold))?;
        write_u64(&mut writer, cfg.seed)?;
        write_u64(&mut writer, self.projection_seed())?;
        // Class memory.
        let memory = self.memory();
        write_u64(&mut writer, memory.num_classes() as u64)?;
        write_u64(&mut writer, memory.dim() as u64)?;
        for c in 0..memory.num_classes() {
            write_f32s(&mut writer, memory.class(c))?;
        }
        // Scaler.
        let (mean, inv_std) = self.scaler_raw();
        write_f32s(&mut writer, &mean)?;
        write_f32s(&mut writer, &inv_std)?;
        // Manifold.
        match self.manifold_raw() {
            Some((weight, bias)) => {
                write_u64(&mut writer, 1)?;
                write_f32s(&mut writer, &weight)?;
                write_f32s(&mut writer, &bias)?;
            }
            None => write_u64(&mut writer, 0)?,
        }
        // Teacher CNN (weights + batch-norm state).
        save_model(self.teacher_mut(), &mut writer)
    }

    /// Loads a pipeline saved by [`save`](NshdModel::save) into a model
    /// freshly trained-or-built against the *same teacher architecture
    /// and dataset shape*. The easiest way to obtain a compatible
    /// receiver is [`NshdModel::train`] with `retrain_epochs = 0` — see
    /// `examples/` — or simply the same builder code that produced the
    /// saved model.
    ///
    /// # Errors
    ///
    /// Returns an error — never panics — on magic/shape/seed mismatch,
    /// truncated or bit-corrupted streams, non-finite payload values, or
    /// I/O failure; messages carry the byte offset of the failure.
    pub fn load_into<R: Read>(&mut self, reader: R) -> io::Result<()> {
        self.load_into_checked(reader).map_err(|e| match e {
            PipelineError::CorruptCheckpoint { offset, detail } => {
                io::Error::new(io::ErrorKind::InvalidData, format!("at byte {offset}: {detail}"))
            }
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })
    }

    /// Typed variant of [`load_into`](NshdModel::load_into): failures are
    /// reported as [`PipelineError::CorruptCheckpoint`] with the byte
    /// offset where the problem was detected.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::CorruptCheckpoint`] on any load failure.
    pub fn load_into_checked<R: Read>(&mut self, reader: R) -> Result<(), PipelineError> {
        let mut r = CountingReader::new(reader);
        self.load_impl(&mut r).map_err(|e| PipelineError::CorruptCheckpoint {
            offset: r.offset(),
            detail: e.to_string(),
        })
    }

    fn load_impl<R: Read>(&mut self, reader: &mut CountingReader<R>) -> io::Result<()> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(truncated("pipeline magic"))?;
        if &magic != MAGIC {
            return Err(bad("not an NSHD pipeline file (bad magic)"));
        }
        let cut = read_u64(reader)? as usize;
        let hv_dim = read_u64(reader)? as usize;
        let f_hat = read_u64(reader)? as usize;
        let use_manifold = read_u64(reader)? != 0;
        let seed = read_u64(reader)?;
        let proj_seed = read_u64(reader)?;
        {
            let cfg = self.config();
            if cut != cfg.cut
                || hv_dim != cfg.hv_dim
                || f_hat != cfg.manifold_features
                || use_manifold != cfg.use_manifold
            {
                return Err(bad(format!(
                    "pipeline configuration mismatch: file (cut {cut}, hv_dim {hv_dim}, \
                     F̂ {f_hat}, manifold {use_manifold}), model (cut {}, hv_dim {}, F̂ {}, \
                     manifold {})",
                    cfg.cut, cfg.hv_dim, cfg.manifold_features, cfg.use_manifold
                )));
            }
            if seed != cfg.seed || proj_seed != self.projection_seed() {
                return Err(bad("pipeline seed mismatch (projection not reproducible)"));
            }
        }
        // Class memory.
        let k = read_u64(reader)? as usize;
        let d = read_u64(reader)? as usize;
        if k != self.memory().num_classes() || d != self.memory().dim() {
            return Err(bad(format!(
                "class-memory shape mismatch: file {k}×{d}, model {}×{}",
                self.memory().num_classes(),
                self.memory().dim()
            )));
        }
        let mut classes = Vec::with_capacity(k);
        for c in 0..k {
            let row = read_f32s(reader)?;
            if row.len() != d {
                return Err(bad(format!(
                    "class {c} hypervector length mismatch: file {}, expected {d}",
                    row.len()
                )));
            }
            if let Some(v) = row.iter().find(|v| !v.is_finite()) {
                return Err(bad(format!("non-finite value {v} in class {c} hypervector")));
            }
            classes.push(row);
        }
        self.set_memory_raw(classes);
        // Scaler.
        let mean = read_finite_f32s(reader, "scaler mean")?;
        let inv_std = read_finite_f32s(reader, "scaler inverse std")?;
        self.set_scaler_raw(mean, inv_std).map_err(bad)?;
        // Manifold.
        let has_manifold = read_u64(reader)? != 0;
        if has_manifold != use_manifold {
            return Err(bad("manifold presence mismatch"));
        }
        if has_manifold {
            let weight = read_finite_f32s(reader, "manifold weight")?;
            let bias = read_finite_f32s(reader, "manifold bias")?;
            self.set_manifold_raw(weight, bias).map_err(bad)?;
        }
        load_model(self.teacher_mut(), reader)
    }

    /// Mutable teacher access (serialization needs `&mut` for the shared
    /// save path).
    pub fn teacher_mut(&mut self) -> &mut Model {
        self.teacher_mut_internal()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn truncated(what: &str) -> impl Fn(io::Error) -> io::Error + '_ {
    move |e| io::Error::new(e.kind(), format!("truncated reading {what}"))
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(truncated("u64 field"))?;
    Ok(u64::from_le_bytes(buf))
}

fn write_f32s<W: Write>(w: &mut W, vals: &[f32]) -> io::Result<()> {
    write_u64(w, vals.len() as u64)?;
    for v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let len = read_u64(r)? as usize;
    if len > (1 << 28) {
        return Err(bad(format!("implausible vector length {len}")));
    }
    let mut out = vec![0.0f32; len];
    let mut buf = [0u8; 4];
    for v in out.iter_mut() {
        r.read_exact(&mut buf).map_err(truncated("f32 vector"))?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(out)
}

fn read_finite_f32s<R: Read>(r: &mut R, what: &str) -> io::Result<Vec<f32>> {
    let out = read_f32s(r)?;
    if let Some(v) = out.iter().find(|v| !v.is_finite()) {
        return Err(bad(format!("non-finite value {v} in {what}")));
    }
    Ok(out)
}

/// Round-trip helper used by examples and tests: trains a 0-epoch
/// skeleton against the same teacher/dataset/config and loads the saved
/// pipeline into it.
///
/// # Errors
///
/// Returns serialization errors from [`NshdModel::load_into`].
pub fn load_pipeline<R: Read>(
    teacher: Model,
    train: &ImageDataset,
    config: NshdConfig,
    reader: R,
) -> io::Result<NshdModel> {
    let mut skeleton = NshdModel::train(teacher, train, config.with_retrain_epochs(0));
    skeleton.load_into(reader)?;
    Ok(skeleton)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_data::{normalize_pair, SynthSpec};
    use nshd_nn::{fit, Adam, Architecture, TrainConfig};
    use nshd_tensor::Rng;

    fn setup() -> (Model, ImageDataset, ImageDataset) {
        let (mut train, mut test) = SynthSpec::synth10(91).with_sizes(80, 40).generate();
        normalize_pair(&mut train, &mut test);
        let mut teacher = Architecture::MobileNetV2.build(10, &mut Rng::new(4));
        let mut opt = Adam::new(2e-3, 0.0);
        fit(
            &mut teacher,
            train.images(),
            train.labels(),
            &mut opt,
            &TrainConfig { epochs: 3, batch_size: 32, seed: 1, ..TrainConfig::default() },
        );
        (teacher, train, test)
    }

    #[test]
    fn pipeline_round_trips_with_identical_predictions() {
        let (teacher, train, test) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(600).with_retrain_epochs(3).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");

        let restored = load_pipeline(teacher, &train, cfg, bytes.as_slice()).expect("load");
        for i in 0..test.len() {
            let (img, _) = test.sample(i);
            assert_eq!(original.predict(&img), restored.predict(&img), "sample {i}");
        }
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(600).with_retrain_epochs(1).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");
        let other_cfg = cfg.with_hv_dim(700);
        let err = load_pipeline(teacher, &train, other_cfg, bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(300).with_retrain_epochs(0).with_seed(5);
        let err = load_pipeline(teacher, &train, cfg, &b"nonsense"[..]).unwrap_err();
        assert!(err.to_string().contains("pipeline") || err.kind() == io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncations_error_with_offset_never_panic() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(300).with_retrain_epochs(1).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");
        // One reusable skeleton: a failed load may leave it partially
        // overwritten, which is fine for error-path testing.
        let mut skeleton = NshdModel::train(teacher, &train, cfg.with_retrain_epochs(0));
        let step = (bytes.len() / 37).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let err = skeleton.load_into_checked(&bytes[..cut]).unwrap_err();
            let PipelineError::CorruptCheckpoint { offset, .. } = err else {
                panic!("cut {cut}: unexpected error {err:?}");
            };
            assert!(offset <= cut as u64, "cut {cut}: offset {offset} beyond stream");
        }
    }

    #[test]
    fn bit_flips_error_or_load_but_never_panic() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(300).with_retrain_epochs(1).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");
        let mut skeleton = NshdModel::train(teacher, &train, cfg.with_retrain_epochs(0));
        let step = (bytes.len() / 43).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x80;
            // Either a clean typed error or a value-corrupted load —
            // never a panic.
            let _ = skeleton.load_into_checked(corrupt.as_slice());
        }
        // The header is fully validated: any flip there must error.
        for pos in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            let err = skeleton.load_into_checked(corrupt.as_slice()).unwrap_err();
            assert!(matches!(err, PipelineError::CorruptCheckpoint { .. }), "pos {pos}: {err:?}");
        }
    }

    #[test]
    fn non_finite_class_memory_is_rejected() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(300).with_retrain_epochs(1).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");
        // First class-memory f32: magic (8) + six config u64s (48) + k and
        // d (16) + the row-length prefix (8).
        let first_f32 = 8 + 48 + 16 + 8;
        bytes[first_f32..first_f32 + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let mut skeleton = NshdModel::train(teacher, &train, cfg.with_retrain_epochs(0));
        let err = skeleton.load_into(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        assert!(err.to_string().contains("at byte"), "{err}");
    }
}
