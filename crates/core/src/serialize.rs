//! Save/load of trained NSHD models.
//!
//! A trained pipeline is the teacher CNN weights, the feature scaler, the
//! manifold layer, the class memory, and the configuration. The random
//! projection is *not* stored — it is reconstructed from the persisted
//! seed, one of the practical perks of seeded HD encodings.

use crate::config::NshdConfig;
use crate::model::NshdModel;
use nshd_data::ImageDataset;
use nshd_nn::{load_model, save_model, Model};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NSHDPIP1";

impl NshdModel {
    /// Saves the trained pipeline.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save<W: Write>(&mut self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        // Configuration (the fields needed to rebuild structure).
        let cfg = self.config().clone();
        write_u64(&mut writer, cfg.cut as u64)?;
        write_u64(&mut writer, cfg.hv_dim as u64)?;
        write_u64(&mut writer, cfg.manifold_features as u64)?;
        write_u64(&mut writer, u64::from(cfg.use_manifold))?;
        write_u64(&mut writer, cfg.seed)?;
        write_u64(&mut writer, self.projection_seed())?;
        // Class memory.
        let memory = self.memory();
        write_u64(&mut writer, memory.num_classes() as u64)?;
        write_u64(&mut writer, memory.dim() as u64)?;
        for c in 0..memory.num_classes() {
            write_f32s(&mut writer, memory.class(c))?;
        }
        // Scaler.
        let (mean, inv_std) = self.scaler_raw();
        write_f32s(&mut writer, &mean)?;
        write_f32s(&mut writer, &inv_std)?;
        // Manifold.
        match self.manifold_raw() {
            Some((weight, bias)) => {
                write_u64(&mut writer, 1)?;
                write_f32s(&mut writer, &weight)?;
                write_f32s(&mut writer, &bias)?;
            }
            None => write_u64(&mut writer, 0)?,
        }
        // Teacher CNN (weights + batch-norm state).
        save_model(self.teacher_mut(), &mut writer)
    }

    /// Loads a pipeline saved by [`save`](NshdModel::save) into a model
    /// freshly trained-or-built against the *same teacher architecture
    /// and dataset shape*. The easiest way to obtain a compatible
    /// receiver is [`NshdModel::train`] with `retrain_epochs = 0` — see
    /// `examples/` — or simply the same builder code that produced the
    /// saved model.
    ///
    /// # Errors
    ///
    /// Returns an error on magic/shape mismatch or I/O failure.
    pub fn load_into<R: Read>(&mut self, mut reader: R) -> io::Result<()> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an NSHD pipeline file"));
        }
        let cut = read_u64(&mut reader)? as usize;
        let hv_dim = read_u64(&mut reader)? as usize;
        let f_hat = read_u64(&mut reader)? as usize;
        let use_manifold = read_u64(&mut reader)? != 0;
        let seed = read_u64(&mut reader)?;
        let proj_seed = read_u64(&mut reader)?;
        {
            let cfg = self.config();
            if cut != cfg.cut
                || hv_dim != cfg.hv_dim
                || f_hat != cfg.manifold_features
                || use_manifold != cfg.use_manifold
            {
                return Err(bad("pipeline configuration mismatch"));
            }
            if seed != cfg.seed || proj_seed != self.projection_seed() {
                return Err(bad("pipeline seed mismatch (projection not reproducible)"));
            }
        }
        // Class memory.
        let k = read_u64(&mut reader)? as usize;
        let d = read_u64(&mut reader)? as usize;
        if k != self.memory().num_classes() || d != self.memory().dim() {
            return Err(bad("class-memory shape mismatch"));
        }
        let mut classes = Vec::with_capacity(k);
        for _ in 0..k {
            let row = read_f32s(&mut reader)?;
            if row.len() != d {
                return Err(bad("class hypervector length mismatch"));
            }
            classes.push(row);
        }
        self.set_memory_raw(classes);
        // Scaler.
        let mean = read_f32s(&mut reader)?;
        let inv_std = read_f32s(&mut reader)?;
        self.set_scaler_raw(mean, inv_std).map_err(bad)?;
        // Manifold.
        let has_manifold = read_u64(&mut reader)? != 0;
        if has_manifold != use_manifold {
            return Err(bad("manifold presence mismatch"));
        }
        if has_manifold {
            let weight = read_f32s(&mut reader)?;
            let bias = read_f32s(&mut reader)?;
            self.set_manifold_raw(weight, bias).map_err(bad)?;
        }
        load_model(self.teacher_mut(), &mut reader)
    }

    /// Mutable teacher access (serialization needs `&mut` for the shared
    /// save path).
    pub fn teacher_mut(&mut self) -> &mut Model {
        self.teacher_mut_internal()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_f32s<W: Write>(w: &mut W, vals: &[f32]) -> io::Result<()> {
    write_u64(w, vals.len() as u64)?;
    for v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let len = read_u64(r)? as usize;
    if len > (1 << 31) {
        return Err(bad("implausible vector length"));
    }
    let mut out = vec![0.0f32; len];
    let mut buf = [0u8; 4];
    for v in out.iter_mut() {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(out)
}

/// Round-trip helper used by examples and tests: trains a 0-epoch
/// skeleton against the same teacher/dataset/config and loads the saved
/// pipeline into it.
///
/// # Errors
///
/// Returns serialization errors from [`NshdModel::load_into`].
pub fn load_pipeline<R: Read>(
    teacher: Model,
    train: &ImageDataset,
    config: NshdConfig,
    reader: R,
) -> io::Result<NshdModel> {
    let mut skeleton = NshdModel::train(teacher, train, config.with_retrain_epochs(0));
    skeleton.load_into(reader)?;
    Ok(skeleton)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_data::{normalize_pair, SynthSpec};
    use nshd_nn::{fit, Adam, Architecture, TrainConfig};
    use nshd_tensor::Rng;

    fn setup() -> (Model, ImageDataset, ImageDataset) {
        let (mut train, mut test) = SynthSpec::synth10(91).with_sizes(80, 40).generate();
        normalize_pair(&mut train, &mut test);
        let mut teacher = Architecture::MobileNetV2.build(10, &mut Rng::new(4));
        let mut opt = Adam::new(2e-3, 0.0);
        fit(
            &mut teacher,
            train.images(),
            train.labels(),
            &mut opt,
            &TrainConfig { epochs: 3, batch_size: 32, seed: 1, ..TrainConfig::default() },
        );
        (teacher, train, test)
    }

    #[test]
    fn pipeline_round_trips_with_identical_predictions() {
        let (teacher, train, test) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(600).with_retrain_epochs(3).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");

        let mut restored =
            load_pipeline(teacher, &train, cfg, bytes.as_slice()).expect("load");
        for i in 0..test.len() {
            let (img, _) = test.sample(i);
            assert_eq!(original.predict(&img), restored.predict(&img), "sample {i}");
        }
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(600).with_retrain_epochs(1).with_seed(5);
        let mut original = NshdModel::train(teacher.clone(), &train, cfg.clone());
        let mut bytes = Vec::new();
        original.save(&mut bytes).expect("save");
        let other_cfg = cfg.with_hv_dim(700);
        let err = load_pipeline(teacher, &train, other_cfg, bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        let (teacher, train, _) = setup();
        let cfg = NshdConfig::new(15).with_hv_dim(300).with_retrain_epochs(0).with_seed(5);
        let err = load_pipeline(teacher, &train, cfg, &b"nonsense"[..]).unwrap_err();
        assert!(err.to_string().contains("pipeline") || err.kind() == io::ErrorKind::UnexpectedEof);
    }
}
