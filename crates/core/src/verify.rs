//! Static verification of an assembled NSHD pipeline.
//!
//! The pipeline chains five independently-constructed stages — truncated
//! CNN extractor, feature scaler, optional manifold learner, random
//! projection, associative memory — and every hand-off has a dimension
//! that must agree with its neighbour. A mismatch anywhere used to
//! surface as a mid-batch panic deep inside tensor code, possibly on a
//! worker thread. This module checks the whole chain *statically*, using
//! [`Layer::shape_of`] inference instead of running any arithmetic, and
//! reports the first violation as a structured [`AnalysisReport`] naming
//! the offending [`Stage`], the feature-layer index when applicable, and
//! the expected/actual dimensions.
//!
//! The checks run at every construction boundary: [`NshdEngine::new`],
//! [`NshdTrainer::try_prepare`] (and `prepare`, which panics with the
//! report), and `nshd-runtime`'s `InferenceRuntime`, so a misconfigured
//! model is rejected before any thread is spawned.
//!
//! [`Layer::shape_of`]: nshd_nn::Layer::shape_of
//! [`NshdEngine::new`]: crate::NshdEngine::new
//! [`NshdTrainer::try_prepare`]: crate::NshdTrainer::try_prepare

use crate::config::NshdConfig;
use crate::manifold::ManifoldLearner;
use crate::model::NshdModel;
use nshd_hdc::{AssociativeMemory, QuantizedMemory};
use nshd_nn::{Layer, Model};
use std::fmt;

/// The pipeline stage at which a static check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The [`NshdConfig`] itself (zero dimensions, out-of-range cut).
    Config,
    /// The truncated CNN feature extractor (shape inference or
    /// batch-norm eval-readiness).
    Extractor,
    /// The per-feature standardisation statistics.
    Scaler,
    /// The manifold learner Ψ.
    Manifold,
    /// The random-projection HD encoder.
    Projection,
    /// The associative class memory.
    Memory,
    /// A quantised deployment of the class memory.
    Quantizer,
    /// A multi-teacher HD-Glue ensemble (per-head projection widths
    /// versus the shared consensus memory).
    Ensemble,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Config => "config",
            Stage::Extractor => "extractor",
            Stage::Scaler => "scaler",
            Stage::Manifold => "manifold",
            Stage::Projection => "projection",
            Stage::Memory => "memory",
            Stage::Quantizer => "quantizer",
            Stage::Ensemble => "ensemble",
        };
        f.write_str(name)
    }
}

/// A structured static-analysis failure: which stage is misconfigured,
/// where in the feature stack (when the failure is inside the CNN), and
/// the dimensions that disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The offending pipeline stage.
    pub stage: Stage,
    /// Feature-layer index, when the failure sits inside the CNN stack.
    pub layer: Option<usize>,
    /// The dimensions the stage should have seen (empty when the check
    /// is not dimensional).
    pub expected: Vec<usize>,
    /// The dimensions it actually saw (empty when not dimensional).
    pub actual: Vec<usize>,
    /// Human-readable explanation of the violated invariant.
    pub detail: String,
}

impl AnalysisReport {
    fn new(stage: Stage, detail: impl Into<String>) -> Self {
        AnalysisReport {
            stage,
            layer: None,
            expected: Vec::new(),
            actual: Vec::new(),
            detail: detail.into(),
        }
    }

    fn dims(mut self, expected: &[usize], actual: &[usize]) -> Self {
        self.expected = expected.to_vec();
        self.actual = actual.to_vec();
        self
    }

    fn at_layer(mut self, layer: Option<usize>) -> Self {
        self.layer = layer;
        self
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline verification failed at {}", self.stage)?;
        if let Some(layer) = self.layer {
            write!(f, " (feature layer {layer})")?;
        }
        write!(f, ": {}", self.detail)?;
        if !self.expected.is_empty() || !self.actual.is_empty() {
            write!(f, " (expected {:?}, got {:?})", self.expected, self.actual)?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisReport {}

/// Checks the configuration's own invariants (positive dimensions).
fn verify_config(config: &NshdConfig) -> Result<(), AnalysisReport> {
    if config.hv_dim == 0 {
        return Err(AnalysisReport::new(Stage::Config, "hypervector dimension must be positive"));
    }
    if config.manifold_features == 0 {
        return Err(AnalysisReport::new(Stage::Config, "manifold width must be positive"));
    }
    if config.cut == 0 {
        return Err(AnalysisReport::new(Stage::Config, "cut must keep at least one feature layer"));
    }
    Ok(())
}

/// Checks the teacher CNN: the cut is in range, static shape inference
/// succeeds through the feature stack and the classifier, and every
/// layer is ready for evaluation-mode inference (batch-norm statistics
/// finite and non-negative). Returns the per-sample feature shape at
/// the cut point.
pub(crate) fn verify_extractor(teacher: &Model, cut: usize) -> Result<Vec<usize>, AnalysisReport> {
    if cut == 0 {
        return Err(AnalysisReport::new(Stage::Config, "cut must keep at least one feature layer"));
    }
    if cut > teacher.features.len() {
        return Err(AnalysisReport::new(
            Stage::Config,
            format!(
                "cut {cut} exceeds the {} feature layers of {}",
                teacher.features.len(),
                teacher.name
            ),
        )
        .dims(&[teacher.features.len()], &[cut]));
    }
    let (features, _classifier) = teacher.infer_shapes().map_err(|e| {
        AnalysisReport::new(Stage::Extractor, e.to_string()).at_layer(e.layer_index())
    })?;
    if let Err(msg) = teacher.features.eval_ready() {
        return Err(AnalysisReport::new(Stage::Extractor, msg));
    }
    if let Err(msg) = teacher.classifier.eval_ready() {
        return Err(AnalysisReport::new(Stage::Extractor, msg));
    }
    Ok(features.shape_at(cut).to_vec())
}

/// Checks a teacher/configuration pair before any training state exists
/// — the [`NshdTrainer`](crate::NshdTrainer) entry gate. Returns the
/// per-sample extractor output shape at the configured cut.
///
/// # Errors
///
/// Returns an [`AnalysisReport`] naming the first stage whose invariants
/// fail.
pub fn verify_teacher(teacher: &Model, config: &NshdConfig) -> Result<Vec<usize>, AnalysisReport> {
    verify_config(config)?;
    verify_extractor(teacher, config.cut)
}

/// Checks every hand-off downstream of the extractor: scaler width,
/// manifold input shape, projection columns, HD dimension versus memory
/// width, class count, and memory health.
pub(crate) fn verify_stages(
    feat_shape: &[usize],
    scaler_len: usize,
    manifold: Option<&ManifoldLearner>,
    encode_features: usize,
    encode_dim: usize,
    memory: &AssociativeMemory,
    num_classes: usize,
) -> Result<(), AnalysisReport> {
    let flat: usize = feat_shape.iter().product();
    if scaler_len != flat {
        return Err(AnalysisReport::new(
            Stage::Scaler,
            format!("scaler fitted on {scaler_len} features but the extractor produces {flat}"),
        )
        .dims(&[flat], &[scaler_len]));
    }
    let encode_width = match manifold {
        Some(m) => {
            if m.feat_shape() != feat_shape {
                return Err(AnalysisReport::new(
                    Stage::Manifold,
                    "manifold learner built for a different extractor output shape",
                )
                .dims(feat_shape, m.feat_shape()));
            }
            m.out_features()
        }
        None => flat,
    };
    if encode_features != encode_width {
        let source = if manifold.is_some() { "manifold" } else { "flattened extractor" };
        return Err(AnalysisReport::new(
            Stage::Projection,
            format!(
                "projection reads {encode_features} features but the {source} output is {encode_width} wide"
            ),
        )
        .dims(&[encode_width], &[encode_features]));
    }
    if memory.dim() != encode_dim {
        return Err(AnalysisReport::new(
            Stage::Memory,
            format!(
                "associative memory is {} wide but the encoder emits D = {encode_dim}",
                memory.dim()
            ),
        )
        .dims(&[encode_dim], &[memory.dim()]));
    }
    if memory.num_classes() == 0 {
        return Err(AnalysisReport::new(Stage::Memory, "memory holds no classes"));
    }
    if memory.num_classes() != num_classes {
        return Err(AnalysisReport::new(
            Stage::Memory,
            format!(
                "memory holds {} classes but the teacher predicts {num_classes}",
                memory.num_classes()
            ),
        )
        .dims(&[num_classes], &[memory.num_classes()]));
    }
    if !memory.is_finite() {
        return Err(AnalysisReport::new(Stage::Memory, "class memory contains non-finite values"));
    }
    Ok(())
}

/// Statically checks a fully-assembled [`NshdModel`]: teacher shapes and
/// eval-readiness, then every downstream dimension hand-off
/// (extractor → scaler → manifold → projection → memory).
///
/// # Errors
///
/// Returns an [`AnalysisReport`] naming the first stage whose invariants
/// fail.
pub fn verify_model(model: &NshdModel) -> Result<(), AnalysisReport> {
    let feat_shape = verify_teacher(model.teacher(), model.config())?;
    if model.config().use_manifold != model.manifold().is_some() {
        return Err(AnalysisReport::new(
            Stage::Manifold,
            if model.config().use_manifold {
                "config enables the manifold learner but the model has none"
            } else {
                "config disables the manifold learner but the model carries one"
            },
        ));
    }
    verify_stages(
        &feat_shape,
        model.scaler().len(),
        model.manifold(),
        model.projection().features(),
        model.projection().dim(),
        model.memory(),
        model.teacher().num_classes,
    )
}

/// One ensemble head's dimension summary, as checked by
/// [`verify_ensemble`]: the teacher's embedding width, the width the
/// head's projection actually reads, the HD dimension it emits, and the
/// weight it contributes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleDims {
    /// Flattened penultimate-layer embedding length of the teacher.
    pub embedding: usize,
    /// Feature width the head's random projection reads.
    pub features: usize,
    /// HD dimension the head's projection emits.
    pub dim: usize,
    /// The head's contribution weight in the fused bundle.
    pub weight: f32,
}

/// Statically checks a multi-teacher HD-Glue ensemble against its
/// shared consensus memory: at least one head; every head's projection
/// reading exactly its teacher's embedding width and emitting the
/// memory's HD dimension; finite non-negative weights with at least one
/// strictly positive; and a healthy memory (classes present, finite
/// accumulators). The failing head's index is reported through
/// [`AnalysisReport::layer`].
///
/// # Errors
///
/// Returns a [`Stage::Ensemble`] (or [`Stage::Memory`]) report naming
/// the first violated invariant.
pub fn verify_ensemble(
    heads: &[EnsembleDims],
    memory: &AssociativeMemory,
) -> Result<(), AnalysisReport> {
    if heads.is_empty() {
        return Err(AnalysisReport::new(Stage::Ensemble, "ensemble has no teacher heads"));
    }
    for (index, head) in heads.iter().enumerate() {
        if head.embedding == 0 {
            return Err(AnalysisReport::new(
                Stage::Ensemble,
                format!("head {index} has a zero-width embedding"),
            )
            .at_layer(Some(index)));
        }
        if head.features != head.embedding {
            return Err(AnalysisReport::new(
                Stage::Ensemble,
                format!(
                    "head {index}'s projection reads {} features but its teacher embeds {}",
                    head.features, head.embedding
                ),
            )
            .dims(&[head.embedding], &[head.features])
            .at_layer(Some(index)));
        }
        if head.dim != memory.dim() {
            return Err(AnalysisReport::new(
                Stage::Ensemble,
                format!(
                    "head {index} encodes D = {} but the consensus memory is {} wide",
                    head.dim,
                    memory.dim()
                ),
            )
            .dims(&[memory.dim()], &[head.dim])
            .at_layer(Some(index)));
        }
        if !head.weight.is_finite() || head.weight < 0.0 {
            return Err(AnalysisReport::new(
                Stage::Ensemble,
                format!("head {index} has invalid contribution weight {}", head.weight),
            )
            .at_layer(Some(index)));
        }
    }
    if !heads.iter().any(|h| h.weight > 0.0) {
        return Err(AnalysisReport::new(
            Stage::Ensemble,
            "every head has zero weight; the fused bundle would be empty",
        ));
    }
    if memory.num_classes() == 0 {
        return Err(AnalysisReport::new(Stage::Memory, "memory holds no classes"));
    }
    if !memory.is_finite() {
        return Err(AnalysisReport::new(Stage::Memory, "class memory contains non-finite values"));
    }
    Ok(())
}

/// Checks a quantised deployment against the full-precision memory it
/// was derived from: matching width and class count, and finite,
/// positive dequantisation scales.
///
/// # Errors
///
/// Returns a [`Stage::Quantizer`] report on the first violated range.
pub fn verify_quantized(
    memory: &AssociativeMemory,
    quantized: &QuantizedMemory,
) -> Result<(), AnalysisReport> {
    if quantized.dim() != memory.dim() {
        return Err(AnalysisReport::new(
            Stage::Quantizer,
            format!(
                "quantised memory is {} wide but the source memory is {}",
                quantized.dim(),
                memory.dim()
            ),
        )
        .dims(&[memory.dim()], &[quantized.dim()]));
    }
    if quantized.num_classes() != memory.num_classes() {
        return Err(AnalysisReport::new(
            Stage::Quantizer,
            format!(
                "quantised memory holds {} classes but the source memory holds {}",
                quantized.num_classes(),
                memory.num_classes()
            ),
        )
        .dims(&[memory.num_classes()], &[quantized.num_classes()]));
    }
    for (class, &scale) in quantized.scales().iter().enumerate() {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(AnalysisReport::new(
                Stage::Quantizer,
                format!("class {class} has invalid dequantisation scale {scale}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_hdc::BipolarHv;

    #[test]
    fn report_display_names_stage_layer_and_dims() {
        let report = AnalysisReport::new(Stage::Projection, "width disagreement")
            .dims(&[100], &[64])
            .at_layer(Some(7));
        let text = report.to_string();
        assert!(text.contains("projection"), "{text}");
        assert!(text.contains("feature layer 7"), "{text}");
        assert!(text.contains("expected [100], got [64]"), "{text}");
        assert!(text.contains("width disagreement"), "{text}");
    }

    #[test]
    fn config_checks_reject_zero_dims() {
        let bad = NshdConfig::new(3).with_hv_dim(0);
        let report = verify_config(&bad).unwrap_err();
        assert_eq!(report.stage, Stage::Config);
        assert!(report.to_string().contains("positive"));
        assert!(verify_config(&NshdConfig::new(3)).is_ok());
    }

    #[test]
    fn stage_checks_reject_each_mismatched_handoff() {
        let feat_shape = [4usize, 8, 8];
        let flat = 4 * 8 * 8;
        let memory = AssociativeMemory::new(10, 500);

        // Scaler fitted on a different width.
        let report =
            verify_stages(&feat_shape, flat + 1, None, flat, 500, &memory, 10).unwrap_err();
        assert_eq!(report.stage, Stage::Scaler);
        assert_eq!(
            (report.expected.as_slice(), report.actual.as_slice()),
            (&[flat][..], &[flat + 1][..])
        );

        // Projection columns disagree with the encode width.
        let report =
            verify_stages(&feat_shape, flat, None, flat - 1, 500, &memory, 10).unwrap_err();
        assert_eq!(report.stage, Stage::Projection);

        // Memory narrower than the encoder's D.
        let report = verify_stages(&feat_shape, flat, None, flat, 600, &memory, 10).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
        assert!(report.to_string().contains("600"));

        // Class-count disagreement.
        let report = verify_stages(&feat_shape, flat, None, flat, 500, &memory, 12).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
        assert!(report.to_string().contains("12"));

        // All hand-offs agreeing passes.
        assert!(verify_stages(&feat_shape, flat, None, flat, 500, &memory, 10).is_ok());
    }

    #[test]
    fn manifold_shape_mismatch_is_reported() {
        let mut rng = nshd_tensor::Rng::new(5);
        let manifold = ManifoldLearner::new(&[4, 4, 4], 16, &mut rng);
        let memory = AssociativeMemory::new(3, 200);
        let report =
            verify_stages(&[4, 8, 8], 4 * 8 * 8, Some(&manifold), 16, 200, &memory, 3).unwrap_err();
        assert_eq!(report.stage, Stage::Manifold);
        assert_eq!(report.expected, vec![4, 8, 8]);
        assert_eq!(report.actual, vec![4, 4, 4]);
        // Matching shapes pass, and the encode width becomes F̂.
        assert!(verify_stages(&[4, 4, 4], 4 * 4 * 4, Some(&manifold), 16, 200, &memory, 3).is_ok());
    }

    #[test]
    fn nonfinite_memory_is_rejected() {
        let mut memory = AssociativeMemory::new(2, 100);
        memory.class_mut(1)[3] = f32::NAN;
        let report = verify_stages(&[100], 100, None, 100, 100, &memory, 2).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
        assert!(report.to_string().contains("non-finite"));
    }

    #[test]
    fn ensemble_checks_cover_heads_weights_and_memory() {
        let memory = AssociativeMemory::new(4, 512);
        let good = EnsembleDims { embedding: 32, features: 32, dim: 512, weight: 1.0 };
        assert!(verify_ensemble(&[good, good], &memory).is_ok());

        // No heads at all.
        let report = verify_ensemble(&[], &memory).unwrap_err();
        assert_eq!(report.stage, Stage::Ensemble);

        // Projection width disagreeing with the teacher's embedding.
        let bad = EnsembleDims { features: 30, ..good };
        let report = verify_ensemble(&[good, bad], &memory).unwrap_err();
        assert_eq!(report.stage, Stage::Ensemble);
        assert_eq!(report.layer, Some(1));
        assert_eq!((report.expected.as_slice(), report.actual.as_slice()), (&[32][..], &[30][..]));

        // Head HD dimension disagreeing with the consensus memory.
        let bad = EnsembleDims { dim: 256, ..good };
        let report = verify_ensemble(&[bad], &memory).unwrap_err();
        assert_eq!(report.stage, Stage::Ensemble);
        assert!(report.to_string().contains("256"), "{report}");

        // Negative and all-zero weights.
        let bad = EnsembleDims { weight: -0.5, ..good };
        assert_eq!(verify_ensemble(&[bad], &memory).unwrap_err().stage, Stage::Ensemble);
        let zero = EnsembleDims { weight: 0.0, ..good };
        let report = verify_ensemble(&[zero, zero], &memory).unwrap_err();
        assert!(report.to_string().contains("zero weight"), "{report}");

        // Non-finite consensus memory.
        let mut sick = AssociativeMemory::new(4, 512);
        sick.class_mut(0)[0] = f32::INFINITY;
        let report = verify_ensemble(&[good], &sick).unwrap_err();
        assert_eq!(report.stage, Stage::Memory);
    }

    #[test]
    fn quantized_checks_cover_dims_classes_and_scales() {
        let mut memory = AssociativeMemory::new(3, 64);
        let hv = BipolarHv::new(vec![1i8; 64]);
        for c in 0..3 {
            memory.bundle(c, &hv);
        }
        let quantized = QuantizedMemory::from_memory(&memory);
        assert!(verify_quantized(&memory, &quantized).is_ok());

        let other = AssociativeMemory::new(3, 32);
        let report = verify_quantized(&other, &quantized).unwrap_err();
        assert_eq!(report.stage, Stage::Quantizer);

        let other = AssociativeMemory::new(4, 64);
        let report = verify_quantized(&other, &quantized).unwrap_err();
        assert_eq!(report.stage, Stage::Quantizer);
        assert!(report.to_string().contains("classes"));
    }
}
