//! Overhead guard for the `nshd-obs` instrumentation of the engine
//! pipeline: recording spans must stay cheap relative to the work they
//! wrap, and the disabled path must be effectively free.

use nshd_core::{NshdConfig, NshdEngine, NshdModel};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_nn::{
    fit, ActKind, Activation, Adam, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential,
    TrainConfig,
};
use nshd_obs::{clock, Recorder};
use nshd_tensor::{Rng, Tensor};
use std::time::Duration;

fn tiny_engine() -> (NshdEngine, Vec<Tensor>) {
    let (mut train, mut test) = SynthSpec::synth10(33).with_sizes(40, 16).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(3);
    let features = Sequential::new()
        .with(Conv2d::new(3, 4, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, &mut rng));
    let mut teacher = Model {
        name: "obs-tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    };
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut Adam::new(2e-3, 1e-5),
        &TrainConfig { epochs: 1, batch_size: 16, seed: 5, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(3)
        .with_hv_dim(256)
        .with_manifold(false)
        .with_retrain_epochs(1)
        .with_seed(11);
    let model = NshdModel::train(teacher, &train, cfg);
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let engine = NshdEngine::new(&model).expect("tiny model passes verification");
    (engine, images)
}

#[test]
fn recording_overhead_stays_within_budget() {
    overhead_stays_within_budget(1);
}

/// Same bound with the parallel kernels engaged: per-thread `par` child
/// spans (one per worker chunk, recorded cross-thread) must not blow
/// the instrumentation budget either.
#[test]
fn recording_overhead_stays_within_budget_with_parallel_kernels() {
    nshd_tensor::par::with_threads(4, || overhead_stays_within_budget(4));
}

fn overhead_stays_within_budget(threads: usize) {
    let (engine, images) = tiny_engine();
    const ROUNDS: usize = 8;

    // Warm up allocators and caches on the disabled path.
    let warm = engine.predict_batch(&images);
    assert_eq!(warm.len(), images.len());

    // Disabled: no recorder installed anywhere.
    let t0 = clock::now();
    for _ in 0..ROUNDS {
        std::hint::black_box(engine.predict_batch(&images));
    }
    let disabled = t0.elapsed();

    // Enabled: a live recorder aggregating every span.
    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());
    let t1 = clock::now();
    for _ in 0..ROUNDS {
        std::hint::black_box(engine.predict_batch(&images));
    }
    let enabled = t1.elapsed();
    nshd_obs::install(previous);

    // Span aggregation is a handful of map updates per stage next to
    // conv + GEMM work; 8x + 100ms is a deliberately generous ceiling
    // that still catches pathological regressions (per-span sorting,
    // unbounded allocation, lock convoys) on noisy CI machines.
    assert!(
        enabled <= disabled * 8 + Duration::from_millis(100),
        "instrumentation overhead too high at {threads} worker(s): \
         enabled {enabled:?} vs disabled {disabled:?}"
    );

    // The enabled runs actually recorded the pipeline stages.
    let report = recorder.report();
    for stage in ["extract", "encode", "score"] {
        let node = report.find(stage).unwrap_or_else(|| panic!("missing {stage} span"));
        assert_eq!(node.stats.count, ROUNDS as u64, "{stage} count");
        assert!(node.gflops() >= 0.0);
    }
    // Encode and score carry FLOP attribution (GEMM children).
    assert!(report.find("encode").expect("encode").cum_flops > 0, "encode reported no FLOPs");
    assert!(report.find("score").expect("score").cum_flops > 0, "score reported no FLOPs");
}
