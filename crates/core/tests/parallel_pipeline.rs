//! End-to-end cross-thread determinism: the full NSHD pipeline must
//! produce bit-identical results at any `nshd_tensor::par` worker
//! count.
//!
//! The kernel-level guarantee (disjoint output rows + serial per-row
//! accumulation order) is proven in `crates/tensor/tests/determinism.rs`;
//! this suite proves it composes through the layers that ride on those
//! kernels: conv2d forward *and* backward, the batched HD encoder, the
//! micro-batched trainer reduction, and `NshdEngine::predict_batch`.

use nshd_core::{NshdConfig, NshdEngine, NshdModel};
use nshd_data::{normalize_pair, SynthSpec};
use nshd_hdc::RandomProjection;
use nshd_nn::{
    fit, ActKind, Activation, Adam, Conv2d, Flatten, Layer, Linear, MaxPool2d, Mode, Model,
    Sequential, TrainConfig,
};
use nshd_tensor::{par, Rng, Tensor};

const THREADS: [usize; 3] = [2, 4, 7];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Conv2d forward (training mode) and backward, rebuilt from the same
/// seed per run so layer state is identical; the conv GEMMs sit well
/// above the parallel FLOP threshold at this size.
#[test]
fn conv2d_forward_and_backward_are_thread_invariant() {
    let run = || {
        let mut rng = Rng::new(41);
        let mut conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn([4, 3, 32, 32], |i| ((i % 113) as f32 - 56.0) / 56.0);
        let y = conv.forward(&x, Mode::Train);
        let grad = Tensor::from_fn(y.dims(), |i| ((i % 29) as f32 - 14.0) / 14.0);
        let dx = conv.backward(&grad);
        let grads: Vec<Vec<u32>> = conv.params().iter().map(|p| bits(&p.grad)).collect();
        (bits(&y), bits(&dx), grads)
    };
    let baseline = par::with_threads(1, run);
    for t in THREADS {
        let parallel = par::with_threads(t, run);
        assert_eq!(baseline.0, parallel.0, "conv2d forward diverged at {t} workers");
        assert_eq!(baseline.1, parallel.1, "conv2d input grad diverged at {t} workers");
        assert_eq!(baseline.2, parallel.2, "conv2d param grads diverged at {t} workers");
    }
}

/// Batched HD encode: both the raw projection GEMM and the
/// sign-and-pack stage (256 × 2048 crosses the pack threshold so
/// `par_map` engages) must be worker-count independent.
#[test]
fn batch_encoder_is_thread_invariant() {
    let proj = RandomProjection::new(64, 2_048, 7);
    let enc = proj.batch_encoder();
    let mut rng = Rng::new(13);
    let values = Tensor::from_fn([256, 64], |_| rng.uniform_in(-3.0, 3.0));

    let raw_baseline = par::with_threads(1, || bits(&enc.encode_raw_batch(&values)));
    let hv_baseline = par::with_threads(1, || enc.encode_batch(&values));
    // The packed hypervectors must also agree with the one-sample path.
    for (i, hv) in hv_baseline.iter().enumerate() {
        let row = &values.as_slice()[i * 64..(i + 1) * 64];
        assert_eq!(*hv, proj.encode(row), "batch row {i} != single-sample encode");
    }
    for t in THREADS {
        let raw = par::with_threads(t, || bits(&enc.encode_raw_batch(&values)));
        let hvs = par::with_threads(t, || enc.encode_batch(&values));
        assert_eq!(raw_baseline, raw, "encode_raw_batch diverged at {t} workers");
        assert_eq!(hv_baseline, hvs, "encode_batch diverged at {t} workers");
    }
}

fn small_model(rng: &mut Rng) -> Model {
    let features = Sequential::new()
        .with(Conv2d::new(3, 8, 3, 1, 1, rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier = Sequential::new().with(Flatten::new()).with(Linear::new(8 * 16 * 16, 10, rng));
    Model {
        name: "par-pipeline".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    }
}

/// Micro-batched gradient accumulation (`grad_chunk`): the fixed
/// chunk boundaries and ascending fixed-order reduction make the final
/// trained weights bit-identical at every worker count.
#[test]
fn trainer_grad_chunk_is_thread_invariant() {
    let (train, _test) = SynthSpec::synth10(19).with_sizes(32, 8).generate();
    let run = || {
        let mut rng = Rng::new(5);
        let mut model = small_model(&mut rng);
        fit(
            &mut model,
            train.images(),
            train.labels(),
            &mut Adam::new(1e-3, 1e-5),
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                seed: 23,
                grad_chunk: Some(4),
                ..TrainConfig::default()
            },
        );
        let weights: Vec<Vec<u32>> = model.params_mut().iter().map(|p| bits(&p.value)).collect();
        weights
    };
    let baseline = par::with_threads(1, run);
    for t in THREADS {
        let parallel = par::with_threads(t, run);
        assert_eq!(baseline, parallel, "trained weights diverged at {t} workers");
    }
}

/// The full engine: CNN feature extraction, HD encode and associative
/// scoring, batched. Predictions must match at every worker count.
#[test]
fn engine_predict_batch_is_thread_invariant() {
    let (mut train, mut test) = SynthSpec::synth10(33).with_sizes(40, 16).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(3);
    let features = Sequential::new()
        .with(Conv2d::new(3, 4, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, &mut rng));
    let mut teacher = Model {
        name: "par-engine".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    };
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut Adam::new(2e-3, 1e-5),
        &TrainConfig { epochs: 1, batch_size: 16, seed: 5, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(3)
        .with_hv_dim(256)
        .with_manifold(false)
        .with_retrain_epochs(1)
        .with_seed(11);
    let model = NshdModel::train(teacher, &train, cfg);
    let engine = NshdEngine::new(&model).expect("tiny model passes verification");
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();

    let baseline = par::with_threads(1, || engine.predict_batch(&images));
    assert_eq!(baseline.len(), images.len());
    for t in THREADS {
        let parallel = par::with_threads(t, || engine.predict_batch(&images));
        assert_eq!(baseline, parallel, "predict_batch diverged at {t} workers");
    }
}
