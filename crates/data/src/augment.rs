//! Light training-time augmentation (horizontal flips and integer
//! shifts) and input corruption for robustness evaluation (gaussian
//! noise, salt-and-pepper, channel dropout).

use crate::dataset::ImageDataset;
use crate::image::{CHANNELS, IMAGE_SIZE};
use nshd_tensor::{Rng, Tensor};

/// Augmentation policy applied per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Augment {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Maximum absolute shift in pixels (uniform, both axes; vacated
    /// pixels replicate the edge).
    pub max_shift: usize,
}

impl Default for Augment {
    fn default() -> Self {
        Augment { flip_prob: 0.5, max_shift: 2 }
    }
}

impl Augment {
    /// Returns an augmented copy of the dataset (labels unchanged).
    pub fn apply(&self, dataset: &ImageDataset, rng: &mut Rng) -> ImageDataset {
        let n = dataset.len();
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let src = dataset.images().as_slice();
        let mut out = Tensor::zeros([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        let dst = out.as_mut_slice();
        for b in 0..n {
            let flip = rng.chance(self.flip_prob);
            let (dy, dx) = if self.max_shift > 0 {
                let range = 2 * self.max_shift + 1;
                (
                    rng.below(range) as isize - self.max_shift as isize,
                    rng.below(range) as isize - self.max_shift as isize,
                )
            } else {
                (0, 0)
            };
            for c in 0..CHANNELS {
                let base = (b * CHANNELS + c) * plane;
                for y in 0..IMAGE_SIZE {
                    for x in 0..IMAGE_SIZE {
                        let sx = if flip { IMAGE_SIZE - 1 - x } else { x };
                        let sy = (y as isize - dy).clamp(0, IMAGE_SIZE as isize - 1) as usize;
                        let sx = (sx as isize - dx).clamp(0, IMAGE_SIZE as isize - 1) as usize;
                        dst[base + y * IMAGE_SIZE + x] = src[base + sy * IMAGE_SIZE + sx];
                    }
                }
            }
        }
        ImageDataset::new(out, dataset.labels().to_vec(), dataset.num_classes())
    }
}

/// Input-corruption policy for robustness evaluation: models sensor
/// noise and partial input failure at inference time, the input-side
/// counterpart of the memory fault injection in `nshd-hdc`.
///
/// All three corruptions are applied per sample, in the order gaussian →
/// salt-and-pepper → channel dropout. A policy with every field zero is
/// the identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Corruption {
    /// Standard deviation of additive gaussian noise (0 disables).
    pub gaussian_std: f32,
    /// Per-pixel probability of being forced to the image's minimum or
    /// maximum value ("pepper" / "salt", equally likely).
    pub salt_pepper_prob: f32,
    /// Per-channel probability of the whole channel being zeroed
    /// (a dead sensor plane).
    pub channel_dropout_prob: f32,
}

impl Default for Corruption {
    /// A mild corruption level useful as a smoke-test default.
    fn default() -> Self {
        Corruption { gaussian_std: 0.1, salt_pepper_prob: 0.01, channel_dropout_prob: 0.0 }
    }
}

impl Corruption {
    /// The identity policy (no corruption).
    pub fn none() -> Self {
        Corruption { gaussian_std: 0.0, salt_pepper_prob: 0.0, channel_dropout_prob: 0.0 }
    }

    fn validate(&self) {
        assert!(
            self.gaussian_std >= 0.0,
            "gaussian_std must be non-negative, got {}",
            self.gaussian_std
        );
        assert!(
            (0.0..=1.0).contains(&self.salt_pepper_prob),
            "salt_pepper_prob must be in [0, 1], got {}",
            self.salt_pepper_prob
        );
        assert!(
            (0.0..=1.0).contains(&self.channel_dropout_prob),
            "channel_dropout_prob must be in [0, 1], got {}",
            self.channel_dropout_prob
        );
    }

    /// Returns a corrupted copy of one CHW image.
    ///
    /// Salt and pepper levels are the image's own value range, so the
    /// policy behaves identically on raw `[0, 1]` and normalised data.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn apply_image(&self, image: &Tensor, rng: &mut Rng) -> Tensor {
        self.validate();
        let mut out = image.clone();
        let dims = out.dims().to_vec();
        assert_eq!(dims.len(), 3, "expected a CHW image, got {dims:?}");
        let (lo, hi) = image
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let plane = dims[1] * dims[2];
        let data = out.as_mut_slice();
        if self.gaussian_std > 0.0 {
            for v in data.iter_mut() {
                *v += rng.normal_with(0.0, self.gaussian_std);
            }
        }
        if self.salt_pepper_prob > 0.0 {
            for v in data.iter_mut() {
                if rng.chance(self.salt_pepper_prob) {
                    *v = if rng.chance(0.5) { hi } else { lo };
                }
            }
        }
        if self.channel_dropout_prob > 0.0 {
            for c in 0..dims[0] {
                if rng.chance(self.channel_dropout_prob) {
                    data[c * plane..(c + 1) * plane].fill(0.0);
                }
            }
        }
        out
    }

    /// Returns a corrupted copy of the dataset (labels unchanged).
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn apply(&self, dataset: &ImageDataset, rng: &mut Rng) -> ImageDataset {
        self.validate();
        let n = dataset.len();
        let mut out = Tensor::zeros([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        let plane = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        for b in 0..n {
            let (img, _) = dataset.sample(b);
            let corrupted = self.apply_image(&img, rng);
            out.as_mut_slice()[b * plane..(b + 1) * plane].copy_from_slice(corrupted.as_slice());
        }
        ImageDataset::new(out, dataset.labels().to_vec(), dataset.num_classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthSpec;

    #[test]
    fn no_op_policy_is_identity_half_the_time() {
        let (train, _) = SynthSpec::synth10(1).with_sizes(10, 4).generate();
        let policy = Augment { flip_prob: 0.0, max_shift: 0 };
        let out = policy.apply(&train, &mut Rng::new(1));
        assert_eq!(out.images().as_slice(), train.images().as_slice());
        assert_eq!(out.labels(), train.labels());
    }

    #[test]
    fn full_flip_mirrors_pixels() {
        let (train, _) = SynthSpec::synth10(2).with_sizes(4, 2).generate();
        let policy = Augment { flip_prob: 1.0, max_shift: 0 };
        let out = policy.apply(&train, &mut Rng::new(2));
        let (orig, _) = train.sample(0);
        let (flip, _) = out.sample(0);
        for c in 0..3 {
            for y in 0..IMAGE_SIZE {
                for x in 0..IMAGE_SIZE {
                    assert_eq!(
                        orig.at(&[c, y, x]),
                        flip.at(&[c, y, IMAGE_SIZE - 1 - x]),
                        "({c},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn no_corruption_is_identity() {
        let (train, _) = SynthSpec::synth10(4).with_sizes(6, 2).generate();
        let out = Corruption::none().apply(&train, &mut Rng::new(4));
        assert_eq!(out.images().as_slice(), train.images().as_slice());
        assert_eq!(out.labels(), train.labels());
    }

    #[test]
    fn salt_pepper_at_full_rate_pins_every_pixel_to_the_range() {
        let (train, _) = SynthSpec::synth10(5).with_sizes(2, 2).generate();
        let (img, _) = train.sample(0);
        let (lo, hi) = img
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let policy = Corruption { salt_pepper_prob: 1.0, ..Corruption::none() };
        let out = policy.apply_image(&img, &mut Rng::new(5));
        assert!(out.as_slice().iter().all(|&v| v == lo || v == hi));
        // Both extremes appear (probability ~2^-3072 otherwise).
        assert!(out.as_slice().contains(&lo) && out.as_slice().contains(&hi));
    }

    #[test]
    fn channel_dropout_at_full_rate_zeroes_everything() {
        let (train, _) = SynthSpec::synth10(6).with_sizes(2, 2).generate();
        let (img, _) = train.sample(0);
        let policy = Corruption { channel_dropout_prob: 1.0, ..Corruption::none() };
        let out = policy.apply_image(&img, &mut Rng::new(6));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gaussian_noise_perturbs_with_bounded_magnitude() {
        let (train, _) = SynthSpec::synth10(7).with_sizes(2, 2).generate();
        let (img, _) = train.sample(0);
        let policy = Corruption { gaussian_std: 0.05, ..Corruption::none() };
        let out = policy.apply_image(&img, &mut Rng::new(7));
        let diffs: Vec<f32> =
            out.as_slice().iter().zip(img.as_slice()).map(|(a, b)| a - b).collect();
        assert!(diffs.iter().any(|&d| d != 0.0), "noise changed nothing");
        let mean_abs = diffs.iter().map(|d| d.abs()).sum::<f32>() / diffs.len() as f32;
        // E|N(0, 0.05)| ≈ 0.04; allow generous slack.
        assert!(mean_abs > 0.01 && mean_abs < 0.15, "mean |noise| = {mean_abs}");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let (train, _) = SynthSpec::synth10(8).with_sizes(4, 2).generate();
        let policy =
            Corruption { gaussian_std: 0.1, salt_pepper_prob: 0.05, channel_dropout_prob: 0.2 };
        let a = policy.apply(&train, &mut Rng::new(9));
        let b = policy.apply(&train, &mut Rng::new(9));
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        let c = policy.apply(&train, &mut Rng::new(10));
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    #[should_panic(expected = "salt_pepper_prob")]
    fn out_of_range_probability_panics() {
        let (train, _) = SynthSpec::synth10(11).with_sizes(1, 1).generate();
        let policy = Corruption { salt_pepper_prob: 1.5, ..Corruption::none() };
        policy.apply(&train, &mut Rng::new(11));
    }

    #[test]
    fn shift_preserves_value_set_approximately() {
        let (train, _) = SynthSpec::synth10(3).with_sizes(4, 2).generate();
        let policy = Augment { flip_prob: 0.0, max_shift: 2 };
        let out = policy.apply(&train, &mut Rng::new(3));
        // Same label set, same shape; content moved.
        assert_eq!(out.labels(), train.labels());
        assert_eq!(out.images().dims(), train.images().dims());
    }
}
