//! Light training-time augmentation: horizontal flips and integer shifts.

use crate::dataset::ImageDataset;
use crate::image::{CHANNELS, IMAGE_SIZE};
use nshd_tensor::{Rng, Tensor};

/// Augmentation policy applied per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Augment {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Maximum absolute shift in pixels (uniform, both axes; vacated
    /// pixels replicate the edge).
    pub max_shift: usize,
}

impl Default for Augment {
    fn default() -> Self {
        Augment { flip_prob: 0.5, max_shift: 2 }
    }
}

impl Augment {
    /// Returns an augmented copy of the dataset (labels unchanged).
    pub fn apply(&self, dataset: &ImageDataset, rng: &mut Rng) -> ImageDataset {
        let n = dataset.len();
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let src = dataset.images().as_slice();
        let mut out = Tensor::zeros([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        let dst = out.as_mut_slice();
        for b in 0..n {
            let flip = rng.chance(self.flip_prob);
            let (dy, dx) = if self.max_shift > 0 {
                let range = 2 * self.max_shift + 1;
                (
                    rng.below(range) as isize - self.max_shift as isize,
                    rng.below(range) as isize - self.max_shift as isize,
                )
            } else {
                (0, 0)
            };
            for c in 0..CHANNELS {
                let base = (b * CHANNELS + c) * plane;
                for y in 0..IMAGE_SIZE {
                    for x in 0..IMAGE_SIZE {
                        let sx = if flip { IMAGE_SIZE - 1 - x } else { x };
                        let sy = (y as isize - dy).clamp(0, IMAGE_SIZE as isize - 1) as usize;
                        let sx = (sx as isize - dx).clamp(0, IMAGE_SIZE as isize - 1) as usize;
                        dst[base + y * IMAGE_SIZE + x] = src[base + sy * IMAGE_SIZE + sx];
                    }
                }
            }
        }
        ImageDataset::new(out, dataset.labels().to_vec(), dataset.num_classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthSpec;

    #[test]
    fn no_op_policy_is_identity_half_the_time() {
        let (train, _) = SynthSpec::synth10(1).with_sizes(10, 4).generate();
        let policy = Augment { flip_prob: 0.0, max_shift: 0 };
        let out = policy.apply(&train, &mut Rng::new(1));
        assert_eq!(out.images().as_slice(), train.images().as_slice());
        assert_eq!(out.labels(), train.labels());
    }

    #[test]
    fn full_flip_mirrors_pixels() {
        let (train, _) = SynthSpec::synth10(2).with_sizes(4, 2).generate();
        let policy = Augment { flip_prob: 1.0, max_shift: 0 };
        let out = policy.apply(&train, &mut Rng::new(2));
        let (orig, _) = train.sample(0);
        let (flip, _) = out.sample(0);
        for c in 0..3 {
            for y in 0..IMAGE_SIZE {
                for x in 0..IMAGE_SIZE {
                    assert_eq!(
                        orig.at(&[c, y, x]),
                        flip.at(&[c, y, IMAGE_SIZE - 1 - x]),
                        "({c},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn shift_preserves_value_set_approximately() {
        let (train, _) = SynthSpec::synth10(3).with_sizes(4, 2).generate();
        let policy = Augment { flip_prob: 0.0, max_shift: 2 };
        let out = policy.apply(&train, &mut Rng::new(3));
        // Same label set, same shape; content moved.
        assert_eq!(out.labels(), train.labels());
        assert_eq!(out.images().dims(), train.images().dims());
    }
}
