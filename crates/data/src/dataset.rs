//! In-memory labelled image datasets and the `Synth10`/`Synth100`
//! generators.

use crate::image::{CHANNELS, IMAGE_SIZE};
use crate::synth::{render_sample, SynthParams};
use nshd_tensor::{Rng, Tensor};

/// A labelled image dataset held in memory as one `N×3×32×32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageDataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl ImageDataset {
    /// Wraps an image tensor and labels.
    ///
    /// # Panics
    ///
    /// Panics if the batch size and label count disagree, or a label is out
    /// of range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.dims()[0], labels.len(), "image/label count mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        ImageDataset { images, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The image tensor (`N×3×32×32`).
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Mutable image tensor (used by normalisation).
    pub fn images_mut(&mut self) -> &mut Tensor {
        &mut self.images
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One sample as a `3×32×32` tensor plus its label.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> (Tensor, usize) {
        (self.images.batch_item(index), self.labels[index])
    }

    /// A new dataset containing only the first `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn take(&self, n: usize) -> ImageDataset {
        assert!(n <= self.len());
        let items: Vec<Tensor> = (0..n).map(|i| self.images.batch_item(i)).collect();
        let images = if n == 0 {
            Tensor::zeros([0, CHANNELS, IMAGE_SIZE, IMAGE_SIZE])
        } else {
            Tensor::stack(&items).expect("non-empty")
        };
        ImageDataset::new(images, self.labels[..n].to_vec(), self.num_classes)
    }
}

/// Configuration for a synthetic dataset pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Number of classes (10 for `Synth10`, 100 for `Synth100`).
    pub num_classes: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Seed controlling every random choice.
    pub seed: u64,
    /// Rendering parameters.
    pub params: SynthParams,
}

impl SynthSpec {
    /// A `Synth10` spec at the default experiment scale.
    pub fn synth10(seed: u64) -> Self {
        SynthSpec {
            num_classes: 10,
            train_size: 1500,
            test_size: 400,
            seed,
            params: SynthParams::default(),
        }
    }

    /// A `Synth100` spec (more classes, same pixel budget).
    pub fn synth100(seed: u64) -> Self {
        SynthSpec {
            num_classes: 100,
            train_size: 3000,
            test_size: 800,
            seed,
            params: SynthParams::default(),
        }
    }

    /// Returns a copy with different dataset sizes — the knob tests and
    /// benches use to stay fast.
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }

    /// Generates the `(train, test)` dataset pair.
    ///
    /// Labels are balanced round-robin so every class appears; the test
    /// stream is independent of the training stream.
    pub fn generate(&self) -> (ImageDataset, ImageDataset) {
        let mut rng = Rng::new(self.seed);
        let mut train_rng = rng.fork(1);
        let mut test_rng = rng.fork(2);
        let train = generate_split(self.num_classes, self.train_size, &self.params, &mut train_rng);
        let test = generate_split(self.num_classes, self.test_size, &self.params, &mut test_rng);
        (train, test)
    }
}

fn generate_split(
    num_classes: usize,
    size: usize,
    params: &SynthParams,
    rng: &mut Rng,
) -> ImageDataset {
    let mut images = Tensor::zeros([size, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
    let mut labels = Vec::with_capacity(size);
    let plane = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
    // Round-robin class assignment, then shuffle order.
    let mut order: Vec<usize> = (0..size).collect();
    rng.shuffle(&mut order);
    for (slot, &i) in order.iter().enumerate() {
        let class = i % num_classes;
        let img = render_sample(class, num_classes, params, rng);
        images.write_slice(slot * plane, img.as_slice());
        labels.push(class);
    }
    // labels currently follow `order`; rebuild to match slots.
    let mut slot_labels = vec![0usize; size];
    for (slot, &i) in order.iter().enumerate() {
        slot_labels[slot] = i % num_classes;
    }
    ImageDataset::new(images, slot_labels, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_balanced_classes() {
        let (train, test) = SynthSpec::synth10(1).with_sizes(100, 40).generate();
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 40);
        let mut counts = vec![0usize; 10];
        for &l in train.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthSpec::synth10(9).with_sizes(20, 10).generate();
        let b = SynthSpec::synth10(9).with_sizes(20, 10).generate();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = SynthSpec::synth10(10).with_sizes(20, 10).generate();
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn train_and_test_are_different_samples() {
        let (train, test) = SynthSpec::synth10(3).with_sizes(20, 20).generate();
        assert_ne!(train.images().as_slice(), test.images().as_slice());
    }

    #[test]
    fn sample_and_take() {
        let (train, _) = SynthSpec::synth10(4).with_sizes(12, 4).generate();
        let (img, label) = train.sample(3);
        assert_eq!(img.dims(), &[3, 32, 32]);
        assert!(label < 10);
        let head = train.take(5);
        assert_eq!(head.len(), 5);
        assert_eq!(head.labels(), &train.labels()[..5]);
        assert_eq!(head.sample(2).0, train.sample(2).0);
    }

    #[test]
    fn synth100_has_hundred_classes() {
        let (train, _) = SynthSpec::synth100(5).with_sizes(200, 10).generate();
        assert_eq!(train.num_classes(), 100);
        let distinct: std::collections::HashSet<_> = train.labels().iter().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn label_count_mismatch_panics() {
        ImageDataset::new(Tensor::zeros([2, 3, 32, 32]), vec![0], 10);
    }
}
