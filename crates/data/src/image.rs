//! Small RGB image type used by the synthetic dataset generators.

use nshd_tensor::Tensor;

/// Image edge length (CIFAR-compatible 32×32).
pub const IMAGE_SIZE: usize = 32;

/// Number of colour channels.
pub const CHANNELS: usize = 3;

/// A 3×32×32 RGB image with `f32` intensities, nominally in `[0, 1]`
/// before normalisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    pixels: Vec<f32>,
}

impl Image {
    /// Creates a black image.
    pub fn new() -> Self {
        Image { pixels: vec![0.0; CHANNELS * IMAGE_SIZE * IMAGE_SIZE] }
    }

    /// Creates an image filled with an RGB colour.
    pub fn filled(rgb: [f32; 3]) -> Self {
        let mut img = Image::new();
        for (c, &v) in rgb.iter().enumerate() {
            let plane =
                &mut img.pixels[c * IMAGE_SIZE * IMAGE_SIZE..(c + 1) * IMAGE_SIZE * IMAGE_SIZE];
            plane.fill(v);
        }
        img
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        assert!(c < CHANNELS && y < IMAGE_SIZE && x < IMAGE_SIZE);
        self.pixels[(c * IMAGE_SIZE + y) * IMAGE_SIZE + x]
    }

    /// Sets one pixel channel.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        assert!(c < CHANNELS && y < IMAGE_SIZE && x < IMAGE_SIZE);
        self.pixels[(c * IMAGE_SIZE + y) * IMAGE_SIZE + x] = v;
    }

    /// Alpha-blends an RGB colour into the pixel at `(y, x)` with coverage
    /// `alpha ∈ [0, 1]`.
    pub fn blend(&mut self, y: usize, x: usize, rgb: [f32; 3], alpha: f32) {
        let a = alpha.clamp(0.0, 1.0);
        for (c, &v) in rgb.iter().enumerate() {
            let old = self.get(c, y, x);
            self.set(c, y, x, old * (1.0 - a) + v * a);
        }
    }

    /// The raw CHW pixel buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable raw pixel buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Converts into a `3×32×32` tensor.
    pub fn into_tensor(self) -> Tensor {
        Tensor::from_vec(self.pixels, [CHANNELS, IMAGE_SIZE, IMAGE_SIZE])
            .expect("image buffer matches shape")
    }

    /// Clamps all intensities to `[0, 1]`.
    pub fn clamp(&mut self) {
        for p in &mut self.pixels {
            *p = p.clamp(0.0, 1.0);
        }
    }

    /// Writes the image as a binary PPM (P6) file — handy for visually
    /// inspecting synthetic samples without an image crate.
    ///
    /// Intensities are clamped to `[0, 1]` on output.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_ppm<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "P6 {IMAGE_SIZE} {IMAGE_SIZE} 255")?;
        let mut row = [0u8; 3 * IMAGE_SIZE];
        for y in 0..IMAGE_SIZE {
            for x in 0..IMAGE_SIZE {
                for c in 0..CHANNELS {
                    row[x * 3 + c] = (self.get(c, y, x).clamp(0.0, 1.0) * 255.0).round() as u8;
                }
            }
            writer.write_all(&row)?;
        }
        Ok(())
    }
}

impl Default for Image {
    fn default() -> Self {
        Image::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_image_has_uniform_channels() {
        let img = Image::filled([0.2, 0.5, 0.9]);
        assert_eq!(img.get(0, 10, 10), 0.2);
        assert_eq!(img.get(1, 0, 31), 0.5);
        assert_eq!(img.get(2, 31, 0), 0.9);
    }

    #[test]
    fn blend_interpolates() {
        let mut img = Image::filled([0.0, 0.0, 0.0]);
        img.blend(5, 5, [1.0, 1.0, 1.0], 0.25);
        assert!((img.get(0, 5, 5) - 0.25).abs() < 1e-6);
        img.blend(5, 5, [1.0, 1.0, 1.0], 1.0);
        assert_eq!(img.get(0, 5, 5), 1.0);
    }

    #[test]
    fn into_tensor_has_chw_shape() {
        let t = Image::new().into_tensor();
        assert_eq!(t.dims(), &[3, 32, 32]);
    }

    #[test]
    fn ppm_output_has_expected_header_and_size() {
        let mut img = Image::filled([1.0, 0.5, 0.0]);
        img.set(0, 0, 0, 2.0); // clamped on output
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).expect("in-memory write");
        let header = b"P6 32 32 255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 3 * 32 * 32);
        // First pixel: clamped red channel.
        assert_eq!(buf[header.len()], 255);
    }

    #[test]
    fn clamp_bounds_values() {
        let mut img = Image::new();
        img.set(0, 0, 0, 2.0);
        img.set(1, 0, 0, -1.0);
        img.clamp();
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(1, 0, 0), 0.0);
    }
}
