//! # nshd-data
//!
//! Procedural synthetic image datasets for the NSHD workspace.
//!
//! The NSHD paper evaluates on CIFAR-10/100, which cannot be fetched in
//! this environment. This crate substitutes **Synth10**/**Synth100**:
//! 32×32 RGB scenes generated from per-class shape×palette programs with
//! heavy per-sample jitter (pose, hue, clutter, noise). The substitution
//! preserves the paper's central contrast — class identity lives in
//! mid-level visual structure that convolutions learn and raw-pixel HD
//! encodings miss (see DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use nshd_data::{normalize_pair, SynthSpec};
//!
//! let (mut train, mut test) = SynthSpec::synth10(42).with_sizes(64, 16).generate();
//! normalize_pair(&mut train, &mut test);
//! assert_eq!(train.images().dims(), &[64, 3, 32, 32]);
//! assert_eq!(train.num_classes(), 10);
//! ```

#![warn(missing_docs)]

mod augment;
mod dataset;
mod image;
mod normalize;
mod synth;

pub use augment::{Augment, Corruption};
pub use dataset::{ImageDataset, SynthSpec};
pub use image::{Image, CHANNELS, IMAGE_SIZE};
pub use normalize::{normalize_pair, Normalizer};
pub use synth::{render_sample, SynthParams};
