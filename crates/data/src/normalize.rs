//! Per-channel normalisation, fitted on the training split.

use crate::dataset::ImageDataset;
use crate::image::{CHANNELS, IMAGE_SIZE};

/// Per-channel mean/standard-deviation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    /// Channel means.
    pub mean: [f32; CHANNELS],
    /// Channel standard deviations.
    pub std: [f32; CHANNELS],
}

impl Normalizer {
    /// Fits channel statistics on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(dataset: &ImageDataset) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a normalizer on an empty dataset");
        let x = dataset.images().as_slice();
        let n = dataset.len();
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let mut mean = [0.0f32; CHANNELS];
        let mut std = [0.0f32; CHANNELS];
        let count = (n * plane) as f32;
        for (c, m) in mean.iter_mut().enumerate() {
            let mut s = 0.0f64;
            for b in 0..n {
                let base = (b * CHANNELS + c) * plane;
                s += x[base..base + plane].iter().map(|&v| v as f64).sum::<f64>();
            }
            *m = (s / count as f64) as f32;
        }
        for (c, sd) in std.iter_mut().enumerate() {
            let mut s = 0.0f64;
            for b in 0..n {
                let base = (b * CHANNELS + c) * plane;
                s += x[base..base + plane]
                    .iter()
                    .map(|&v| ((v - mean[c]) as f64).powi(2))
                    .sum::<f64>();
            }
            *sd = ((s / count as f64).sqrt() as f32).max(1e-6);
        }
        Normalizer { mean, std }
    }

    /// Applies `(x - mean) / std` in place.
    pub fn apply(&self, dataset: &mut ImageDataset) {
        let n = dataset.len();
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let x = dataset.images_mut().as_mut_slice();
        for b in 0..n {
            for c in 0..CHANNELS {
                let base = (b * CHANNELS + c) * plane;
                for v in &mut x[base..base + plane] {
                    *v = (*v - self.mean[c]) / self.std[c];
                }
            }
        }
    }
}

/// Fits on `train`, applies to both splits, and returns the fitted
/// statistics — the standard leak-free preprocessing pipeline.
pub fn normalize_pair(train: &mut ImageDataset, test: &mut ImageDataset) -> Normalizer {
    let norm = Normalizer::fit(train);
    norm.apply(train);
    norm.apply(test);
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SynthSpec;

    #[test]
    fn fitted_then_applied_train_is_standardised() {
        let (mut train, mut test) = SynthSpec::synth10(1).with_sizes(30, 10).generate();
        normalize_pair(&mut train, &mut test);
        let x = train.images().as_slice();
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        for c in 0..CHANNELS {
            let mut vals = Vec::new();
            for b in 0..train.len() {
                let base = (b * CHANNELS + c) * plane;
                vals.extend_from_slice(&x[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn test_split_uses_train_statistics() {
        let (mut train, mut test) = SynthSpec::synth10(2).with_sizes(30, 10).generate();
        let before = test.images().as_slice().to_vec();
        let norm = normalize_pair(&mut train, &mut test);
        // Reconstruct: normalised·std + mean must equal the original.
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let after = test.images().as_slice();
        for b in 0..test.len() {
            for c in 0..CHANNELS {
                let base = (b * CHANNELS + c) * plane;
                for i in 0..plane {
                    let rebuilt = after[base + i] * norm.std[c] + norm.mean[c];
                    assert!((rebuilt - before[base + i]).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let (train, _) = SynthSpec::synth10(3).with_sizes(10, 4).generate();
        Normalizer::fit(&train.take(0));
    }
}
