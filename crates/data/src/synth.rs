//! Procedural synthetic image classes (`Synth10` / `Synth100`).
//!
//! CIFAR-10/100 cannot be downloaded in this environment, so the
//! workspace substitutes procedurally-generated 32×32 RGB scenes
//! (DESIGN.md §3). Each class is a parametric *shape × palette* program
//! rendered with per-sample jitter — position, scale, rotation, hue,
//! cluttered backgrounds, and pixel noise — chosen so that class identity
//! is carried by mid-level structure rather than raw pixel values. This
//! preserves the phenomenon the paper measures: raw-pixel HD encodings
//! (VanillaHD) fail while convolutional features succeed.

use crate::image::{Image, IMAGE_SIZE};
use nshd_tensor::Rng;

/// The ten shape families. Combined with ten palettes they form the 100
/// classes of `Synth100`; `Synth10` uses each shape with a random palette
/// per sample (shape alone carries the class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShapeKind {
    Disk,
    Ring,
    Square,
    Triangle,
    Cross,
    HorizontalStripes,
    VerticalStripes,
    DiagonalStripes,
    Checkerboard,
    TwinBlobs,
}

const SHAPES: [ShapeKind; 10] = [
    ShapeKind::Disk,
    ShapeKind::Ring,
    ShapeKind::Square,
    ShapeKind::Triangle,
    ShapeKind::Cross,
    ShapeKind::HorizontalStripes,
    ShapeKind::VerticalStripes,
    ShapeKind::DiagonalStripes,
    ShapeKind::Checkerboard,
    ShapeKind::TwinBlobs,
];

/// Ten foreground palettes (base hues in HSV, converted on render).
const PALETTE_HUES: [f32; 10] = [0.00, 0.08, 0.15, 0.30, 0.42, 0.50, 0.58, 0.70, 0.83, 0.93];

/// Jitter and difficulty knobs for the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthParams {
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise: f32,
    /// Number of random distractor dots in the background.
    pub clutter: usize,
    /// Maximum absolute centre shift, in pixels.
    pub max_shift: f32,
    /// Scale range for the foreground shape.
    pub scale_range: (f32, f32),
    /// Hue jitter (± around the palette hue).
    pub hue_jitter: f32,
    /// For ≤10-class datasets: probability that a sample is drawn in its
    /// class's home palette rather than a random one. Colour is then an
    /// *informative but insufficient* cue (as in CIFAR): colour-only
    /// classifiers cap near `fidelity + (1-fidelity)/10`, while shape
    /// identifies the class exactly.
    pub palette_fidelity: f32,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            noise: 0.05,
            clutter: 4,
            max_shift: 4.0,
            scale_range: (0.8, 1.2),
            hue_jitter: 0.03,
            palette_fidelity: 0.4,
        }
    }
}

/// HSV → RGB (all components in `[0, 1]`).
fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let h = (h.rem_euclid(1.0)) * 6.0;
    let i = h.floor() as i32 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

/// Soft coverage of a point against a shape, evaluated in the shape's
/// canonical frame (origin at centre, unit radius ≈ 10 px at scale 1).
fn coverage(kind: ShapeKind, u: f32, v: f32) -> f32 {
    // Smoothstep edge for light antialiasing.
    let edge = |d: f32| (0.5 - d * 2.0).clamp(0.0, 1.0);
    match kind {
        ShapeKind::Disk => {
            let r = (u * u + v * v).sqrt();
            edge(r - 1.0)
        }
        ShapeKind::Ring => {
            let r = (u * u + v * v).sqrt();
            edge((r - 0.75).abs() - 0.25)
        }
        ShapeKind::Square => {
            let d = u.abs().max(v.abs());
            edge(d - 0.9)
        }
        ShapeKind::Triangle => {
            // Upward triangle: inside if below the two slanted edges and
            // above the base.
            let inside = v >= -0.8 && (v + 0.8) <= 1.8 * (1.0 - u.abs());
            if inside {
                1.0
            } else {
                0.0
            }
        }
        ShapeKind::Cross => {
            let arm = 0.32;
            if (u.abs() < arm && v.abs() < 1.0) || (v.abs() < arm && u.abs() < 1.0) {
                1.0
            } else {
                0.0
            }
        }
        ShapeKind::HorizontalStripes => {
            if (u * u + v * v).sqrt() > 1.1 {
                0.0
            } else if ((v * 3.0).rem_euclid(2.0)) < 1.0 {
                1.0
            } else {
                0.0
            }
        }
        ShapeKind::VerticalStripes => {
            if (u * u + v * v).sqrt() > 1.1 {
                0.0
            } else if ((u * 3.0).rem_euclid(2.0)) < 1.0 {
                1.0
            } else {
                0.0
            }
        }
        ShapeKind::DiagonalStripes => {
            if (u * u + v * v).sqrt() > 1.1 {
                0.0
            } else if (((u + v) * 2.2).rem_euclid(2.0)) < 1.0 {
                1.0
            } else {
                0.0
            }
        }
        ShapeKind::Checkerboard => {
            if u.abs() > 1.0 || v.abs() > 1.0 {
                0.0
            } else {
                let cu = ((u + 1.0) * 2.0) as i32;
                let cv = ((v + 1.0) * 2.0) as i32;
                if (cu + cv) % 2 == 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
        ShapeKind::TwinBlobs => {
            let r1 = ((u - 0.5).powi(2) + v * v).sqrt();
            let r2 = ((u + 0.5).powi(2) + v * v).sqrt();
            edge(r1 - 0.5).max(edge(r2 - 0.5))
        }
    }
}

/// Renders one sample of class `class` (out of `num_classes`) into an
/// image.
///
/// For 10 classes, class *k* is shape *k*; its palette is the class's
/// home palette with probability [`SynthParams::palette_fidelity`] and a
/// random one otherwise, so colour is informative but insufficient —
/// raw-pixel methods cap well below shape-aware ones, reproducing the
/// CIFAR phenomenon the paper's §I measures. For 100 classes, class
/// `s·10 + p` is shape *s* with palette *p* (shape × colour jointly
/// identify the class, like CIFAR-100's finer label space). Any other
/// class count maps round-robin over the 100 shape×palette
/// combinations.
///
/// # Panics
///
/// Panics if `class >= num_classes` or `num_classes == 0`.
pub fn render_sample(
    class: usize,
    num_classes: usize,
    params: &SynthParams,
    rng: &mut Rng,
) -> Image {
    assert!(num_classes > 0 && class < num_classes, "class {class} of {num_classes}");
    let (shape_idx, palette_idx) = if num_classes <= 10 {
        let palette = if rng.chance(params.palette_fidelity) {
            class % 10
        } else {
            rng.below(PALETTE_HUES.len())
        };
        (class % 10, palette)
    } else {
        let combo = class % 100;
        (combo / 10, combo % 10)
    };
    let kind = SHAPES[shape_idx];
    let hue = PALETTE_HUES[palette_idx] + rng.uniform_in(-params.hue_jitter, params.hue_jitter);
    let fg = hsv_to_rgb(hue, 0.85, rng.uniform_in(0.8, 1.0));

    // Background: a random dim gradient between two colours.
    let bg_a = hsv_to_rgb(rng.uniform(), 0.25, rng.uniform_in(0.15, 0.4));
    let bg_b = hsv_to_rgb(rng.uniform(), 0.25, rng.uniform_in(0.15, 0.4));
    let horizontal = rng.chance(0.5);
    let mut img = Image::new();
    for y in 0..IMAGE_SIZE {
        for x in 0..IMAGE_SIZE {
            let t = if horizontal { x } else { y } as f32 / (IMAGE_SIZE - 1) as f32;
            for c in 0..3 {
                img.set(c, y, x, bg_a[c] * (1.0 - t) + bg_b[c] * t);
            }
        }
    }

    // Distractor dots.
    for _ in 0..params.clutter {
        let cy = rng.below(IMAGE_SIZE) as f32;
        let cx = rng.below(IMAGE_SIZE) as f32;
        let radius = rng.uniform_in(0.8, 2.0);
        let colour = hsv_to_rgb(rng.uniform(), 0.5, rng.uniform_in(0.3, 0.7));
        paint_disk(&mut img, cy, cx, radius, colour);
    }

    // Foreground shape with jittered pose.
    let centre = IMAGE_SIZE as f32 / 2.0;
    let cy = centre + rng.uniform_in(-params.max_shift, params.max_shift);
    let cx = centre + rng.uniform_in(-params.max_shift, params.max_shift);
    let scale = rng.uniform_in(params.scale_range.0, params.scale_range.1) * 10.0;
    let theta = rng.uniform_in(-0.2, 0.2);
    let (sin_t, cos_t) = theta.sin_cos();
    for y in 0..IMAGE_SIZE {
        for x in 0..IMAGE_SIZE {
            let dy = (y as f32 - cy) / scale;
            let dx = (x as f32 - cx) / scale;
            // Rotate into the shape frame.
            let u = cos_t * dx + sin_t * dy;
            let v = -sin_t * dx + cos_t * dy;
            let a = coverage(kind, u, v);
            if a > 0.0 {
                img.blend(y, x, fg, a);
            }
        }
    }

    // Pixel noise.
    if params.noise > 0.0 {
        for p in img.as_mut_slice() {
            *p += rng.normal_with(0.0, params.noise);
        }
    }
    img.clamp();
    img
}

fn paint_disk(img: &mut Image, cy: f32, cx: f32, radius: f32, colour: [f32; 3]) {
    let r_ceil = radius.ceil() as isize + 1;
    for dy in -r_ceil..=r_ceil {
        for dx in -r_ceil..=r_ceil {
            let y = cy as isize + dy;
            let x = cx as isize + dx;
            if y < 0 || x < 0 || y as usize >= IMAGE_SIZE || x as usize >= IMAGE_SIZE {
                continue;
            }
            let d = ((dy * dy + dx * dx) as f32).sqrt();
            if d <= radius {
                img.blend(y as usize, x as usize, colour, 0.8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_per_seed() {
        let params = SynthParams::default();
        let a = render_sample(3, 10, &params, &mut Rng::new(5));
        let b = render_sample(3, 10, &params, &mut Rng::new(5));
        assert_eq!(a, b);
        let c = render_sample(3, 10, &params, &mut Rng::new(6));
        assert_ne!(a, c);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let params = SynthParams::default();
        let mut rng = Rng::new(1);
        for class in 0..10 {
            let img = render_sample(class, 10, &params, &mut rng);
            assert!(img.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn hundred_class_mapping_covers_all_combos() {
        // Classes 0..100 map bijectively onto shape×palette combinations.
        let mut seen = std::collections::HashSet::new();
        for class in 0..100 {
            let combo = class % 100;
            seen.insert((combo / 10, combo % 10));
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn different_classes_produce_visibly_different_images() {
        // Average over many samples per class; class means must differ.
        let params = SynthParams { noise: 0.0, clutter: 0, ..SynthParams::default() };
        let mut rng = Rng::new(7);
        let mean_img = |class: usize, rng: &mut Rng| {
            let mut acc = vec![0.0f64; 3 * 32 * 32];
            for _ in 0..8 {
                let img = render_sample(class, 10, &params, rng);
                for (a, &p) in acc.iter_mut().zip(img.as_slice()) {
                    *a += p as f64;
                }
            }
            acc
        };
        let m0 = mean_img(0, &mut rng);
        let m5 = mean_img(5, &mut rng);
        let diff: f64 = m0.iter().zip(&m5).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 50.0, "class means too similar: {diff}");
    }

    #[test]
    fn hsv_primary_colours() {
        let red = hsv_to_rgb(0.0, 1.0, 1.0);
        assert!(red[0] > 0.99 && red[1] < 0.01 && red[2] < 0.01);
        let green = hsv_to_rgb(1.0 / 3.0, 1.0, 1.0);
        assert!(green[1] > 0.99 && green[0] < 0.01);
        let blue = hsv_to_rgb(2.0 / 3.0, 1.0, 1.0);
        assert!(blue[2] > 0.99 && blue[0] < 0.01);
    }

    #[test]
    #[should_panic(expected = "class")]
    fn out_of_range_class_panics() {
        render_sample(10, 10, &SynthParams::default(), &mut Rng::new(1));
    }
}
