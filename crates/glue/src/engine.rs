//! Serving a fused ensemble with in-flight hot-swap.
//!
//! [`GlueEngine`] implements the runtime's
//! [`BatchEngine`](nshd_runtime::BatchEngine) over a copy-on-write
//! [`GlueState`] (heads + consensus memory). The runtime pins exactly
//! one state snapshot per batch, so [`swap_memory`](GlueEngine::swap_memory),
//! [`swap_head`](GlueEngine::swap_head), and live class growth can all
//! happen mid-traffic: batches that started before a swap keep serving
//! the old snapshot bit-exactly, batches that start after it serve the
//! new one — never a mixture.

use crate::ensemble::{fuse_encode, GlueEnsemble};
use crate::head::GlueHead;
use nshd_core::{verify_ensemble, PipelineError};
use nshd_hdc::{AssociativeMemory, BipolarHv, MemorySnapshot};
use nshd_runtime::BatchEngine;
use nshd_tensor::Tensor;
use std::sync::{Arc, RwLock};

/// One immutable generation of a serving ensemble: the teacher heads
/// and the consensus memory one batch is answered against.
///
/// States are published [`Arc`]-swap style by [`GlueEngine`]; nothing
/// in a state mutates after publication, so any number of in-flight
/// batches can share one state concurrently and bit-exactly.
#[derive(Clone)]
pub struct GlueState {
    heads: Vec<Arc<GlueHead>>,
    memory: MemorySnapshot,
}

impl std::fmt::Debug for GlueState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlueState")
            .field("heads", &self.heads.len())
            .field("classes", &self.memory.num_classes())
            .field("dim", &self.memory.dim())
            .finish()
    }
}

impl GlueState {
    /// The teacher heads, in fuse order.
    pub fn heads(&self) -> &[Arc<GlueHead>] {
        &self.heads
    }

    /// The consensus memory this state scores against.
    pub fn memory(&self) -> &AssociativeMemory {
        &self.memory
    }

    /// Number of classes this state predicts over.
    pub fn num_classes(&self) -> usize {
        self.memory.num_classes()
    }

    /// Statically verifies head/memory dimension agreement
    /// ([`nshd_core::verify_ensemble`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] naming the first violated
    /// invariant.
    pub fn verify(&self) -> Result<(), PipelineError> {
        let dims: Vec<_> = self.heads.iter().map(|h| h.dims()).collect();
        verify_ensemble(&dims, &self.memory).map_err(PipelineError::from)
    }

    /// Weighted fused encoding of a batch of CHW images against this
    /// state's heads.
    ///
    /// # Errors
    ///
    /// Returns the first head's error on malformed or non-finite
    /// images.
    pub fn encode_fused(&self, images: &[Tensor]) -> Result<Vec<BipolarHv>, PipelineError> {
        fuse_encode(&self.heads, images)
    }

    /// Consensus predictions for a batch of CHW images against this
    /// state.
    ///
    /// # Errors
    ///
    /// Returns the first head's error on malformed or non-finite
    /// images.
    pub fn predict_batch(&self, images: &[Tensor]) -> Result<Vec<usize>, PipelineError> {
        let hvs = self.encode_fused(images)?;
        Ok(self.memory.predict_batch(&hvs))
    }
}

/// A hot-swappable serving engine over a fused ensemble.
///
/// The current [`GlueState`] lives behind an `RwLock<Arc<GlueState>>`;
/// the runtime's per-batch [`snapshot`](BatchEngine::snapshot) clones
/// the `Arc` (a refcount bump) and drops the lock, and every swap
/// verifies its candidate state **before** publishing, so a bad swap is
/// rejected without ever disturbing traffic.
pub struct GlueEngine {
    state: RwLock<Arc<GlueState>>,
}

impl GlueEngine {
    /// Wraps a fused ensemble as the engine's initial state.
    pub fn new(ensemble: GlueEnsemble) -> Self {
        let state = GlueState {
            heads: ensemble.heads().to_vec(),
            memory: Arc::new(ensemble.memory().clone()),
        };
        GlueEngine { state: RwLock::new(Arc::new(state)) }
    }

    /// Pins and returns the current state. Callers needing a consistent
    /// view across several operations must call this once and reuse the
    /// returned `Arc`.
    pub fn state(&self) -> Arc<GlueState> {
        self.state.read().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
    }

    /// Verifies `next` and atomically publishes it, returning the state
    /// it replaced. In-flight batches pinned on the previous state are
    /// unaffected.
    fn publish(&self, next: GlueState) -> Result<Arc<GlueState>, PipelineError> {
        next.verify()?;
        let next = Arc::new(next);
        let mut slot = self.state.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        Ok(std::mem::replace(&mut slot, next))
    }

    /// Hot-swaps the consensus memory (e.g. after offline retraining),
    /// returning the state it replaced. The candidate memory must match
    /// the heads' HD dimension; a mismatch is rejected before anything
    /// is published.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] when the replacement memory
    /// disagrees with the serving heads.
    pub fn swap_memory(&self, memory: AssociativeMemory) -> Result<Arc<GlueState>, PipelineError> {
        let _sp = nshd_obs::span("glue_memory_swap");
        let current = self.state();
        let next = GlueState { heads: current.heads.clone(), memory: Arc::new(memory) };
        let previous = self.publish(next)?;
        nshd_obs::counter("glue.memory_swaps").inc();
        Ok(previous)
    }

    /// Hot-swaps one teacher head in place (e.g. a retrained or
    /// re-weighted teacher), returning the state it replaced. The
    /// replacement must emit the same HD dimension as the serving
    /// memory; a mismatch is rejected before anything is published.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] for an out-of-range index and
    /// [`PipelineError::Analysis`] when the replacement head disagrees
    /// with the serving memory.
    pub fn swap_head(&self, index: usize, head: GlueHead) -> Result<Arc<GlueState>, PipelineError> {
        let _sp = nshd_obs::span("glue_head_swap");
        let current = self.state();
        if index >= current.heads.len() {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: format!(
                    "head index {index} out of range for ensemble of {} heads",
                    current.heads.len()
                ),
            });
        }
        let mut heads = current.heads.clone();
        heads[index] = Arc::new(head);
        let next = GlueState { heads, memory: current.memory.clone() };
        let previous = self.publish(next)?;
        nshd_obs::counter("glue.head_swaps").inc();
        Ok(previous)
    }

    /// Grows the consensus memory by one zeroed class (copy-on-write)
    /// and returns the new class index. In-flight batches keep scoring
    /// over the old class set.
    pub fn add_class(&self) -> usize {
        let current = self.state();
        let mut memory = AssociativeMemory::clone(&current.memory);
        let index = memory.add_class();
        let next = GlueState { heads: current.heads.clone(), memory: Arc::new(memory) };
        let mut slot = self.state.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(next);
        nshd_obs::counter("glue.class_adds").inc();
        index
    }

    /// Teaches a brand-new class from example images mid-traffic:
    /// fused-encodes the examples against the current heads, bundles
    /// them into one fresh class row, and publishes the grown memory
    /// copy-on-write. Returns the new class index.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::EmptyBatch`] for an empty example list
    /// and the first head's error on malformed or non-finite images.
    pub fn add_class_from(&self, examples: &[Tensor]) -> Result<usize, PipelineError> {
        if examples.is_empty() {
            return Err(PipelineError::EmptyBatch);
        }
        let _sp = nshd_obs::span("glue_class_add");
        let current = self.state();
        let hvs = current.encode_fused(examples)?;
        let mut memory = AssociativeMemory::clone(&current.memory);
        let index = memory.add_class();
        for hv in &hvs {
            memory.bundle(index, hv);
        }
        let next = GlueState { heads: current.heads.clone(), memory: Arc::new(memory) };
        self.publish(next)?;
        nshd_obs::counter("glue.class_adds").inc();
        Ok(index)
    }

    /// Number of classes the *current* state predicts over.
    pub fn num_classes(&self) -> usize {
        self.state().num_classes()
    }
}

/// Glue serving: inputs are CHW image tensors, the data-parallel stage
/// is the weighted fused encode across all heads, and the batch-level
/// stage scores the fused hypervectors against the pinned snapshot's
/// consensus memory.
impl BatchEngine for GlueEngine {
    type Input = Tensor;
    type Partial = BipolarHv;
    type Output = usize;
    type Snapshot = GlueState;

    fn snapshot(&self) -> Arc<GlueState> {
        self.state()
    }

    fn extract(
        &self,
        snapshot: &GlueState,
        chunk: &[Tensor],
    ) -> Result<Vec<BipolarHv>, PipelineError> {
        snapshot.encode_fused(chunk)
    }

    fn finish(
        &self,
        snapshot: &GlueState,
        partials: Vec<BipolarHv>,
    ) -> Result<Vec<usize>, PipelineError> {
        Ok(snapshot.memory.predict_batch(&partials))
    }

    fn verify(&self) -> Result<(), PipelineError> {
        self.state().verify()
    }
}
