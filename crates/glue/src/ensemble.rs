//! Fusing N trained teachers into one symbolic consensus memory.
//!
//! The HD-Glue recipe (Sutor et al. 2022), adapted to the NSHD stack:
//!
//! 1. each teacher's penultimate-layer embeddings are standardised and
//!    pushed through a **per-teacher** random projection Φ_t into a
//!    shared D-dimensional hyperspace;
//! 2. per-sample hypervectors are **weight-bundled** across teachers —
//!    each teacher's vote counts proportionally to its standalone
//!    bundling accuracy on the fusion set — and re-binarised with
//!    deterministic tie-breaking;
//! 3. the fused hypervectors initialise one consensus
//!    [`AssociativeMemory`], then **error-correcting retraining**
//!    ([`OnlineTrainer`]) re-bundles every misclassified example until
//!    the counts converge (or the epoch budget runs out).

use crate::head::GlueHead;
use nshd_core::{verify_ensemble, EmbeddingClassifier, FeatureScaler, PipelineError};
use nshd_data::ImageDataset;
use nshd_hdc::{
    bundle_init, sign_with_tiebreak, AssociativeMemory, BipolarHv, EpochReport, OnlineTrainer,
    RandomProjection,
};
use nshd_tensor::Tensor;
use std::fmt;
use std::sync::Arc;

/// Knobs for [`GlueEnsemble::fuse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlueConfig {
    /// Shared hyperspace dimensionality D.
    pub hv_dim: usize,
    /// Base seed; each teacher's projection derives a distinct seed
    /// from it.
    pub seed: u64,
    /// Error-correcting retraining epoch budget over the fusion set.
    pub correction_epochs: usize,
    /// Learning rate of the error-correcting [`OnlineTrainer`].
    pub learning_rate: f32,
    /// Images per forward pass while embedding the fusion set.
    pub embed_chunk: usize,
}

impl Default for GlueConfig {
    fn default() -> Self {
        GlueConfig {
            hv_dim: 4096,
            seed: 0x617C,
            correction_epochs: 5,
            learning_rate: 0.2,
            embed_chunk: 64,
        }
    }
}

impl GlueConfig {
    /// Checks the configuration can fuse at all.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when a dimension, epoch count,
    /// or rate is unusable.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.hv_dim == 0 {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: "hypervector dimension must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.embed_chunk == 0 {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: "embedding chunk size must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Per-teacher summary of a fuse: the head's name, its standalone
/// (single-teacher bundling) accuracy on the fusion set, and the weight
/// it was admitted with.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadReport {
    /// The teacher's display name.
    pub name: String,
    /// Single-teacher bundling accuracy on the fusion set.
    pub standalone_accuracy: f32,
    /// Contribution weight in the fused bundle (equals the standalone
    /// accuracy).
    pub weight: f32,
}

/// Weighted fused encode: every head encodes the batch, votes are
/// accumulated `±weight` per component, and the accumulator re-binarises
/// with deterministic position-keyed tie-breaking.
pub(crate) fn fuse_encode(
    heads: &[Arc<GlueHead>],
    images: &[Tensor],
) -> Result<Vec<BipolarHv>, PipelineError> {
    let Some(first) = heads.first() else {
        return Err(PipelineError::Runtime {
            stage: "glue",
            detail: "ensemble has no teacher heads".into(),
        });
    };
    if images.is_empty() {
        return Ok(Vec::new());
    }
    let _sp = nshd_obs::span("glue_encode");
    let dim = first.hv_dim();
    let mut acc = vec![vec![0.0f32; dim]; images.len()];
    for head in heads {
        let hvs = head.encode_batch(images)?;
        let weight = head.weight();
        for (sample_acc, hv) in acc.iter_mut().zip(&hvs) {
            for (a, &c) in sample_acc.iter_mut().zip(hv.components()) {
                // Multiplication-free weighted bundling by sign.
                if c > 0 {
                    *a += weight;
                } else {
                    *a -= weight;
                }
            }
        }
    }
    Ok(acc.iter().map(|sample_acc| sign_with_tiebreak(sample_acc)).collect())
}

/// A fused multi-teacher symbolic classifier: N teacher heads voting
/// into one consensus [`AssociativeMemory`].
///
/// Built by [`GlueEnsemble::fuse`]; served (with hot-swap and live
/// class growth) through [`GlueEngine`](crate::GlueEngine). Cloning is
/// cheap on the head side (`Arc` bumps) and deep-copies the memory, so
/// replicated serving can snapshot one fuse into several engines.
#[derive(Clone)]
pub struct GlueEnsemble {
    heads: Vec<Arc<GlueHead>>,
    memory: AssociativeMemory,
    head_reports: Vec<HeadReport>,
    correction: Vec<EpochReport>,
}

impl fmt::Debug for GlueEnsemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlueEnsemble")
            .field("heads", &self.head_reports)
            .field("classes", &self.memory.num_classes())
            .field("dim", &self.memory.dim())
            .finish()
    }
}

impl GlueEnsemble {
    /// Fuses trained teachers into one consensus memory over `train`
    /// (the fusion set): per-teacher projections, accuracy-weighted
    /// bundling, then error-correcting retraining. Deterministic for a
    /// fixed teacher list, fusion set, and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] for an empty teacher list,
    /// empty fusion set, or unusable configuration, and the first
    /// teacher error (shape mismatch, non-finite embeddings) otherwise.
    #[must_use = "fusing is expensive; discarding the ensemble wastes the work"]
    pub fn fuse(
        teachers: &[&dyn EmbeddingClassifier],
        train: &ImageDataset,
        config: &GlueConfig,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        if teachers.is_empty() {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: "cannot fuse an empty teacher list".into(),
            });
        }
        if train.is_empty() {
            return Err(PipelineError::EmptyBatch);
        }
        let _sp = nshd_obs::span("glue_fuse");
        let labels = train.labels();
        let num_classes = train.num_classes();
        let images: Vec<Tensor> = (0..train.len()).map(|i| train.images().batch_item(i)).collect();
        let mut heads = Vec::with_capacity(teachers.len());
        let mut head_reports = Vec::with_capacity(teachers.len());
        let mut per_head_hvs: Vec<Vec<BipolarHv>> = Vec::with_capacity(teachers.len());
        for (t, teacher) in teachers.iter().enumerate() {
            // Embed the fusion set once per teacher, in chunks so the
            // NCHW activations stay modest.
            let mut embeds: Vec<Tensor> = Vec::with_capacity(train.len());
            for chunk in images.chunks(config.embed_chunk) {
                let matrix = teacher.embed_batch(chunk)?;
                for b in 0..chunk.len() {
                    embeds.push(matrix.batch_item(b));
                }
            }
            let scaler = FeatureScaler::fit(&embeds);
            let embedding = teacher.embedding_dim();
            // Distinct per-teacher seeds: heads must not share a basis,
            // or their votes would be correlated instead of independent.
            let head_seed =
                config.seed.wrapping_add((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let projection = RandomProjection::new(embedding, config.hv_dim, head_seed);
            let encoder = projection.batch_encoder();
            let rows: Vec<Vec<f32>> =
                embeds.iter().map(|e| scaler.transform(e).as_slice().to_vec()).collect();
            let matrix = Tensor::from_rows(&rows)?;
            let hvs = encoder.encode_batch(&matrix);
            let samples: Vec<(BipolarHv, usize)> =
                hvs.iter().cloned().zip(labels.iter().copied()).collect();
            // The head's weight is its standalone bundling accuracy on
            // the fusion set: a teacher that cannot separate the classes
            // alone gets a proportionally quieter vote.
            let standalone = bundle_init(num_classes, config.hv_dim, &samples);
            let accuracy = standalone.accuracy(&samples);
            let (model, cut) = teacher.extractor();
            let head = GlueHead::new(teacher.name(), model, cut, scaler, &projection, accuracy)?;
            head_reports.push(HeadReport {
                name: head.name().to_string(),
                standalone_accuracy: accuracy,
                weight: accuracy,
            });
            heads.push(Arc::new(head));
            per_head_hvs.push(hvs);
        }

        // Weighted consensus bundle per sample, re-binarised.
        let dim = config.hv_dim;
        let fused: Vec<(BipolarHv, usize)> = (0..train.len())
            .map(|i| {
                let mut acc = vec![0.0f32; dim];
                for (head, hvs) in heads.iter().zip(&per_head_hvs) {
                    let weight = head.weight();
                    for (a, &c) in acc.iter_mut().zip(hvs[i].components()) {
                        if c > 0 {
                            *a += weight;
                        } else {
                            *a -= weight;
                        }
                    }
                }
                (sign_with_tiebreak(&acc), labels[i])
            })
            .collect();
        let mut memory = bundle_init(num_classes, dim, &fused);
        // Error-correcting retraining on the fused representatives:
        // every misclassified example strengthens its true class and
        // weakens the false winner, with per-epoch counts recorded.
        let trainer = OnlineTrainer::new(config.learning_rate);
        let correction = trainer.train(&mut memory, &fused, config.correction_epochs);
        let ensemble = GlueEnsemble { heads, memory, head_reports, correction };
        ensemble.verify()?;
        Ok(ensemble)
    }

    /// Statically verifies head/memory dimension agreement
    /// ([`nshd_core::verify_ensemble`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Analysis`] naming the first violated
    /// invariant.
    pub fn verify(&self) -> Result<(), PipelineError> {
        let dims: Vec<_> = self.heads.iter().map(|h| h.dims()).collect();
        verify_ensemble(&dims, &self.memory).map_err(PipelineError::from)
    }

    /// The teacher heads, in fuse order.
    pub fn heads(&self) -> &[Arc<GlueHead>] {
        &self.heads
    }

    /// The fused consensus memory.
    pub fn memory(&self) -> &AssociativeMemory {
        &self.memory
    }

    /// Per-teacher fuse summaries (standalone accuracy and weight), in
    /// fuse order.
    pub fn head_reports(&self) -> &[HeadReport] {
        &self.head_reports
    }

    /// Per-epoch error-correction reports from the fuse, in order.
    pub fn correction(&self) -> &[EpochReport] {
        &self.correction
    }

    /// Number of classes the consensus memory predicts over.
    pub fn num_classes(&self) -> usize {
        self.memory.num_classes()
    }

    /// Weighted fused encoding of a batch of CHW images.
    ///
    /// # Errors
    ///
    /// Returns the first head's error on malformed or non-finite
    /// images.
    pub fn encode_fused(&self, images: &[Tensor]) -> Result<Vec<BipolarHv>, PipelineError> {
        fuse_encode(&self.heads, images)
    }

    /// Consensus predictions for a batch of CHW images.
    ///
    /// # Errors
    ///
    /// Returns the first head's error on malformed or non-finite
    /// images.
    pub fn predict_batch(&self, images: &[Tensor]) -> Result<Vec<usize>, PipelineError> {
        let hvs = self.encode_fused(images)?;
        Ok(self.memory.predict_batch(&hvs))
    }

    /// Consensus classification accuracy over a labelled dataset,
    /// scored in chunks through the batched path.
    ///
    /// # Errors
    ///
    /// Returns the first head's error on malformed or non-finite
    /// images.
    pub fn accuracy(&self, dataset: &ImageDataset) -> Result<f32, PipelineError> {
        if dataset.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for start in (0..dataset.len()).step_by(64) {
            let end = (start + 64).min(dataset.len());
            let images: Vec<Tensor> =
                (start..end).map(|i| dataset.images().batch_item(i)).collect();
            let preds = self.predict_batch(&images)?;
            correct += preds
                .iter()
                .zip(&dataset.labels()[start..end])
                .filter(|(p, label)| p == label)
                .count();
        }
        Ok(correct as f32 / dataset.len() as f32)
    }
}
