//! One teacher's symbolic head: truncated extractor → feature scaler →
//! random-projection HD encoder, plus the head's contribution weight.

use nshd_core::{EnsembleDims, FeatureScaler, PipelineError};
use nshd_hdc::{BatchEncoder, BipolarHv, RandomProjection};
use nshd_nn::Model;
use nshd_tensor::{Tensor, TensorError};

/// An immutable, `Send + Sync` snapshot of one teacher's path into
/// hyperspace: the teacher CNN truncated at its penultimate layer, the
/// per-feature standardisation fitted on the fusion set, and the
/// per-teacher random projection Φ_t. Each head also carries the weight
/// its hypervectors contribute to the fused consensus bundle.
///
/// Heads are built by
/// [`GlueEnsemble::fuse`](crate::GlueEnsemble::fuse) and shared by
/// `Arc` between the ensemble, its serving engine, and in-flight
/// snapshots; nothing in a head mutates after construction.
pub struct GlueHead {
    name: String,
    extractor: Model,
    cut: usize,
    scaler: FeatureScaler,
    encoder: BatchEncoder,
    weight: f32,
}

// Heads are shared across serving worker threads; fail the build if a
// field ever loses `Send + Sync`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GlueHead>();
};

impl GlueHead {
    /// Assembles a head from its parts. The projection's feature width
    /// must match the extractor's flattened output at `cut`, and the
    /// scaler must be fitted on that same width.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `cut` is out of range or
    /// the scaler/projection widths disagree with the extractor.
    #[must_use = "the head is the constructor's only product"]
    pub fn new(
        name: impl Into<String>,
        extractor: Model,
        cut: usize,
        scaler: FeatureScaler,
        projection: &RandomProjection,
        weight: f32,
    ) -> Result<Self, PipelineError> {
        let name = name.into();
        if cut == 0 || cut > extractor.features.len() {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: format!(
                    "head {name}: cut {cut} out of range for {} feature layers",
                    extractor.features.len()
                ),
            });
        }
        let embedding = extractor.feature_len_at(cut);
        if scaler.len() != embedding {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: format!(
                    "head {name}: scaler fitted on {} features but the extractor embeds {embedding}",
                    scaler.len()
                ),
            });
        }
        if projection.features() != embedding {
            return Err(PipelineError::Runtime {
                stage: "glue",
                detail: format!(
                    "head {name}: projection reads {} features but the extractor embeds {embedding}",
                    projection.features()
                ),
            });
        }
        Ok(GlueHead { name, extractor, cut, scaler, encoder: projection.batch_encoder(), weight })
    }

    /// Display name (the wrapped teacher's).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight this head's hypervectors carry in the fused bundle.
    pub fn weight(&self) -> f32 {
        self.weight
    }

    /// Flattened embedding width the head reads from its teacher.
    pub fn embedding_dim(&self) -> usize {
        self.extractor.feature_len_at(self.cut)
    }

    /// HD dimension the head's projection emits.
    pub fn hv_dim(&self) -> usize {
        self.encoder.dim()
    }

    /// The head's dimension summary for
    /// [`nshd_core::verify_ensemble`].
    pub fn dims(&self) -> EnsembleDims {
        EnsembleDims {
            embedding: self.embedding_dim(),
            features: self.encoder.features(),
            dim: self.encoder.dim(),
            weight: self.weight,
        }
    }

    /// Encodes a batch of CHW images through this head: one truncated
    /// CNN pass, per-sample standardisation, one GEMM encode. Returns
    /// one bipolar hypervector per image, in order.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Tensor`] when an image's shape differs
    /// from the teacher's input shape, and
    /// [`PipelineError::NonFiniteActivation`] when inputs or scaled
    /// embeddings contain NaN/∞.
    pub fn encode_batch(&self, images: &[Tensor]) -> Result<Vec<BipolarHv>, PipelineError> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let _sp = nshd_obs::span("glue_head");
        for image in images {
            if image.dims() != self.extractor.input_shape {
                return Err(TensorError::IncompatibleShapes {
                    lhs: self.extractor.input_shape.clone(),
                    rhs: image.dims().to_vec(),
                }
                .into());
            }
            if image.as_slice().iter().any(|v| !v.is_finite()) {
                return Err(PipelineError::NonFiniteActivation { stage: "glue head input" });
            }
        }
        let batch = Tensor::stack(images)?;
        let feats = self.extractor.infer_features_at(&batch, self.cut);
        let rows: Vec<Vec<f32>> = (0..images.len())
            .map(|b| self.scaler.transform(&feats.batch_item(b)).as_slice().to_vec())
            .collect();
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(PipelineError::NonFiniteActivation { stage: "glue head embedding" });
        }
        let matrix = Tensor::from_rows(&rows)?;
        Ok(self.encoder.encode_batch(&matrix))
    }

    /// Clone of this head with a different contribution weight (heads
    /// are otherwise immutable; re-weighting builds a new head so
    /// published snapshots are never mutated).
    pub fn with_weight(&self, weight: f32) -> GlueHead {
        GlueHead {
            name: self.name.clone(),
            extractor: self.extractor.clone(),
            cut: self.cut,
            scaler: self.scaler.clone(),
            encoder: self.encoder.clone(),
            weight,
        }
    }
}
