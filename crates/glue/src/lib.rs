//! # nshd-glue — HD-Glue multi-teacher symbolic fusion
//!
//! Fuses N trained teachers (anything implementing
//! [`nshd_core::EmbeddingClassifier`]) into **one** symbolic consensus
//! classifier, following the HD-Glue recipe (Sutor et al. 2022): each
//! teacher's penultimate-layer embeddings are pushed through a
//! per-teacher random projection into a shared hyperspace, bundled with
//! accuracy-proportional weights into per-sample consensus
//! hypervectors, and distilled into one
//! [`AssociativeMemory`](nshd_hdc::AssociativeMemory) refined by
//! error-correcting retraining.
//!
//! The crate splits along the fuse/serve boundary:
//!
//! - [`GlueEnsemble::fuse`] is the **offline** half — builds the heads,
//!   weights, and consensus memory from a fusion set, deterministically.
//! - [`GlueEngine`] is the **serving** half — a hot-swappable
//!   [`BatchEngine`](nshd_runtime::BatchEngine) publishing immutable
//!   [`GlueState`] snapshots copy-on-write, so the consensus memory, a
//!   single teacher head, or the class set itself can be replaced
//!   mid-traffic while in-flight batches keep answering bit-exactly
//!   from the snapshot they pinned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod ensemble;
mod head;

pub use engine::{GlueEngine, GlueState};
pub use ensemble::{GlueConfig, GlueEnsemble, HeadReport};
pub use head::GlueHead;
