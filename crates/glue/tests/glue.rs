//! Fuse-time semantics of the HD-Glue ensemble: determinism, head
//! weighting, typed rejections, live class growth, and fused accuracy
//! on a learnable task.

use nshd_core::{CnnClassifier, EmbeddingClassifier, PipelineError};
use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
use nshd_glue::{GlueConfig, GlueEngine, GlueEnsemble};
use nshd_hdc::AssociativeMemory;
use nshd_nn::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential};
use nshd_tensor::{Rng, Tensor};

fn tiny_cnn(name: &str, width: usize, seed: u64) -> CnnClassifier {
    let mut rng = Rng::new(seed);
    let features = Sequential::new()
        .with(Conv2d::new(3, width, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(width * 16 * 16, 10, &mut rng));
    CnnClassifier::new(Model {
        name: name.into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    })
}

fn datasets() -> (ImageDataset, ImageDataset) {
    let (mut train, mut test) = SynthSpec::synth10(21).with_sizes(48, 16).generate();
    normalize_pair(&mut train, &mut test);
    (train, test)
}

fn config() -> GlueConfig {
    GlueConfig { hv_dim: 256, seed: 7, correction_epochs: 3, learning_rate: 0.2, embed_chunk: 16 }
}

#[test]
fn fuse_is_deterministic() {
    let (train, test) = datasets();
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6)];
    let refs: Vec<&dyn EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn EmbeddingClassifier).collect();
    let first = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    let second = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    for c in 0..first.num_classes() {
        assert_eq!(first.memory().class(c), second.memory().class(c), "class {c} diverged");
    }
    assert_eq!(first.head_reports(), second.head_reports());
    assert_eq!(first.correction(), second.correction());

    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    assert_eq!(
        first.predict_batch(&images).expect("predict"),
        second.predict_batch(&images).expect("predict"),
    );
}

#[test]
fn head_weights_equal_standalone_accuracy_and_heads_verify() {
    let (train, _) = datasets();
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6)];
    let refs: Vec<&dyn EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn EmbeddingClassifier).collect();
    let ensemble = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    assert_eq!(ensemble.heads().len(), 2);
    assert_eq!(ensemble.head_reports().len(), 2);
    for (head, report) in ensemble.heads().iter().zip(ensemble.head_reports()) {
        assert_eq!(head.name(), report.name);
        assert_eq!(head.weight(), report.standalone_accuracy);
        assert!(report.weight > 0.0, "a fused teacher must carry weight");
    }
    ensemble.verify().expect("a freshly fused ensemble verifies");
    assert!(!ensemble.correction().is_empty(), "error correction must report its epochs");
}

#[test]
fn fuse_rejects_empty_teachers_and_empty_fusion_set() {
    let (train, _) = datasets();
    let err = GlueEnsemble::fuse(&[], &train, &config()).expect_err("no teachers");
    assert!(matches!(err, PipelineError::Runtime { stage: "glue", .. }), "got: {err}");

    let teacher = tiny_cnn("a", 3, 5);
    let refs: Vec<&dyn EmbeddingClassifier> = vec![&teacher];
    let empty = ImageDataset::new(Tensor::zeros([0, 3, 32, 32]), Vec::new(), 10);
    let err = GlueEnsemble::fuse(&refs, &empty, &config()).expect_err("empty fusion set");
    assert!(matches!(err, PipelineError::EmptyBatch), "got: {err}");
}

#[test]
fn config_validation_rejects_unusable_knobs() {
    let mut bad = config();
    bad.hv_dim = 0;
    assert!(bad.validate().is_err());
    let mut bad = config();
    bad.learning_rate = -1.0;
    assert!(bad.validate().is_err());
    let mut bad = config();
    bad.learning_rate = f32::NAN;
    assert!(bad.validate().is_err());
    let mut bad = config();
    bad.embed_chunk = 0;
    assert!(bad.validate().is_err());
}

#[test]
fn engine_rejects_incompatible_swaps() {
    let (train, _) = datasets();
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6)];
    let refs: Vec<&dyn EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn EmbeddingClassifier).collect();
    let ensemble = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    let engine = GlueEngine::new(ensemble);

    // Wrong HD dimension: rejected before publication, traffic unharmed.
    let err = engine
        .swap_memory(AssociativeMemory::new(10, 64))
        .expect_err("dimension mismatch must be rejected");
    assert!(matches!(err, PipelineError::Analysis(_)), "got: {err}");
    assert_eq!(engine.state().memory().dim(), 256, "a rejected swap must not publish");

    // Out-of-range head index: typed runtime error.
    let spare = engine.state().heads()[0].with_weight(0.5);
    let err = engine.swap_head(9, spare).expect_err("index out of range");
    assert!(matches!(err, PipelineError::Runtime { stage: "glue", .. }), "got: {err}");
}

#[test]
fn add_class_from_teaches_a_new_class_live() {
    let (train, test) = datasets();
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6)];
    let refs: Vec<&dyn EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn EmbeddingClassifier).collect();
    let ensemble = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    let engine = GlueEngine::new(ensemble);
    assert_eq!(engine.num_classes(), 10);

    // The pinned pre-growth snapshot must be isolated from the update.
    let pinned = engine.state();

    // Teach a brand-new "class" from a handful of examples; the grown
    // memory must claim those exact examples for the new index.
    let examples: Vec<Tensor> = (0..4).map(|i| test.sample(i).0).collect();
    let index = engine.add_class_from(&examples).expect("growth succeeds");
    assert_eq!(index, 10);
    assert_eq!(engine.num_classes(), 11);
    assert_eq!(pinned.num_classes(), 10, "in-flight snapshots must not observe growth");

    let preds = engine.state().predict_batch(&examples).expect("predict");
    assert!(
        preds.iter().all(|&p| p == index),
        "the taught examples must score highest on the new class, got {preds:?}"
    );

    // Plain add_class grows an empty row.
    assert_eq!(engine.add_class(), 11);
    assert_eq!(engine.num_classes(), 12);
    engine.state().verify().expect("a grown state still verifies");

    let err = engine.add_class_from(&[]).expect_err("empty example list");
    assert!(matches!(err, PipelineError::EmptyBatch), "got: {err}");
}

#[test]
fn fused_accuracy_beats_or_matches_best_single_teacher_bundle() {
    // On the learnable synthetic task the consensus memory must not be
    // worse than the best standalone per-teacher bundle (the bench
    // asserts the same against full teachers; this is the cheap tier-1
    // version with untrained extractors as random feature maps).
    let (train, _) = datasets();
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6), tiny_cnn("c", 4, 9)];
    let refs: Vec<&dyn EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn EmbeddingClassifier).collect();
    let ensemble = GlueEnsemble::fuse(&refs, &train, &config()).expect("fuse");
    let fused_train = ensemble.accuracy(&train).expect("accuracy");
    let best_single =
        ensemble.head_reports().iter().map(|r| r.standalone_accuracy).fold(0.0f32, f32::max);
    assert!(
        fused_train >= best_single,
        "fused train accuracy {fused_train} fell below best single {best_single}"
    );
}
