//! In-flight hot-swap determinism: a batch that pinned its snapshot
//! before a swap must be answered **entirely** by that snapshot —
//! bit-identical to a pre-swap baseline — while batches submitted after
//! the swap are answered entirely by the new state. The stall fault of
//! the PR-6 chaos harness holds a batch open in its extract stage so a
//! swap provably lands mid-batch; `NSHD_THREADS`-style parallelism is
//! exercised via `par::with_threads(1)` and `par::with_threads(4)`.

use nshd_core::CnnClassifier;
use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
use nshd_glue::{GlueConfig, GlueEngine, GlueEnsemble};
use nshd_hdc::AssociativeMemory;
use nshd_nn::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential};
use nshd_runtime::{ChaosEngine, ChaosMode, InferenceRuntime, RuntimeConfig};
use nshd_tensor::{par, Rng, Tensor};
use std::sync::Arc;
use std::time::Duration;

/// An untrained (randomly initialised) tiny CNN teacher: fusion and
/// hot-swap semantics do not care about accuracy, only determinism.
fn tiny_cnn(name: &str, width: usize, seed: u64) -> CnnClassifier {
    let mut rng = Rng::new(seed);
    let features = Sequential::new()
        .with(Conv2d::new(3, width, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(width * 16 * 16, 10, &mut rng));
    CnnClassifier::new(Model {
        name: name.into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    })
}

fn fused_fixture() -> (GlueEnsemble, ImageDataset) {
    let (mut train, mut test) = SynthSpec::synth10(21).with_sizes(32, 12).generate();
    normalize_pair(&mut train, &mut test);
    let teachers = [tiny_cnn("a", 3, 5), tiny_cnn("b", 5, 6)];
    let refs: Vec<&dyn nshd_core::EmbeddingClassifier> =
        teachers.iter().map(|t| t as &dyn nshd_core::EmbeddingClassifier).collect();
    let config = GlueConfig {
        hv_dim: 256,
        seed: 7,
        correction_epochs: 2,
        learning_rate: 0.2,
        embed_chunk: 16,
    };
    let ensemble = GlueEnsemble::fuse(&refs, &train, &config).expect("fuse must succeed");
    (ensemble, test)
}

fn runtime_config() -> RuntimeConfig {
    // max_wait is generous so every request submitted in one burst
    // lands in one batch; max_batch comfortably covers the burst.
    RuntimeConfig { workers: 2, max_batch: 16, max_wait: Duration::from_millis(50) }
}

fn spin_until_injected(switch: &nshd_runtime::ChaosSwitch) {
    for _ in 0..5000 {
        if switch.injected() >= 1 {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("the stalled batch never reached its extract stage");
}

/// Drives one mid-traffic swap and checks both sides of the snapshot
/// boundary. `swap` receives the engine once the stalled batch is
/// provably inside extract (fault injected ⇒ snapshot already pinned).
fn assert_swap_is_torn_free(swap: impl FnOnce(&GlueEngine)) {
    let (ensemble, test) = fused_fixture();
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let glue = Arc::new(GlueEngine::new(ensemble));
    let pre = glue.state().predict_batch(&images).expect("baseline predict");

    let (chaos, switch) = ChaosEngine::new(glue.clone());
    let runtime = InferenceRuntime::new(Arc::new(chaos), runtime_config()).expect("runtime starts");

    // Hold the first batch open inside extract, then swap under it.
    switch.set(ChaosMode::Stall(Duration::from_millis(250)));
    let stalled: Vec<_> =
        images.iter().map(|img| runtime.submit(img.clone()).expect("submit")).collect();
    spin_until_injected(&switch);
    swap(&glue);
    switch.set(ChaosMode::Healthy);

    let stalled_replies: Vec<usize> =
        stalled.into_iter().map(|h| h.wait().expect("stalled batch resolves")).collect();
    assert_eq!(
        stalled_replies, pre,
        "a batch pinned before the swap must be answered bit-exactly by the old snapshot"
    );

    // Everything after the swap is answered by the new state.
    let post = glue.state().predict_batch(&images).expect("post-swap baseline");
    let fresh: Vec<_> =
        images.iter().map(|img| runtime.submit(img.clone()).expect("submit")).collect();
    let fresh_replies: Vec<usize> =
        fresh.into_iter().map(|h| h.wait().expect("post-swap batch resolves")).collect();
    assert_eq!(
        fresh_replies, post,
        "a batch submitted after the swap must be answered bit-exactly by the new snapshot"
    );
    runtime.shutdown();
}

/// The swapped-in memory: every class row rotated by one, so the
/// replacement is dimension-compatible but scores differently.
fn rotated_memory(memory: &AssociativeMemory) -> AssociativeMemory {
    let n = memory.num_classes();
    let rows: Vec<Vec<f32>> = (0..n).map(|i| memory.class((i + 1) % n).to_vec()).collect();
    AssociativeMemory::try_from_classes(rows).expect("rotated rows stay rectangular")
}

fn memory_swap_scenario() {
    assert_swap_is_torn_free(|glue| {
        let rotated = rotated_memory(glue.state().memory());
        let marker = rotated.class(0).to_vec();
        let previous = glue.swap_memory(rotated).expect("compatible memory must swap");
        assert_eq!(previous.num_classes(), 10, "swap returns the replaced state");
        assert_eq!(
            glue.state().memory().class(0),
            &marker[..],
            "new loads must observe the swapped memory"
        );
    });
}

fn head_swap_scenario() {
    assert_swap_is_torn_free(|glue| {
        let silenced = glue.state().heads()[0].with_weight(0.0);
        glue.swap_head(0, silenced).expect("re-weighted head must swap");
        assert_eq!(
            glue.state().heads()[0].weight(),
            0.0,
            "new loads must observe the swapped head"
        );
    });
}

#[test]
fn memory_hot_swap_mid_traffic_is_torn_free_single_thread() {
    par::with_threads(1, memory_swap_scenario);
}

#[test]
fn memory_hot_swap_mid_traffic_is_torn_free_four_threads() {
    par::with_threads(4, memory_swap_scenario);
}

#[test]
fn head_hot_swap_mid_traffic_is_torn_free_single_thread() {
    par::with_threads(1, head_swap_scenario);
}

#[test]
fn head_hot_swap_mid_traffic_is_torn_free_four_threads() {
    par::with_threads(4, head_swap_scenario);
}

#[test]
fn memory_swap_actually_changes_predictions() {
    // Sanity for the scenarios above: the rotated memory is not a
    // no-op, so the bit-exact assertions separate real states.
    let (ensemble, test) = fused_fixture();
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let glue = GlueEngine::new(ensemble);
    let pre = glue.state().predict_batch(&images).expect("baseline predict");
    let rotated = rotated_memory(glue.state().memory());
    glue.swap_memory(rotated).expect("compatible memory must swap");
    let post = glue.state().predict_batch(&images).expect("post-swap predict");
    assert_ne!(pre, post, "rotating every class row must move at least one prediction");
}
