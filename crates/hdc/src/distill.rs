//! Knowledge-distillation retraining — the paper's Algorithm 1, which
//! extends MASS with soft targets from the uncut CNN teacher.
//!
//! ```text
//! 1: M = [C_0 … C_{k-1}]
//! 2: for hypervector H in training set:
//! 3:     similarity_values = δ(M, H)
//! 4:     soft_pred   = similarity_values / t
//! 5:     soft_labels = softmax(teacher_pred) / t
//! 6:     distilled_updates = soft_labels − soft_pred
//! 7:     U = (1−α) · (one_hot − similarity_values)
//! 8:     U += α · distilled_updates
//! 9:     M ← M + λ Uᵀ H
//! ```

use crate::hypervector::BipolarHv;
use crate::mass::MassTrainer;
use crate::memory::AssociativeMemory;

/// How the temperature is applied to teacher predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemperatureMode {
    /// The paper's Algorithm 1, literally: `softmax(logits) / t` (line 5)
    /// and `similarities / t` (line 4).
    #[default]
    PaperLiteral,
    /// Classic Hinton distillation: `softmax(logits / t)` with
    /// similarities rescaled into logit range before softening.
    Hinton,
}

/// Hyperparameters of the distillation retraining.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillConfig {
    /// Softening temperature *t* (the paper searches 12–17).
    pub temperature: f32,
    /// Mixing weight α between ground-truth and distilled updates
    /// (the paper searches 0–0.9; α=0 degenerates to MASS).
    pub alpha: f32,
    /// Learning rate λ.
    pub learning_rate: f32,
    /// Temperature application mode.
    pub mode: TemperatureMode,
}

impl Default for DistillConfig {
    fn default() -> Self {
        // The paper's search (§VII-C2) peaks at t ∈ [14, 16], α ∈
        // [0.6, 0.8] — with ImageNet-pretrained teachers far stronger
        // than their students. This reproduction's teachers are trained
        // in-repo and barely out-learn the HD student, so its own sweep
        // (fig9_kd_sweep) favours a milder blend; α defaults to 0.3 and
        // the paper's optimum remains one `with_distill` away.
        DistillConfig {
            temperature: 15.0,
            alpha: 0.3,
            learning_rate: 0.25,
            mode: TemperatureMode::PaperLiteral,
        }
    }
}

/// The distillation retrainer.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillTrainer {
    config: DistillConfig,
    mass: MassTrainer,
}

impl DistillTrainer {
    /// Creates a trainer from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`, `alpha ∉ [0, 1]`, or
    /// `learning_rate <= 0`.
    pub fn new(config: DistillConfig) -> Self {
        assert!(config.temperature > 0.0, "temperature must be positive");
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0, 1], got {}",
            config.alpha
        );
        let mass = MassTrainer::new(config.learning_rate);
        DistillTrainer { config, mass }
    }

    /// The active configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.config
    }

    /// Computes the combined update vector `U` of Algorithm 1 lines 3–8
    /// without applying it.
    ///
    /// `teacher_logits` are the uncut CNN's raw prediction-layer outputs
    /// for this sample.
    ///
    /// # Panics
    ///
    /// Panics if `label` or any dimension is out of range, or
    /// `teacher_logits.len() != memory.num_classes()`.
    pub fn update_vector(
        &self,
        memory: &AssociativeMemory,
        hv: &BipolarHv,
        label: usize,
        teacher_logits: &[f32],
    ) -> Vec<f32> {
        let k = memory.num_classes();
        assert_eq!(teacher_logits.len(), k, "teacher logit count mismatch");
        assert!(label < k, "label {label} out of range");
        let sims = memory.similarities(hv);
        let t = self.config.temperature;
        let (soft_labels, soft_pred): (Vec<f32>, Vec<f32>) = match self.config.mode {
            TemperatureMode::PaperLiteral => {
                let sl = softmax(teacher_logits).iter().map(|p| p / t).collect();
                let sp = sims.iter().map(|s| s / t).collect();
                (sl, sp)
            }
            TemperatureMode::Hinton => {
                let scaled: Vec<f32> = teacher_logits.iter().map(|l| l / t).collect();
                let sl = softmax(&scaled);
                // Map similarities ([-1,1]) onto a comparable simplex.
                let sim_scaled: Vec<f32> = sims.iter().map(|s| s * k as f32 / t).collect();
                let sp = softmax(&sim_scaled);
                (sl, sp)
            }
        };
        let mut u = vec![0.0f32; k];
        for c in 0..k {
            let hard = if c == label { 1.0 } else { 0.0 } - sims[c];
            let distilled = soft_labels[c] - soft_pred[c];
            u[c] = (1.0 - self.config.alpha) * hard + self.config.alpha * distilled;
        }
        u
    }

    /// Applies one sample's update (Algorithm 1 line 9) and returns `U`.
    pub fn step(
        &self,
        memory: &mut AssociativeMemory,
        hv: &BipolarHv,
        label: usize,
        teacher_logits: &[f32],
    ) -> Vec<f32> {
        let u = self.update_vector(memory, hv, label, teacher_logits);
        for (c, &uc) in u.iter().enumerate() {
            memory.add_scaled(c, hv, self.config.learning_rate * uc);
        }
        u
    }

    /// One pass over `(hypervector, label, teacher_logits)` triples;
    /// returns the pre-update training accuracy.
    pub fn epoch(
        &self,
        memory: &mut AssociativeMemory,
        samples: &[(BipolarHv, usize, Vec<f32>)],
    ) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (hv, label, logits) in samples {
            if memory.predict(hv) == *label {
                correct += 1;
            }
            self.step(memory, hv, *label, logits);
        }
        correct as f32 / samples.len() as f32
    }
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[test]
    fn alpha_zero_reduces_to_mass() {
        let mut rng = Rng::new(1);
        let dim = 512;
        let mut mem = AssociativeMemory::new(3, dim);
        let h = random_hv(dim, &mut rng);
        mem.bundle(1, &h);
        let distill = DistillTrainer::new(DistillConfig {
            alpha: 0.0,
            learning_rate: 0.3,
            ..DistillConfig::default()
        });
        let mass = MassTrainer::new(0.3);
        let u_distill = distill.update_vector(&mem, &h, 0, &[5.0, 1.0, 0.0]);
        let u_mass = mass.update_vector(&mem, &h, 0);
        for (a, b) in u_distill.iter().zip(&u_mass) {
            assert!((a - b).abs() < 1e-6, "{u_distill:?} vs {u_mass:?}");
        }
    }

    #[test]
    fn teacher_signal_shifts_update_toward_teacher_distribution() {
        let mut rng = Rng::new(2);
        let dim = 512;
        let mem = AssociativeMemory::new(3, dim);
        let h = random_hv(dim, &mut rng);
        let cfg = DistillConfig { alpha: 1.0, temperature: 2.0, ..DistillConfig::default() };
        let trainer = DistillTrainer::new(cfg);
        // Teacher is confident on class 2: U must favour class 2 over the
        // (ground-truth) class 0 when α = 1.
        let u = trainer.update_vector(&mem, &h, 0, &[0.0, 0.0, 8.0]);
        assert!(u[2] > u[0], "u = {u:?}");
        assert!(u[2] > u[1], "u = {u:?}");
    }

    #[test]
    fn distillation_converges_on_noisy_task() {
        // Teacher logits encode the true label confidently; with α = 0.7
        // retraining must reach high training accuracy.
        let mut rng = Rng::new(3);
        let dim = 1024;
        let classes = 4;
        let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, &mut rng)).collect();
        let mut samples = Vec::new();
        for c in 0..classes {
            for _ in 0..10 {
                let noisy = BipolarHv::new(
                    prototypes[c]
                        .components()
                        .iter()
                        .map(|&s| if rng.chance(0.3) { -s } else { s })
                        .collect(),
                );
                let mut logits = vec![0.0f32; classes];
                logits[c] = 6.0;
                samples.push((noisy, c, logits));
            }
        }
        let mut mem = AssociativeMemory::new(classes, dim);
        for (hv, label, _) in &samples {
            mem.bundle(*label, hv);
        }
        let trainer = DistillTrainer::new(DistillConfig::default());
        let mut acc = 0.0;
        for _ in 0..8 {
            acc = trainer.epoch(&mut mem, &samples);
        }
        assert!(acc > 0.9, "distillation training accuracy {acc}");
    }

    #[test]
    fn hinton_mode_also_produces_teacher_aligned_updates() {
        let mut rng = Rng::new(4);
        let mem = AssociativeMemory::new(3, 256);
        let h = random_hv(256, &mut rng);
        let trainer = DistillTrainer::new(DistillConfig {
            alpha: 1.0,
            mode: TemperatureMode::Hinton,
            ..DistillConfig::default()
        });
        let u = trainer.update_vector(&mem, &h, 0, &[0.0, 9.0, 0.0]);
        assert!(u[1] > u[0] && u[1] > u[2], "u = {u:?}");
    }

    #[test]
    fn higher_temperature_softens_distilled_updates() {
        let mut rng = Rng::new(5);
        let mem = AssociativeMemory::new(2, 256);
        let h = random_hv(256, &mut rng);
        let make = |t: f32| {
            DistillTrainer::new(DistillConfig {
                alpha: 1.0,
                temperature: t,
                ..DistillConfig::default()
            })
            .update_vector(&mem, &h, 0, &[4.0, -4.0])
        };
        let sharp = make(1.0);
        let soft = make(16.0);
        assert!(soft[0].abs() < sharp[0].abs(), "{soft:?} vs {sharp:?}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        DistillTrainer::new(DistillConfig { alpha: 1.5, ..DistillConfig::default() });
    }

    #[test]
    #[should_panic(expected = "teacher logit count")]
    fn wrong_teacher_width_panics() {
        let mem = AssociativeMemory::new(3, 64);
        let h = BipolarHv::from_signs(&vec![1.0; 64]);
        DistillTrainer::new(DistillConfig::default()).update_vector(&mem, &h, 0, &[1.0, 2.0]);
    }
}
