//! Seeded fault injection for HD memories and hypervectors.
//!
//! The paper's deployment story leans on HD robustness: the ZCU104 path
//! stores sign-binarised hypervectors and Vitis-AI INT8 class memories
//! "with very minor impacts on the prediction quality" (§VI-B). This
//! module makes that claim testable by modelling the corresponding
//! hardware faults — single-event upsets in packed binary words, bit
//! flips in INT8 weight cells, and stuck-at/saturation faults in f32
//! accumulator memory — as reproducible, seeded perturbations.
//!
//! A [`FaultPlan`] is a value: the same `(seed, rate, stream, target
//! shape)` always injects the same faults, so robustness sweeps are
//! exactly repeatable and individual failures can be replayed.
//!
//! # Examples
//!
//! ```
//! use nshd_hdc::{BipolarHv, FaultPlan};
//!
//! let mut hv = BipolarHv::from_signs(&vec![1.0; 256]).to_packed();
//! let plan = FaultPlan::new(7, 0.05);
//! let report = plan.flip_packed(&mut hv, 0);
//! assert_eq!(report.sites, 256);
//! // Injection is deterministic: the same plan on the same input
//! // produces the same faulted words.
//! let mut again = BipolarHv::from_signs(&vec![1.0; 256]).to_packed();
//! plan.flip_packed(&mut again, 0);
//! assert_eq!(hv, again);
//! ```

use crate::hypervector::{BipolarHv, PackedHv};
use crate::memory::AssociativeMemory;
use crate::quantized::{BinaryMemory, QuantizedMemory};
use nshd_tensor::Rng;

/// What one injection pass did: how many candidate sites were visited
/// and how many faults actually landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Candidate fault sites examined (bits or cells).
    pub sites: usize,
    /// Faults injected.
    pub faults: usize,
}

impl FaultReport {
    /// Observed fault rate `faults / sites` (0 for an empty target).
    pub fn rate(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.faults as f64 / self.sites as f64
        }
    }
}

/// How an f32 accumulator cell fails under [`FaultPlan::corrupt_associative`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellFault {
    /// Stuck-at-zero: the component is erased.
    Zero,
    /// Saturated high: the component jumps to +max|memory|.
    SaturateHigh,
    /// Saturated low: the component jumps to −max|memory|.
    SaturateLow,
}

/// A seeded, reproducible fault-injection plan.
///
/// Each `inject` method derives its own random stream from
/// `(seed, stream)`, so one plan can corrupt several targets with
/// independent — yet individually replayable — fault patterns. The
/// `rate` is the per-site fault probability (per bit for binary
/// targets, per cell for INT8/f32 targets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f32,
}

impl FaultPlan {
    /// Creates a plan injecting faults at `rate` per site.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn new(seed: u64, rate: f32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1], got {rate}");
        FaultPlan { seed, rate }
    }

    /// The per-site fault probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rng(&self, stream: u64) -> Rng {
        // Mix the stream into the seed the same way `Rng::fork` separates
        // component streams, without consuming plan state.
        Rng::new(self.seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xFA17)
    }

    /// Flips each bit of a packed hypervector with probability `rate` —
    /// the single-event-upset model for the FPGA's bit-packed storage.
    pub fn flip_packed(&self, hv: &mut PackedHv, stream: u64) -> FaultReport {
        let mut rng = self.rng(stream);
        let mut report = FaultReport { sites: hv.dim(), faults: 0 };
        for i in 0..hv.dim() {
            if rng.chance(self.rate) {
                hv.flip_bit(i);
                report.faults += 1;
            }
        }
        report
    }

    /// Flips each component's sign in a dense bipolar hypervector with
    /// probability `rate` — query-side corruption for the unpacked paths.
    pub fn flip_bipolar(&self, hv: &mut BipolarHv, stream: u64) -> FaultReport {
        let mut rng = self.rng(stream);
        let mut report = FaultReport { sites: hv.dim(), faults: 0 };
        for i in 0..hv.dim() {
            if rng.chance(self.rate) {
                hv.flip(i);
                report.faults += 1;
            }
        }
        report
    }

    /// Flips bits across every class of a binary class memory — the
    /// deployed-model analog of [`flip_packed`](Self::flip_packed).
    pub fn flip_binary_memory(&self, memory: &mut BinaryMemory, stream: u64) -> FaultReport {
        let mut total = FaultReport::default();
        for c in 0..memory.num_classes() {
            let r = self.flip_packed(memory.class_mut(c), stream.wrapping_add(c as u64 + 1));
            total.sites += r.sites;
            total.faults += r.faults;
        }
        total
    }

    /// Perturbs INT8 cells of a quantised class memory: each cell is hit
    /// with probability `rate`, and a hit flips one uniformly chosen bit
    /// of the two's-complement byte — the Vitis-AI DPU weight-memory
    /// upset model.
    pub fn perturb_quantized(&self, memory: &mut QuantizedMemory, stream: u64) -> FaultReport {
        let mut rng = self.rng(stream);
        let mut report = FaultReport::default();
        for c in 0..memory.num_classes() {
            for cell in memory.class_mut(c) {
                report.sites += 1;
                if rng.chance(self.rate) {
                    let bit = rng.below(8) as u32;
                    *cell = (*cell as u8 ^ (1u8 << bit)) as i8;
                    report.faults += 1;
                }
            }
        }
        report
    }

    /// Corrupts f32 accumulator cells of an associative memory: each
    /// component is hit with probability `rate`, and a hit either zeroes
    /// it or saturates it to ±max|memory| — the stuck-at / overwrite
    /// model for accumulator RAM.
    pub fn corrupt_associative(&self, memory: &mut AssociativeMemory, stream: u64) -> FaultReport {
        let mut rng = self.rng(stream);
        // Saturation level: the largest magnitude anywhere in the memory
        // (a blown cell jumps to the rail, not to infinity).
        let mut rail = 0.0f32;
        for c in 0..memory.num_classes() {
            for &v in memory.class(c) {
                rail = rail.max(v.abs());
            }
        }
        if rail == 0.0 {
            rail = 1.0;
        }
        let mut report = FaultReport::default();
        for c in 0..memory.num_classes() {
            for cell in memory.class_mut(c) {
                report.sites += 1;
                if rng.chance(self.rate) {
                    let kind = match rng.below(3) {
                        0 => CellFault::Zero,
                        1 => CellFault::SaturateHigh,
                        _ => CellFault::SaturateLow,
                    };
                    *cell = match kind {
                        CellFault::Zero => 0.0,
                        CellFault::SaturateHigh => rail,
                        CellFault::SaturateLow => -rail,
                    };
                    report.faults += 1;
                }
            }
        }
        report
    }
}

impl FaultReport {
    /// Accumulates another pass's sites and faults into this report.
    fn absorb(&mut self, other: FaultReport) {
        self.sites += other.sites;
        self.faults += other.faults;
    }
}

/// An ordered composition of [`FaultPlan`]s — the building block chaos
/// scenarios are assembled from.
///
/// Each step pairs a plan with the stream it injects on, so a scenario
/// like "a burst of SEUs followed by a stuck-at sweep" is one value that
/// can be applied to any memory format, replayed exactly, and shared
/// between the robustness sweep and the serving-tier chaos harness.
/// Steps apply in insertion order; because later steps perturb the
/// output of earlier ones, order is part of the scenario's identity.
///
/// # Examples
///
/// ```
/// use nshd_hdc::{FaultPlan, FaultScenario};
///
/// let scenario = FaultScenario::new()
///     .with(FaultPlan::new(7, 0.02), 1)
///     .with(FaultPlan::new(8, 0.001), 2);
/// assert_eq!(scenario.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScenario {
    steps: Vec<(FaultPlan, u64)>,
}

impl FaultScenario {
    /// An empty scenario (applying it is the identity).
    pub fn new() -> Self {
        FaultScenario::default()
    }

    /// Appends one `(plan, stream)` injection step.
    #[must_use]
    pub fn with(mut self, plan: FaultPlan, stream: u64) -> Self {
        self.steps.push((plan, stream));
        self
    }

    /// Number of injection steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the scenario has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The composed steps, in application order.
    pub fn steps(&self) -> &[(FaultPlan, u64)] {
        &self.steps
    }

    /// Applies every step's [`FaultPlan::corrupt_associative`] in order,
    /// returning the summed report.
    pub fn apply_associative(&self, memory: &mut AssociativeMemory) -> FaultReport {
        let mut total = FaultReport::default();
        for (plan, stream) in &self.steps {
            total.absorb(plan.corrupt_associative(memory, *stream));
        }
        total
    }

    /// Applies every step's [`FaultPlan::perturb_quantized`] in order,
    /// returning the summed report.
    pub fn apply_quantized(&self, memory: &mut QuantizedMemory) -> FaultReport {
        let mut total = FaultReport::default();
        for (plan, stream) in &self.steps {
            total.absorb(plan.perturb_quantized(memory, *stream));
        }
        total
    }

    /// Applies every step's [`FaultPlan::flip_binary_memory`] in order,
    /// returning the summed report.
    pub fn apply_binary(&self, memory: &mut BinaryMemory) -> FaultReport {
        let mut total = FaultReport::default();
        for (plan, stream) in &self.steps {
            total.absorb(plan.flip_binary_memory(memory, *stream));
        }
        total
    }

    /// Applies every step's [`FaultPlan::flip_packed`] in order,
    /// returning the summed report.
    pub fn apply_packed(&self, hv: &mut PackedHv) -> FaultReport {
        let mut total = FaultReport::default();
        for (plan, stream) in &self.steps {
            total.absorb(plan.flip_packed(hv, *stream));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.chance(0.5) { 1 } else { -1 }).collect())
    }

    fn trained_memory(classes: usize, dim: usize, seed: u64) -> AssociativeMemory {
        let mut rng = Rng::new(seed);
        let mut mem = AssociativeMemory::new(classes, dim);
        for c in 0..classes {
            for _ in 0..8 {
                mem.bundle(c, &random_hv(dim, &mut rng));
            }
        }
        mem
    }

    #[test]
    fn zero_rate_is_identity_everywhere() {
        let plan = FaultPlan::new(1, 0.0);
        let mut rng = Rng::new(2);
        let mut packed = random_hv(200, &mut rng).to_packed();
        let orig_packed = packed.clone();
        assert_eq!(plan.flip_packed(&mut packed, 0).faults, 0);
        assert_eq!(packed, orig_packed);

        let mem = trained_memory(3, 128, 3);
        let mut f32_mem = mem.clone();
        assert_eq!(plan.corrupt_associative(&mut f32_mem, 0).faults, 0);
        assert_eq!(f32_mem, mem);

        let mut quant = QuantizedMemory::from_memory(&mem);
        let orig_quant = quant.clone();
        assert_eq!(plan.perturb_quantized(&mut quant, 0).faults, 0);
        assert_eq!(quant, orig_quant);

        let mut binary = BinaryMemory::from_memory(&mem);
        let orig_binary = binary.clone();
        assert_eq!(plan.flip_binary_memory(&mut binary, 0).faults, 0);
        assert_eq!(binary, orig_binary);
    }

    #[test]
    fn full_rate_flips_every_bit() {
        let plan = FaultPlan::new(5, 1.0);
        let mut rng = Rng::new(6);
        let hv = random_hv(130, &mut rng);
        let mut packed = hv.to_packed();
        let report = plan.flip_packed(&mut packed, 0);
        assert_eq!(report.faults, 130);
        assert_eq!(report.rate(), 1.0);
        // Every sign inverted.
        for i in 0..130 {
            assert_eq!(packed.sign_at(i), -hv.components()[i]);
        }
    }

    #[test]
    fn injection_is_deterministic_per_stream() {
        let plan = FaultPlan::new(11, 0.2);
        let mem = trained_memory(4, 256, 7);

        let mut a = BinaryMemory::from_memory(&mem);
        let mut b = BinaryMemory::from_memory(&mem);
        let ra = plan.flip_binary_memory(&mut a, 3);
        let rb = plan.flip_binary_memory(&mut b, 3);
        assert_eq!(ra, rb);
        assert_eq!(a, b);

        // A different stream gives a different (but valid) pattern.
        let mut c = BinaryMemory::from_memory(&mem);
        plan.flip_binary_memory(&mut c, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(13, 0.1);
        let mem = trained_memory(10, 2_000, 8);
        let mut quant = QuantizedMemory::from_memory(&mem);
        let report = plan.perturb_quantized(&mut quant, 0);
        assert_eq!(report.sites, 20_000);
        let observed = report.rate();
        assert!((observed - 0.1).abs() < 0.02, "observed rate {observed}");
    }

    #[test]
    fn corrupt_associative_saturates_to_rail() {
        let plan = FaultPlan::new(17, 0.5);
        let mut mem = trained_memory(3, 512, 9);
        let rail = mem
            .class(0)
            .iter()
            .chain(mem.class(1))
            .chain(mem.class(2))
            .fold(0.0f32, |m, v| m.max(v.abs()));
        plan.corrupt_associative(&mut mem, 0);
        assert!(mem.is_finite());
        for c in 0..3 {
            for &v in mem.class(c) {
                assert!(v.abs() <= rail, "component {v} beyond rail {rail}");
            }
        }
    }

    #[test]
    fn packed_padding_survives_injection() {
        // dim = 70 leaves 58 padding bits in the last word; the invariant
        // checked by PackedHv::new must hold after heavy injection.
        let plan = FaultPlan::new(19, 0.9);
        let mut rng = Rng::new(10);
        let mut packed = random_hv(70, &mut rng).to_packed();
        plan.flip_packed(&mut packed, 0);
        let _ = PackedHv::new(packed.words().to_vec(), 70);
    }

    #[test]
    fn moderate_faults_degrade_accuracy_gracefully() {
        // A well-trained binary memory keeps most of its accuracy at a 2%
        // bit-flip rate and does not panic even at 30%.
        let mut rng = Rng::new(20);
        let dim = 4_096;
        let classes = 5;
        let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, &mut rng)).collect();
        let mut mem = AssociativeMemory::new(classes, dim);
        let mut test = Vec::new();
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..6 {
                let noisy = BipolarHv::new(
                    proto
                        .components()
                        .iter()
                        .map(|&s| if rng.chance(0.2) { -s } else { s })
                        .collect(),
                );
                mem.bundle(c, &noisy);
                test.push((noisy, c));
            }
        }
        let clean = BinaryMemory::from_memory(&mem);
        let clean_acc = clean.accuracy(&test);
        assert!(clean_acc > 0.9, "clean accuracy {clean_acc}");

        let mut light = clean.clone();
        FaultPlan::new(21, 0.02).flip_binary_memory(&mut light, 0);
        let light_acc = light.accuracy(&test);
        assert!(light_acc > clean_acc - 0.15, "2% flips collapsed accuracy to {light_acc}");

        let mut heavy = clean.clone();
        FaultPlan::new(22, 0.3).flip_binary_memory(&mut heavy, 0);
        let heavy_acc = heavy.accuracy(&test);
        // No panic, and a valid accuracy either way.
        assert!((0.0..=1.0).contains(&heavy_acc));
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn out_of_range_rate_panics() {
        FaultPlan::new(1, 1.5);
    }

    #[test]
    fn empty_scenario_is_identity() {
        let scenario = FaultScenario::new();
        assert!(scenario.is_empty());
        let mut mem = trained_memory(3, 128, 31);
        let orig = mem.clone();
        assert_eq!(scenario.apply_associative(&mut mem), FaultReport::default());
        assert_eq!(mem, orig);
    }

    #[test]
    fn composed_scenario_equals_sequential_application() {
        let p1 = FaultPlan::new(41, 0.05);
        let p2 = FaultPlan::new(42, 0.02);
        let scenario = FaultScenario::new().with(p1, 1).with(p2, 2);
        assert_eq!(scenario.len(), 2);
        assert_eq!(scenario.steps().len(), 2);

        let base = trained_memory(4, 256, 33);
        // By hand, in the same order.
        let mut manual = base.clone();
        let mut expect = p1.corrupt_associative(&mut manual, 1);
        expect.absorb(p2.corrupt_associative(&mut manual, 2));
        // Through the scenario.
        let mut composed = base.clone();
        let report = scenario.apply_associative(&mut composed);
        assert_eq!(report, expect);
        assert_eq!(composed, manual);

        // Deterministic: a replay lands the identical faults.
        let mut replay = base.clone();
        scenario.apply_associative(&mut replay);
        assert_eq!(replay, composed);

        // Order matters and is preserved: the reversed scenario differs.
        let reversed = FaultScenario::new().with(p2, 2).with(p1, 1);
        let mut swapped = base.clone();
        reversed.apply_associative(&mut swapped);
        assert_ne!(swapped, composed);
    }

    #[test]
    fn scenario_covers_every_memory_format() {
        let scenario =
            FaultScenario::new().with(FaultPlan::new(51, 0.1), 1).with(FaultPlan::new(52, 0.05), 2);
        let mem = trained_memory(3, 192, 35);

        let mut quant = QuantizedMemory::from_memory(&mem);
        let qr = scenario.apply_quantized(&mut quant);
        assert_eq!(qr.sites, 2 * 3 * 192);
        assert!(qr.faults > 0);

        let mut binary = BinaryMemory::from_memory(&mem);
        let br = scenario.apply_binary(&mut binary);
        assert_eq!(br.sites, 2 * 3 * 192);
        assert!(br.faults > 0);

        let mut packed = random_hv(192, &mut Rng::new(36)).to_packed();
        let pr = scenario.apply_packed(&mut packed);
        assert_eq!(pr.sites, 2 * 192);
        // Padding bits stay clean through composed injection.
        let _ = PackedHv::new(packed.words().to_vec(), 192);
        assert!(pr.faults > 0);
    }
}
