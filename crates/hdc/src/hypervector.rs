//! Hypervector representations: dense bipolar and bit-packed binary.
//!
//! The paper's optimized GPGPU kernels exploit the binary-centric nature
//! of hypervectors (constant-memory bit storage, add/sub-by-sign instead
//! of multiplication). On CPU the analogous optimisation is `u64`
//! bit-packing with popcount similarity — [`PackedHv`]. The reference
//! (unpacked) representation is [`BipolarHv`] with `i8` components.

use std::fmt;

/// A dense bipolar hypervector with components in `{-1, +1}` stored as
/// `i8`.
///
/// # Examples
///
/// ```
/// use nshd_hdc::BipolarHv;
///
/// let h = BipolarHv::from_signs(&[1.0, -2.0, 0.5]);
/// assert_eq!(h.components(), &[1, -1, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BipolarHv {
    comps: Vec<i8>,
}

impl BipolarHv {
    /// Creates a hypervector from raw bipolar components.
    ///
    /// # Panics
    ///
    /// Panics if any component is not `-1` or `+1`.
    pub fn new(comps: Vec<i8>) -> Self {
        assert!(comps.iter().all(|&c| c == 1 || c == -1), "bipolar components must be ±1");
        BipolarHv { comps }
    }

    /// Creates a hypervector by taking the sign of each value (`sign(0)`
    /// maps to `+1`, a fixed tie-break that keeps encoding deterministic).
    pub fn from_signs(values: &[f32]) -> Self {
        BipolarHv { comps: values.iter().map(|&v| if v < 0.0 { -1i8 } else { 1 }).collect() }
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.comps.len()
    }

    /// Whether the hypervector has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// The raw `±1` components.
    pub fn components(&self) -> &[i8] {
        &self.comps
    }

    /// Components widened to `f32` (for accumulation into dense class
    /// vectors).
    pub fn to_f32(&self) -> Vec<f32> {
        self.comps.iter().map(|&c| c as f32).collect()
    }

    /// Flips the sign of component `index` — the dense-side bit-flip used
    /// by fault injection ([`crate::FaultPlan`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn flip(&mut self, index: usize) {
        self.comps[index] = -self.comps[index];
    }

    /// Packs into the binary representation (`+1 → 1`, `-1 → 0`).
    pub fn to_packed(&self) -> PackedHv {
        let dim = self.comps.len();
        let mut words = vec![0u64; dim.div_ceil(64)];
        for (i, &c) in self.comps.iter().enumerate() {
            if c > 0 {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        PackedHv { words, dim }
    }
}

impl fmt::Debug for BipolarHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BipolarHv(dim={}, [", self.dim())?;
        for (i, c) in self.comps.iter().take(16).enumerate() {
            if i > 0 {
                write!(f, "")?;
            }
            write!(f, "{}", if *c > 0 { '+' } else { '-' })?;
        }
        if self.dim() > 16 {
            write!(f, "…")?;
        }
        write!(f, "])")
    }
}

/// A binary hypervector packed 64 components per machine word
/// (`+1 → bit 1`, `-1 → bit 0`).
///
/// Dot products become XNOR + popcount: for bipolar vectors,
/// `dot = D − 2·hamming`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedHv {
    words: Vec<u64>,
    dim: usize,
}

impl PackedHv {
    /// Creates a packed hypervector from raw words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly `ceil(dim/64)` long or padding
    /// bits beyond `dim` are set.
    pub fn new(words: Vec<u64>, dim: usize) -> Self {
        assert_eq!(words.len(), dim.div_ceil(64), "word count must match dimension");
        if !dim.is_multiple_of(64) {
            let mask = !0u64 << (dim % 64);
            assert_eq!(
                words.last().copied().unwrap_or(0) & mask,
                0,
                "padding bits beyond dim must be zero"
            );
        }
        PackedHv { words, dim }
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words (`ceil(dim/64)` of them; unused high bits are 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bit (as `±1`) at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn sign_at(&self, index: usize) -> i8 {
        assert!(index < self.dim);
        if self.words[index / 64] >> (index % 64) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Flips the bit at `index` — the packed-word single-event-upset used
    /// by fault injection ([`crate::FaultPlan`]). Padding bits beyond
    /// `dim` are unreachable, so the class invariant is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn flip_bit(&mut self, index: usize) {
        assert!(index < self.dim, "bit index out of range");
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// Unpacks to the dense bipolar representation.
    pub fn to_bipolar(&self) -> BipolarHv {
        BipolarHv { comps: (0..self.dim).map(|i| self.sign_at(i)).collect() }
    }

    /// Hamming distance to another packed hypervector.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hamming(&self, other: &PackedHv) -> u32 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        self.words.iter().zip(other.words.iter()).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Bipolar dot product computed via popcount: `D − 2·hamming`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &PackedHv) -> i64 {
        self.dim as i64 - 2 * self.hamming(other) as i64
    }

    /// XOR-binding with another packed hypervector (equivalent to
    /// elementwise multiplication of bipolar vectors).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bind(&self, other: &PackedHv) -> PackedHv {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        // XNOR preserves the +1·+1 = +1 convention: equal bits → 1.
        let mut words: Vec<u64> =
            self.words.iter().zip(other.words.iter()).map(|(a, b)| !(a ^ b)).collect();
        if !self.dim.is_multiple_of(64) {
            let last = words.len() - 1;
            words[last] &= (1u64 << (self.dim % 64)) - 1;
        }
        PackedHv { words, dim: self.dim }
    }
}

impl fmt::Debug for PackedHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedHv(dim={}, words={})", self.dim, self.words.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_signs_maps_zero_to_plus_one() {
        let h = BipolarHv::from_signs(&[0.0, -0.1, 3.0]);
        assert_eq!(h.components(), &[1, -1, 1]);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn invalid_components_panic() {
        BipolarHv::new(vec![1, 0, -1]);
    }

    #[test]
    fn pack_unpack_round_trips() {
        let signs: Vec<f32> = (0..131).map(|i| if i % 3 == 0 { -1.0 } else { 1.0 }).collect();
        let h = BipolarHv::from_signs(&signs);
        let packed = h.to_packed();
        assert_eq!(packed.dim(), 131);
        assert_eq!(packed.to_bipolar(), h);
    }

    #[test]
    fn packed_dot_equals_dense_dot() {
        let a = BipolarHv::from_signs(
            &(0..100).map(|i| ((i * 7 % 5) as f32) - 2.0).collect::<Vec<_>>(),
        );
        let b = BipolarHv::from_signs(
            &(0..100).map(|i| ((i * 3 % 7) as f32) - 3.0).collect::<Vec<_>>(),
        );
        let dense_dot: i64 =
            a.components().iter().zip(b.components()).map(|(&x, &y)| (x as i64) * (y as i64)).sum();
        assert_eq!(a.to_packed().dot(&b.to_packed()), dense_dot);
    }

    #[test]
    fn self_dot_is_dim_and_hamming_zero() {
        let h = BipolarHv::from_signs(&(0..77).map(|i| (i as f32) - 38.0).collect::<Vec<_>>());
        let p = h.to_packed();
        assert_eq!(p.dot(&p), 77);
        assert_eq!(p.hamming(&p), 0);
    }

    #[test]
    fn xor_bind_matches_bipolar_multiplication() {
        let a = BipolarHv::from_signs(&(0..70).map(|i| ((i % 2) as f32) - 0.5).collect::<Vec<_>>());
        let b = BipolarHv::from_signs(&(0..70).map(|i| ((i % 3) as f32) - 1.0).collect::<Vec<_>>());
        let bound = a.to_packed().bind(&b.to_packed()).to_bipolar();
        for i in 0..70 {
            assert_eq!(
                bound.components()[i],
                a.components()[i] * b.components()[i],
                "component {i}"
            );
        }
    }

    #[test]
    fn bind_is_self_inverse() {
        let a = BipolarHv::from_signs(
            &(0..64).map(|i| ((i * 13 % 3) as f32) - 1.0).collect::<Vec<_>>(),
        );
        let b = BipolarHv::from_signs(
            &(0..64).map(|i| ((i * 11 % 5) as f32) - 2.0).collect::<Vec<_>>(),
        );
        let pa = a.to_packed();
        let pb = b.to_packed();
        assert_eq!(pa.bind(&pb).bind(&pb), pa);
    }

    #[test]
    fn padding_bits_stay_clear_after_bind() {
        let a = BipolarHv::from_signs(&vec![-1.0; 70]).to_packed();
        let b = BipolarHv::from_signs(&vec![-1.0; 70]).to_packed();
        let bound = a.bind(&b); // (-1)·(-1) = +1 everywhere
        assert_eq!(bound.to_bipolar().components(), &vec![1i8; 70][..]);
        // Reconstruct through new() to assert padding invariant.
        let _ = PackedHv::new(bound.words().to_vec(), 70);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = BipolarHv::from_signs(&vec![1.0; 64]).to_packed();
        let b = BipolarHv::from_signs(&vec![1.0; 65]).to_packed();
        a.dot(&b);
    }
}
