//! # nshd-hdc
//!
//! Hyperdimensional computing for the NSHD workspace: hypervector
//! representations, HD arithmetic, encoders, the associative class
//! memory, and the retraining rules — MASS (CascadeHD) and the NSHD
//! paper's knowledge-distillation extension (Algorithm 1) — plus the
//! straight-through-estimator decoding that trains the manifold layer
//! across the HD encoder.
//!
//! Three encoders cover the paper's model space:
//!
//! - [`RandomProjection`] — Φ_P, the encoding NSHD and BaselineHD use;
//! - [`NonlinearEncoder`] — ID–level encoding, the standalone VanillaHD
//!   baseline;
//! - [`LshEncoder`] — random-hyperplane reduction from the prior work the
//!   paper compares against.
//!
//! # Examples
//!
//! ```
//! use nshd_hdc::{bundle_init, AssociativeMemory, MassTrainer, RandomProjection};
//!
//! let proj = RandomProjection::new(8, 2048, 7);
//! let samples: Vec<_> = (0..4)
//!     .map(|i| {
//!         let v: Vec<f32> = (0..8).map(|j| ((i * 8 + j) as f32).sin()).collect();
//!         (proj.encode(&v), i % 2)
//!     })
//!     .collect();
//! let mut memory = bundle_init(2, 2048, &samples);
//! MassTrainer::new(0.2).epoch(&mut memory, &samples);
//! assert_eq!(memory.num_classes(), 2);
//! ```

#![warn(missing_docs)]

mod distill;
mod fault;
mod hypervector;
mod lsh;
mod mass;
mod memory;
mod nonlinear;
mod online;
mod ops;
mod projection;
mod quantized;
mod similarity;
mod snapshot;
mod ste;
mod symbolic;

pub use distill::{DistillConfig, DistillTrainer, TemperatureMode};
pub use fault::{FaultPlan, FaultReport, FaultScenario};
pub use hypervector::{BipolarHv, PackedHv};
pub use lsh::LshEncoder;
pub use mass::{bundle_init, MassTrainer};
pub use memory::{AssociativeMemory, MemoryError};
pub use nonlinear::NonlinearEncoder;
pub use online::{EpochReport, OnlineTrainer};
pub use ops::{bind, bundle, bundle_majority, permute, sign_with_tiebreak};
pub use projection::{BatchEncoder, RandomProjection};
pub use quantized::{BinaryMemory, QuantizedMemory};
pub use similarity::{cosine_dense_bipolar, cosine_packed, dot_dense_bipolar};
pub use snapshot::{MemoryCell, MemorySnapshot};
pub use ste::{apply_ste, feature_gradient, hyperspace_error, SteConfig};
pub use symbolic::{encode_record, encode_sequence, query_record, ItemMemory};
