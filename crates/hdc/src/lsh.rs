//! Random-hyperplane LSH encoding — the feature-reduction strategy of
//! the prior work the paper calls BaselineHD (Neubert et al., ref [9]).
//!
//! Each output bit is the sign of a projection onto a random Gaussian
//! hyperplane. Unlike NSHD's learned manifold layer, the reduction is
//! data-independent, which is exactly the deficiency the paper's manifold
//! learner addresses.

use crate::hypervector::BipolarHv;
use nshd_tensor::Rng;

/// A random-hyperplane locality-sensitive-hashing encoder.
#[derive(Debug, Clone)]
pub struct LshEncoder {
    features: usize,
    dim: usize,
    /// `dim × features` Gaussian hyperplane normals, row-major.
    planes: Vec<f32>,
}

impl LshEncoder {
    /// Creates an encoder hashing `features`-dimensional inputs to
    /// `dim`-bit hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `dim == 0`.
    pub fn new(features: usize, dim: usize, seed: u64) -> Self {
        assert!(features > 0 && dim > 0);
        let mut rng = Rng::new(seed);
        let planes = (0..dim * features).map(|_| rng.normal()).collect();
        LshEncoder { features, dim, planes }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a feature vector: bit *d* is `sign(⟨w_d, v⟩)`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.features()`.
    pub fn encode(&self, values: &[f32]) -> BipolarHv {
        assert_eq!(values.len(), self.features, "feature count mismatch");
        let signs: Vec<f32> = (0..self.dim)
            .map(|d| {
                let row = &self.planes[d * self.features..(d + 1) * self.features];
                nshd_tensor::dot(row, values)
            })
            .collect();
        BipolarHv::from_signs(&signs)
    }

    /// MACs per encoded sample: a full dense projection, `F·D` — the cost
    /// the paper's Fig. 5 charges BaselineHD for.
    pub fn macs_per_encode(&self) -> u64 {
        (self.features * self.dim) as u64
    }

    /// Parameter count (`F·D` hyperplane coefficients).
    pub fn param_count(&self) -> usize {
        self.features * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine_packed;

    #[test]
    fn preserves_angular_locality() {
        // LSH guarantee: P[bit differs] = angle/π, so cosine-similar
        // inputs share most bits.
        let enc = LshEncoder::new(24, 4096, 1);
        let mut rng = Rng::new(2);
        let v: Vec<f32> = (0..24).map(|_| rng.normal()).collect();
        let mut close = v.clone();
        for x in &mut close {
            *x += rng.normal() * 0.05;
        }
        let far: Vec<f32> = (0..24).map(|_| rng.normal()).collect();
        let h = enc.encode(&v).to_packed();
        let hc = enc.encode(&close).to_packed();
        let hf = enc.encode(&far).to_packed();
        assert!(cosine_packed(&h, &hc) > 0.8);
        assert!(cosine_packed(&h, &hf).abs() < 0.4);
    }

    #[test]
    fn scale_invariance_of_signs() {
        // LSH bits depend only on direction, not magnitude.
        let enc = LshEncoder::new(8, 512, 3);
        let v = [0.3, -0.7, 1.1, 0.2, -0.9, 0.5, 0.0, 2.0];
        let scaled: Vec<f32> = v.iter().map(|x| x * 7.5).collect();
        assert_eq!(enc.encode(&v), enc.encode(&scaled));
    }

    #[test]
    fn deterministic_per_seed() {
        let v = [1.0, -1.0, 0.5];
        assert_eq!(LshEncoder::new(3, 64, 4).encode(&v), LshEncoder::new(3, 64, 4).encode(&v));
        assert_ne!(LshEncoder::new(3, 64, 4).encode(&v), LshEncoder::new(3, 64, 5).encode(&v));
    }

    #[test]
    fn cost_accounting() {
        let enc = LshEncoder::new(1000, 3000, 0);
        assert_eq!(enc.macs_per_encode(), 3_000_000);
        assert_eq!(enc.param_count(), 3_000_000);
    }

    use nshd_tensor::Rng;
}
