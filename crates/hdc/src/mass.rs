//! Many-class Similarity Scaling (MASS) retraining, from CascadeHD
//! (paper ref [3]) — the base HD retraining rule NSHD's distillation
//! extends.
//!
//! Per training sample `H` with label `y`:
//!
//! ```text
//! U = one_hot(y) − δ(M, H)
//! M ← M + λ · Uᵀ H
//! ```
//!
//! so misclassified samples produce large corrective updates on every
//! class at once (class-wise similarity differences), not just the
//! predicted and true classes.

use crate::hypervector::BipolarHv;
use crate::memory::AssociativeMemory;

/// The MASS retraining rule.
#[derive(Debug, Clone, PartialEq)]
pub struct MassTrainer {
    /// Learning rate λ.
    pub learning_rate: f32,
}

impl MassTrainer {
    /// Creates a trainer with learning rate λ.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn new(learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        MassTrainer { learning_rate }
    }

    /// Computes the MASS update vector `U = one_hot(y) − δ(M, H)` without
    /// applying it (exposed because the manifold learner consumes `U`).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or dimensions disagree.
    pub fn update_vector(
        &self,
        memory: &AssociativeMemory,
        hv: &BipolarHv,
        label: usize,
    ) -> Vec<f32> {
        assert!(label < memory.num_classes(), "label {label} out of range");
        let mut u = memory.similarities(hv);
        for v in &mut u {
            *v = -*v;
        }
        u[label] += 1.0;
        u
    }

    /// Applies one sample's update: `M ← M + λ·Uᵀ H`. Returns `U`.
    pub fn step(&self, memory: &mut AssociativeMemory, hv: &BipolarHv, label: usize) -> Vec<f32> {
        let u = self.update_vector(memory, hv, label);
        for (c, &uc) in u.iter().enumerate() {
            memory.add_scaled(c, hv, self.learning_rate * uc);
        }
        u
    }

    /// One pass over a labelled sample set; returns the pre-update
    /// training accuracy of the pass.
    pub fn epoch(&self, memory: &mut AssociativeMemory, samples: &[(BipolarHv, usize)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (hv, label) in samples {
            if memory.predict(hv) == *label {
                correct += 1;
            }
            self.step(memory, hv, *label);
        }
        correct as f32 / samples.len() as f32
    }
}

/// Initialises a memory by bundling every sample into its class — the
/// classic single-pass HD training that retraining then refines.
pub fn bundle_init(
    num_classes: usize,
    dim: usize,
    samples: &[(BipolarHv, usize)],
) -> AssociativeMemory {
    let mut memory = AssociativeMemory::new(num_classes, dim);
    for (hv, label) in samples {
        memory.bundle(*label, hv);
    }
    memory
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    /// Builds a noisy prototype classification task.
    fn noisy_task(
        classes: usize,
        per_class: usize,
        dim: usize,
        flip: f32,
        rng: &mut Rng,
    ) -> Vec<(BipolarHv, usize)> {
        let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, rng)).collect();
        let mut out = Vec::new();
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let noisy = BipolarHv::new(
                    proto
                        .components()
                        .iter()
                        .map(|&s| if rng.chance(flip) { -s } else { s })
                        .collect(),
                );
                out.push((noisy, c));
            }
        }
        out
    }

    #[test]
    fn update_vector_rewards_truth_and_penalises_rest() {
        let mut rng = Rng::new(1);
        let dim = 1024;
        let mut mem = AssociativeMemory::new(3, dim);
        let h = random_hv(dim, &mut rng);
        mem.bundle(2, &h); // memory currently favours the wrong class
        let trainer = MassTrainer::new(0.5);
        let u = trainer.update_vector(&mem, &h, 0);
        // True class (empty) gets u ≈ +1; the wrong confident class gets
        // u ≈ −1.
        assert!(u[0] > 0.9, "u = {u:?}");
        assert!(u[2] < -0.9, "u = {u:?}");
        // One step must flip the prediction toward the true class.
        trainer.step(&mut mem, &h, 0);
        let sims = mem.similarities(&h);
        assert!(sims[0] > 0.0);
    }

    #[test]
    fn retraining_improves_over_bundle_init() {
        let dim = 512;
        // High noise makes bundle-init imperfect so retraining has room;
        // train and test share prototypes by drawing from one generator.
        let mut rng = Rng::new(2);
        let both = noisy_task(5, 24, dim, 0.35, &mut rng);
        let (train, test): (Vec<_>, Vec<_>) =
            both.into_iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let train: Vec<_> = train.into_iter().map(|(_, s)| s).collect();
        let test: Vec<_> = test.into_iter().map(|(_, s)| s).collect();

        let mut mem = bundle_init(5, dim, &train);
        let before = mem.accuracy(&test);
        let trainer = MassTrainer::new(0.2);
        for _ in 0..10 {
            trainer.epoch(&mut mem, &train);
        }
        let after = mem.accuracy(&test);
        assert!(after >= before, "retraining must not reduce accuracy: {before} → {after}");
        assert!(after > 0.8, "retrained accuracy {after}");
    }

    #[test]
    fn correctly_classified_confident_samples_update_little() {
        let mut rng = Rng::new(3);
        let dim = 2048;
        let mut mem = AssociativeMemory::new(2, dim);
        let h = random_hv(dim, &mut rng);
        for _ in 0..20 {
            mem.bundle(0, &h);
        }
        let trainer = MassTrainer::new(1.0);
        let u = trainer.update_vector(&mem, &h, 0);
        // Similarity to class 0 is ≈ 1, so u[0] ≈ 0.
        assert!(u[0].abs() < 0.05, "u = {u:?}");
    }

    #[test]
    fn epoch_returns_pre_update_accuracy() {
        let mut rng = Rng::new(4);
        let dim = 256;
        let samples = noisy_task(2, 8, dim, 0.1, &mut rng);
        let mut mem = bundle_init(2, dim, &samples);
        let trainer = MassTrainer::new(0.1);
        let acc = trainer.epoch(&mut mem, &samples);
        assert!(acc > 0.9, "bundle-init training accuracy {acc}");
        assert_eq!(trainer.epoch(&mut AssociativeMemory::new(2, dim), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lr_panics() {
        MassTrainer::new(0.0);
    }
}
