//! The associative class memory: one accumulated hypervector per class.

use crate::hypervector::BipolarHv;
use crate::similarity::cosine_dense_bipolar;
use nshd_tensor::{matmul_bt, Tensor};
use std::fmt;

/// Typed rejection for malformed class matrices or out-of-range class
/// indices — the fallible counterpart of the panicking constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The class matrix has no rows.
    EmptyClasses,
    /// Class rows are zero-dimensional.
    ZeroDim,
    /// Row `class` has `actual` components where `expected` were
    /// required by the first row.
    Ragged {
        /// Index of the offending row.
        class: usize,
        /// Dimensionality established by the first row.
        expected: usize,
        /// Dimensionality of the offending row.
        actual: usize,
    },
    /// `class` does not index into a memory of `num_classes` rows.
    ClassOutOfRange {
        /// The requested class index.
        class: usize,
        /// Number of classes the memory actually holds.
        num_classes: usize,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::EmptyClasses => write!(f, "class matrix has no rows"),
            MemoryError::ZeroDim => write!(f, "zero-dimensional class hypervectors"),
            MemoryError::Ragged { class, expected, actual } => {
                write!(
                    f,
                    "ragged class matrix: row {class} has {actual} components, expected {expected}"
                )
            }
            MemoryError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range for memory of {num_classes} classes")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// An HD associative memory `M = [C_0 … C_{k-1}]` of dense class
/// hypervectors.
///
/// Class vectors are kept as `f32` accumulators (the standard HD learning
/// representation) so that bundling and retraining updates remain exact;
/// queries arrive as bipolar hypervectors and are compared by cosine
/// similarity, the normalised δ of the paper.
///
/// # Examples
///
/// ```
/// use nshd_hdc::{AssociativeMemory, BipolarHv};
///
/// let mut mem = AssociativeMemory::new(2, 64);
/// let h = BipolarHv::from_signs(&vec![1.0; 64]);
/// mem.bundle(0, &h);
/// assert_eq!(mem.predict(&h), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AssociativeMemory {
    dim: usize,
    classes: Vec<Vec<f32>>,
}

impl AssociativeMemory {
    /// Creates a zeroed memory for `num_classes` classes of dimension
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `dim == 0`.
    pub fn new(num_classes: usize, dim: usize) -> Self {
        assert!(num_classes > 0 && dim > 0);
        AssociativeMemory { dim, classes: vec![vec![0.0; dim]; num_classes] }
    }

    /// Rebuilds a memory from raw class accumulators (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, rows are zero-dimensional, or rows
    /// have differing lengths. Use
    /// [`try_from_classes`](AssociativeMemory::try_from_classes) to
    /// reject malformed input with a typed error instead.
    pub fn from_classes(classes: Vec<Vec<f32>>) -> Self {
        match Self::try_from_classes(classes) {
            Ok(memory) => memory,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible counterpart of
    /// [`from_classes`](AssociativeMemory::from_classes): rejects an
    /// empty matrix, zero-dimensional rows, and ragged rows with a
    /// [`MemoryError`] instead of panicking.
    pub fn try_from_classes(classes: Vec<Vec<f32>>) -> Result<Self, MemoryError> {
        let dim = match classes.first() {
            Some(first) => first.len(),
            None => return Err(MemoryError::EmptyClasses),
        };
        if dim == 0 {
            return Err(MemoryError::ZeroDim);
        }
        for (class, row) in classes.iter().enumerate() {
            if row.len() != dim {
                return Err(MemoryError::Ragged { class, expected: dim, actual: row.len() });
            }
        }
        Ok(AssociativeMemory { dim, classes })
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The accumulated class hypervector for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class(&self, class: usize) -> &[f32] {
        &self.classes[class]
    }

    /// Mutable access to the accumulated class hypervector for `class` —
    /// the hook fault injection ([`crate::FaultPlan`]) and rollback
    /// guards use to manipulate memory state directly.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_mut(&mut self, class: usize) -> &mut [f32] {
        &mut self.classes[class]
    }

    /// Fallible counterpart of [`class`](AssociativeMemory::class):
    /// returns a typed [`MemoryError`] for an out-of-range index instead
    /// of panicking.
    pub fn try_class(&self, class: usize) -> Result<&[f32], MemoryError> {
        self.classes
            .get(class)
            .map(Vec::as_slice)
            .ok_or(MemoryError::ClassOutOfRange { class, num_classes: self.classes.len() })
    }

    /// Fallible counterpart of
    /// [`class_mut`](AssociativeMemory::class_mut): returns a typed
    /// [`MemoryError`] for an out-of-range index instead of panicking.
    pub fn try_class_mut(&mut self, class: usize) -> Result<&mut [f32], MemoryError> {
        let num_classes = self.classes.len();
        self.classes
            .get_mut(class)
            .map(Vec::as_mut_slice)
            .ok_or(MemoryError::ClassOutOfRange { class, num_classes })
    }

    /// Grows the memory by one zeroed class row and returns the new
    /// class index — the online class-addition primitive HD-Glue uses to
    /// admit previously unseen labels without retraining the rest of the
    /// memory. The new class scores 0 similarity against every query
    /// until samples are bundled into it.
    pub fn add_class(&mut self) -> usize {
        self.classes.push(vec![0.0; self.dim]);
        self.classes.len() - 1
    }

    /// Whether every accumulated component is finite — the post-epoch /
    /// post-fault health check. A memory with NaN or ±∞ components makes
    /// `predict` panic on `partial_cmp`, so guards call this first.
    pub fn is_finite(&self) -> bool {
        self.classes.iter().all(|c| c.iter().all(|v| v.is_finite()))
    }

    /// Bundles a sample into a class: `C_c += H`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or dimensions disagree.
    pub fn bundle(&mut self, class: usize, hv: &BipolarHv) {
        self.add_scaled(class, hv, 1.0);
    }

    /// Scaled bundle: `C_c += weight · H` — the primitive both MASS and
    /// distillation retraining are built from.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or dimensions disagree.
    pub fn add_scaled(&mut self, class: usize, hv: &BipolarHv, weight: f32) {
        assert_eq!(hv.dim(), self.dim, "dimension mismatch");
        let mut sp = nshd_obs::span("hd_bundle");
        sp.add_flops(self.dim as u64);
        sp.add_bytes((self.dim + 8 * self.dim) as u64);
        let c = &mut self.classes[class];
        for (a, &s) in c.iter_mut().zip(hv.components()) {
            // Multiplication-free: add or subtract the weight by sign.
            if s > 0 {
                *a += weight;
            } else {
                *a -= weight;
            }
        }
    }

    /// Cosine similarity of a query against every class:
    /// `δ(M, H) ∈ [-1, 1]^k`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn similarities(&self, hv: &BipolarHv) -> Vec<f32> {
        let mut sp = nshd_obs::span("assoc_search");
        sp.add_flops(2 * (self.classes.len() * self.dim) as u64);
        sp.add_bytes((4 * (self.classes.len() * self.dim) + self.dim) as u64);
        self.classes.iter().map(|c| cosine_dense_bipolar(c, hv)).collect()
    }

    /// Predicted class: `argmax δ(M, H)`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn predict(&self, hv: &BipolarHv) -> usize {
        let sims = self.similarities(hv);
        sims.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite similarities"))
            .map(|(i, _)| i)
            .expect("memory has at least one class")
    }

    /// The class accumulators as a row-major `k×D` matrix, the layout
    /// batched similarity search scores against.
    pub fn class_matrix(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.classes.len() * self.dim);
        for c in &self.classes {
            data.extend_from_slice(c);
        }
        Tensor::from_vec(data, [self.classes.len(), self.dim]).expect("consistent class dims")
    }

    fn similarities_refs(&self, hvs: &[&BipolarHv]) -> Tensor {
        let n = hvs.len();
        let k = self.classes.len();
        if n == 0 {
            return Tensor::zeros([0, k]);
        }
        // The dominant FLOPs are attributed by the nested matmul_bt span;
        // this span names the stage.
        let _sp = nshd_obs::span("assoc_search");
        let mut qdata = Vec::with_capacity(n * self.dim);
        for hv in hvs {
            assert_eq!(hv.dim(), self.dim, "dimension mismatch");
            qdata.extend(hv.components().iter().map(|&c| c as f32));
        }
        let queries = Tensor::from_vec(qdata, [n, self.dim]).expect("query rows are D long");
        let mut sims = matmul_bt(&queries, &self.class_matrix());
        // Per-class normalisation: dot / (‖C_c‖·√D); zero-norm classes
        // score 0, matching `cosine_dense_bipolar`.
        let inv_sqrt_d = 1.0 / (self.dim as f32).sqrt();
        let col_scale: Vec<f32> = self
            .classes
            .iter()
            .map(|c| {
                let norm: f32 = c.iter().map(|d| d * d).sum::<f32>().sqrt();
                if norm == 0.0 {
                    0.0
                } else {
                    inv_sqrt_d / norm
                }
            })
            .collect();
        for row in sims.as_mut_slice().chunks_mut(k) {
            for (s, &scale) in row.iter_mut().zip(&col_scale) {
                *s *= scale;
            }
        }
        sims
    }

    /// Cosine similarities of a whole batch of queries against every
    /// class, as an `N×k` tensor — one [`matmul_bt`] instead of `N·k`
    /// scalar dot loops. Row `i` matches
    /// [`similarities`](AssociativeMemory::similarities) for `hvs[i]` up
    /// to float summation order.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension disagrees with the memory.
    pub fn similarities_batch(&self, hvs: &[BipolarHv]) -> Tensor {
        let refs: Vec<&BipolarHv> = hvs.iter().collect();
        self.similarities_refs(&refs)
    }

    /// Predicted classes for a whole batch of queries — the batched
    /// counterpart of [`predict`](AssociativeMemory::predict), with the
    /// same last-maximum tie-breaking.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension disagrees with the memory.
    pub fn predict_batch(&self, hvs: &[BipolarHv]) -> Vec<usize> {
        let refs: Vec<&BipolarHv> = hvs.iter().collect();
        self.predict_refs(&refs)
    }

    fn predict_refs(&self, hvs: &[&BipolarHv]) -> Vec<usize> {
        let k = self.classes.len();
        let sims = self.similarities_refs(hvs);
        sims.as_slice().chunks(k).map(argmax_last).collect()
    }

    /// Classification accuracy over a labelled set of hypervectors,
    /// scored through the batched similarity path.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn accuracy(&self, samples: &[(BipolarHv, usize)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        // Chunked so the N×D query matrix stays modest for large sets.
        let mut correct = 0usize;
        for chunk in samples.chunks(512) {
            let refs: Vec<&BipolarHv> = chunk.iter().map(|(hv, _)| hv).collect();
            let preds = self.predict_refs(&refs);
            correct += preds.iter().zip(chunk).filter(|(p, (_, label))| **p == *label).count();
        }
        correct as f32 / samples.len() as f32
    }

    /// Learning-parameter count (`k·D`, as Table II counts the HD model).
    pub fn param_count(&self) -> usize {
        self.classes.len() * self.dim
    }
}

/// Index of the last maximum in a row — the same tie-breaking
/// `Iterator::max_by` applies in [`AssociativeMemory::predict`].
fn argmax_last(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v >= row[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[test]
    fn bundled_prototype_is_retrieved() {
        let mut rng = Rng::new(1);
        let dim = 2048;
        let mut mem = AssociativeMemory::new(3, dim);
        let prototypes: Vec<BipolarHv> = (0..3).map(|_| random_hv(dim, &mut rng)).collect();
        // Bundle noisy variants of each prototype.
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..10 {
                let noisy = BipolarHv::new(
                    proto
                        .components()
                        .iter()
                        .map(|&s| if rng.chance(0.1) { -s } else { s })
                        .collect(),
                );
                mem.bundle(c, &noisy);
            }
        }
        // Fresh noisy queries retrieve the right class.
        for (c, proto) in prototypes.iter().enumerate() {
            let query = BipolarHv::new(
                proto.components().iter().map(|&s| if rng.chance(0.15) { -s } else { s }).collect(),
            );
            assert_eq!(mem.predict(&query), c);
        }
    }

    #[test]
    fn similarities_are_cosines_in_range() {
        let mut rng = Rng::new(2);
        let mut mem = AssociativeMemory::new(2, 512);
        let h = random_hv(512, &mut rng);
        mem.bundle(0, &h);
        let sims = mem.similarities(&h);
        assert!((sims[0] - 1.0).abs() < 1e-5, "self similarity {sims:?}");
        assert_eq!(sims[1], 0.0, "empty class similarity {sims:?}");
    }

    #[test]
    fn add_scaled_negative_weight_repels() {
        let mut rng = Rng::new(3);
        let mut mem = AssociativeMemory::new(2, 1024);
        let h = random_hv(1024, &mut rng);
        mem.bundle(0, &h);
        mem.bundle(1, &h);
        // Push class 1 away from h.
        mem.add_scaled(1, &h, -0.9);
        let sims = mem.similarities(&h);
        assert!(sims[0] > sims[1]);
        assert_eq!(mem.predict(&h), 0);
    }

    #[test]
    fn accuracy_over_labelled_set() {
        let mut rng = Rng::new(4);
        let dim = 1024;
        let mut mem = AssociativeMemory::new(2, dim);
        let a = random_hv(dim, &mut rng);
        let b = random_hv(dim, &mut rng);
        mem.bundle(0, &a);
        mem.bundle(1, &b);
        let set = vec![(a.clone(), 0), (b.clone(), 1), (a.clone(), 1)];
        assert!((mem.accuracy(&set) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(mem.accuracy(&[]), 0.0);
    }

    #[test]
    fn param_count_is_k_times_d() {
        assert_eq!(AssociativeMemory::new(10, 3000).param_count(), 30_000);
    }

    #[test]
    fn batched_similarities_match_per_sample_path() {
        let mut rng = Rng::new(5);
        let dim = 768;
        let mut mem = AssociativeMemory::new(4, dim);
        for c in 0..4 {
            for _ in 0..6 {
                let hv = random_hv(dim, &mut rng);
                mem.bundle(c, &hv);
            }
        }
        let queries: Vec<BipolarHv> = (0..9).map(|_| random_hv(dim, &mut rng)).collect();
        let batch = mem.similarities_batch(&queries);
        assert_eq!(batch.dims(), &[9, 4]);
        for (i, q) in queries.iter().enumerate() {
            let single = mem.similarities(q);
            for (c, &s) in single.iter().enumerate() {
                let b = batch.at(&[i, c]);
                assert!((b - s).abs() < 1e-5, "query {i} class {c}: {b} vs {s}");
            }
        }
        assert_eq!(
            mem.predict_batch(&queries),
            queries.iter().map(|q| mem.predict(q)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batched_zero_class_scores_zero() {
        let mut rng = Rng::new(6);
        let mut mem = AssociativeMemory::new(2, 256);
        let h = random_hv(256, &mut rng);
        mem.bundle(0, &h);
        let sims = mem.similarities_batch(std::slice::from_ref(&h));
        assert!((sims.at(&[0, 0]) - 1.0).abs() < 1e-5);
        assert_eq!(sims.at(&[0, 1]), 0.0, "empty class must score exactly 0");
    }

    #[test]
    fn batched_empty_query_set() {
        let mem = AssociativeMemory::new(3, 64);
        let sims = mem.similarities_batch(&[]);
        assert_eq!(sims.dims(), &[0, 3]);
        assert!(mem.predict_batch(&[]).is_empty());
    }

    #[test]
    fn class_matrix_is_row_major_accumulators() {
        let mut mem = AssociativeMemory::new(2, 3);
        mem.class_mut(1).copy_from_slice(&[1.0, -2.0, 3.0]);
        let m = mem.class_matrix();
        assert_eq!(m.dims(), &[2, 3]);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0, 1.0, -2.0, 3.0]);
    }
}
