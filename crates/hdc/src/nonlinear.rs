//! ID–level (nonlinear) encoding — the standalone-HD baseline the paper
//! calls VanillaHD.
//!
//! Each feature position gets a random *ID* hypervector; each quantised
//! feature value gets a *level* hypervector drawn from a correlated chain
//! (adjacent levels share most components). A sample encodes as
//! `sign(Σ_f ID_f ⊗ L_{q(v_f)})`. On raw pixels this is the
//! state-of-the-art "nonlinear encoding" whose CIFAR accuracy the paper's
//! introduction reports as 39.88% / 19.7%.

use crate::hypervector::BipolarHv;
use crate::ops::bind;
use nshd_tensor::Rng;

/// The ID–level encoder.
#[derive(Debug, Clone)]
pub struct NonlinearEncoder {
    features: usize,
    dim: usize,
    levels: usize,
    lo: f32,
    hi: f32,
    ids: Vec<BipolarHv>,
    level_hvs: Vec<BipolarHv>,
}

impl NonlinearEncoder {
    /// Creates an encoder for `features` inputs quantised into `levels`
    /// buckets over the value range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `features`, `dim` or `levels` is zero, or `lo >= hi`.
    pub fn new(features: usize, dim: usize, levels: usize, lo: f32, hi: f32, seed: u64) -> Self {
        assert!(features > 0 && dim > 0 && levels > 0);
        assert!(lo < hi, "invalid quantisation range [{lo}, {hi}]");
        let mut rng = Rng::new(seed);
        let ids: Vec<BipolarHv> = (0..features).map(|_| random_hv(dim, &mut rng)).collect();
        // Correlated level chain: flip disjoint segments of a random
        // permutation, so consecutive levels differ in exactly
        // D/(2·(levels−1)) components and the chain ends with exactly D/2
        // flipped — L_0 ⟂ L_{levels−1} while neighbours stay similar.
        let mut level_hvs = Vec::with_capacity(levels);
        let mut current: Vec<i8> = random_hv(dim, &mut rng).components().to_vec();
        level_hvs.push(BipolarHv::new(current.clone()));
        let order = rng.permutation(dim);
        let total_flips = dim / 2;
        let mut flipped = 0usize;
        for step in 1..levels {
            let target = total_flips * step / levels.saturating_sub(1).max(1);
            while flipped < target.min(dim) {
                let idx = order[flipped];
                current[idx] = -current[idx];
                flipped += 1;
            }
            level_hvs.push(BipolarHv::new(current.clone()));
        }
        NonlinearEncoder { features, dim, levels, lo, hi, ids, level_hvs }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Quantises a value into a level index.
    pub fn quantize(&self, v: f32) -> usize {
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((t * self.levels as f32) as usize).min(self.levels - 1)
    }

    /// Encodes a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.features()`.
    pub fn encode(&self, values: &[f32]) -> BipolarHv {
        assert_eq!(values.len(), self.features, "feature count mismatch");
        let mut acc = vec![0.0f32; self.dim];
        for (f, &v) in values.iter().enumerate() {
            let level = &self.level_hvs[self.quantize(v)];
            let bound = bind(&self.ids[f], level);
            for (a, &c) in acc.iter_mut().zip(bound.components()) {
                *a += c as f32;
            }
        }
        BipolarHv::from_signs(&acc)
    }

    /// MACs per encoded sample (Fig. 5 convention).
    pub fn macs_per_encode(&self) -> u64 {
        (self.features * self.dim) as u64
    }
}

fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
    BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine_packed;

    #[test]
    fn quantisation_buckets() {
        let enc = NonlinearEncoder::new(2, 64, 4, 0.0, 1.0, 1);
        assert_eq!(enc.quantize(-1.0), 0);
        assert_eq!(enc.quantize(0.1), 0);
        assert_eq!(enc.quantize(0.3), 1);
        assert_eq!(enc.quantize(0.6), 2);
        assert_eq!(enc.quantize(0.9), 3);
        assert_eq!(enc.quantize(2.0), 3);
    }

    #[test]
    fn level_chain_is_locally_similar_globally_orthogonal() {
        let enc = NonlinearEncoder::new(1, 8000, 16, 0.0, 1.0, 2);
        let first = enc.level_hvs.first().unwrap().to_packed();
        let second = enc.level_hvs.get(1).unwrap().to_packed();
        let last = enc.level_hvs.last().unwrap().to_packed();
        assert!(cosine_packed(&first, &second) > 0.85);
        assert!(cosine_packed(&first, &last).abs() < 0.35);
    }

    #[test]
    fn nearby_inputs_map_to_similar_hypervectors() {
        let enc = NonlinearEncoder::new(16, 4096, 32, -1.0, 1.0, 3);
        let v: Vec<f32> = (0..16).map(|i| ((i as f32) / 8.0) - 1.0).collect();
        let mut v_close = v.clone();
        for x in &mut v_close {
            *x += 0.02;
        }
        let v_far: Vec<f32> = v.iter().map(|x| -x).collect();
        let h = enc.encode(&v).to_packed();
        let hc = enc.encode(&v_close).to_packed();
        let hf = enc.encode(&v_far).to_packed();
        assert!(cosine_packed(&h, &hc) > cosine_packed(&h, &hf) + 0.2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NonlinearEncoder::new(4, 128, 8, 0.0, 1.0, 9);
        let b = NonlinearEncoder::new(4, 128, 8, 0.0, 1.0, 9);
        let v = [0.1, 0.4, 0.7, 0.9];
        assert_eq!(a.encode(&v), b.encode(&v));
    }

    #[test]
    #[should_panic(expected = "invalid quantisation range")]
    fn bad_range_panics() {
        NonlinearEncoder::new(1, 8, 2, 1.0, 0.0, 0);
    }
}
