//! OnlineHD-style adaptive single-pass training — the main alternative
//! to iterative MASS retraining in the HD learning literature, included
//! as a comparison point for the retraining benches.
//!
//! Each sample updates the memory once, weighted by how wrong the model
//! currently is: a correctly-and-confidently classified sample barely
//! moves the memory, a misclassified one moves both the true and the
//! falsely-predicted class strongly.

use crate::hypervector::BipolarHv;
use crate::memory::AssociativeMemory;

/// Outcome of one online-training pass over a labelled sample set.
///
/// Samples are visited in slice order and each update depends only on
/// the memory state left by the previous sample, so for a fixed memory,
/// sample order, and learning rate the counts are exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochReport {
    /// Samples visited in the pass.
    pub samples: usize,
    /// Samples whose *pre-update* prediction was wrong (each triggered
    /// the two-sided error-correcting update).
    pub misclassified: usize,
}

impl EpochReport {
    /// Pre-update accuracy of the pass; `0.0` for an empty epoch.
    pub fn accuracy(&self) -> f32 {
        if self.samples == 0 {
            0.0
        } else {
            (self.samples - self.misclassified) as f32 / self.samples as f32
        }
    }
}

/// The adaptive (OnlineHD-style) trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineTrainer {
    /// Base learning rate.
    pub learning_rate: f32,
}

impl OnlineTrainer {
    /// Creates a trainer with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn new(learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        OnlineTrainer { learning_rate }
    }

    /// Applies one sample's adaptive update:
    ///
    /// - if predicted correctly: `C_y += λ(1 − δ_y)·H` (gentle pull);
    /// - if predicted as `p ≠ y`: additionally `C_p −= λ(1 − δ_y)·H` —
    ///   both updates scale with how far the sample sits from its true
    ///   class, the OnlineHD rule.
    ///
    /// Returns `true` when the pre-update prediction was correct.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or dimensions disagree.
    pub fn step(&self, memory: &mut AssociativeMemory, hv: &BipolarHv, label: usize) -> bool {
        assert!(label < memory.num_classes(), "label {label} out of range");
        let sims = memory.similarities(hv);
        let predicted = sims
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite similarities"))
            .map(|(i, _)| i)
            .expect("at least one class");
        let pull = self.learning_rate * (1.0 - sims[label]);
        memory.add_scaled(label, hv, pull);
        if predicted != label {
            memory.add_scaled(predicted, hv, -pull);
            false
        } else {
            true
        }
    }

    /// One pass over a labelled sample set; returns pre-update accuracy.
    pub fn epoch(&self, memory: &mut AssociativeMemory, samples: &[(BipolarHv, usize)]) -> f32 {
        self.epoch_counts(memory, samples).accuracy()
    }

    /// One pass over a labelled sample set, reporting exact per-epoch
    /// misclassification counts — the deterministic signal the HD-Glue
    /// error-correction loop converges on.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range or dimensions disagree.
    pub fn epoch_counts(
        &self,
        memory: &mut AssociativeMemory,
        samples: &[(BipolarHv, usize)],
    ) -> EpochReport {
        let misclassified =
            samples.iter().filter(|(hv, label)| !self.step(memory, hv, *label)).count();
        EpochReport { samples: samples.len(), misclassified }
    }

    /// Runs `epochs` error-correcting passes and returns one
    /// [`EpochReport`] per pass, in order. Stops early once a pass sees
    /// zero misclassifications (further passes would still apply gentle
    /// pulls, but the error-correction signal is exhausted).
    pub fn train(
        &self,
        memory: &mut AssociativeMemory,
        samples: &[(BipolarHv, usize)],
        epochs: usize,
    ) -> Vec<EpochReport> {
        let mut reports = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let report = self.epoch_counts(memory, samples);
            let done = report.misclassified == 0;
            reports.push(report);
            if done {
                break;
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mass::{bundle_init, MassTrainer};
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[allow(clippy::type_complexity)]
    fn noisy_task(
        classes: usize,
        per_class: usize,
        dim: usize,
        flip: f32,
        rng: &mut Rng,
    ) -> (Vec<(BipolarHv, usize)>, Vec<(BipolarHv, usize)>) {
        let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, rng)).collect();
        let noisy = |c: usize, rng: &mut Rng| {
            BipolarHv::new(
                prototypes[c]
                    .components()
                    .iter()
                    .map(|&s| if rng.chance(flip) { -s } else { s })
                    .collect(),
            )
        };
        let mut train = Vec::new();
        let mut test = Vec::new();
        for c in 0..classes {
            for _ in 0..per_class {
                train.push((noisy(c, rng), c));
                test.push((noisy(c, rng), c));
            }
        }
        (train, test)
    }

    #[test]
    fn adaptive_training_learns_noisy_prototypes() {
        let mut rng = Rng::new(1);
        let (train, test) = noisy_task(5, 12, 1024, 0.3, &mut rng);
        let mut memory = bundle_init(5, 1024, &train);
        let trainer = OnlineTrainer::new(0.3);
        for _ in 0..6 {
            trainer.epoch(&mut memory, &train);
        }
        let acc = memory.accuracy(&test);
        assert!(acc > 0.85, "OnlineHD-style accuracy {acc}");
    }

    #[test]
    fn confident_correct_samples_barely_move_memory() {
        let mut rng = Rng::new(2);
        let dim = 2048;
        let mut memory = AssociativeMemory::new(2, dim);
        let h = random_hv(dim, &mut rng);
        for _ in 0..20 {
            memory.bundle(0, &h);
        }
        let before: Vec<f32> = memory.class(0).to_vec();
        let trainer = OnlineTrainer::new(1.0);
        assert!(trainer.step(&mut memory, &h, 0));
        let moved: f32 =
            memory.class(0).iter().zip(&before).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / dim as f32;
        assert!(moved < 0.05, "confident sample moved memory by {moved}");
    }

    #[test]
    fn misclassified_samples_push_the_wrong_class_away() {
        let mut rng = Rng::new(3);
        let dim = 1024;
        let mut memory = AssociativeMemory::new(2, dim);
        let h = random_hv(dim, &mut rng);
        memory.bundle(1, &h); // wrongly associated
        let trainer = OnlineTrainer::new(0.8);
        assert!(!trainer.step(&mut memory, &h, 0));
        let sims = memory.similarities(&h);
        assert!(sims[0] > 0.0, "true class not pulled: {sims:?}");
        assert!(sims[1] < 1.0, "wrong class not pushed: {sims:?}");
    }

    #[test]
    fn comparable_to_mass_on_the_same_task() {
        let mut rng = Rng::new(4);
        let (train, test) = noisy_task(4, 10, 512, 0.3, &mut rng);
        let mut online_mem = bundle_init(4, 512, &train);
        let mut mass_mem = online_mem.clone();
        let online = OnlineTrainer::new(0.3);
        let mass = MassTrainer::new(0.3);
        for _ in 0..5 {
            online.epoch(&mut online_mem, &train);
            mass.epoch(&mut mass_mem, &train);
        }
        let a = online_mem.accuracy(&test);
        let b = mass_mem.accuracy(&test);
        assert!((a - b).abs() < 0.2, "online {a} vs mass {b} diverge unreasonably");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        OnlineTrainer::new(0.0);
    }
}
