//! Core HD arithmetic: bundling, binding, and permutation.
//!
//! Bundling (⊕) superposes hypervectors into a composite *similar to its
//! inputs* (elementwise addition, optionally followed by `sign`). Binding
//! (⊗) associates hypervectors into a composite *quasi-orthogonal to its
//! inputs* (elementwise multiplication). Permutation (ρ) encodes order.

use crate::hypervector::BipolarHv;

/// Bundles bipolar hypervectors by elementwise addition, returning the
/// dense (integer-valued) accumulator as `f32`.
///
/// # Panics
///
/// Panics if `items` is empty or dimensions disagree.
pub fn bundle(items: &[&BipolarHv]) -> Vec<f32> {
    let first = items.first().expect("bundle requires at least one hypervector");
    let dim = first.dim();
    let mut acc = vec![0.0f32; dim];
    for hv in items {
        assert_eq!(hv.dim(), dim, "dimension mismatch in bundle");
        for (a, &c) in acc.iter_mut().zip(hv.components()) {
            *a += c as f32;
        }
    }
    acc
}

/// Bundles and re-binarises: `sign(Σ items)`, the majority rule. Ties
/// (possible for even counts) resolve via a fixed pseudo-random pattern —
/// resolving them all to `+1` would inject a structured bias that
/// corrupts unbinding (every tied position would correlate with the
/// all-ones vector).
///
/// # Panics
///
/// Panics if `items` is empty or dimensions disagree.
pub fn bundle_majority(items: &[&BipolarHv]) -> BipolarHv {
    sign_with_tiebreak(&bundle(items))
}

/// Binarises an accumulator with pseudo-random (but deterministic,
/// position-keyed) tie-breaking at exact zeros.
pub fn sign_with_tiebreak(acc: &[f32]) -> BipolarHv {
    BipolarHv::new(
        acc.iter()
            .enumerate()
            .map(|(i, &v)| {
                if v > 0.0 {
                    1
                } else if v < 0.0 {
                    -1
                } else {
                    // SplitMix-style hash of the index: balanced and
                    // uncorrelated with any stored hypervector.
                    let mut z = (i as u64).wrapping_add(0x9E3779B97F4A7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    if z & 1 == 0 {
                        1
                    } else {
                        -1
                    }
                }
            })
            .collect(),
    )
}

/// Binds two bipolar hypervectors by elementwise multiplication.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn bind(a: &BipolarHv, b: &BipolarHv) -> BipolarHv {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch in bind");
    BipolarHv::new(a.components().iter().zip(b.components()).map(|(&x, &y)| x * y).collect())
}

/// Cyclically permutes (rotates) a hypervector by `shift` positions — the
/// ρ operator used to encode sequence position.
pub fn permute(hv: &BipolarHv, shift: usize) -> BipolarHv {
    let dim = hv.dim();
    if dim == 0 {
        return hv.clone();
    }
    let s = shift % dim;
    let mut comps = Vec::with_capacity(dim);
    comps.extend_from_slice(&hv.components()[dim - s..]);
    comps.extend_from_slice(&hv.components()[..dim - s]);
    BipolarHv::new(comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[test]
    fn bundle_sums_components() {
        let a = BipolarHv::new(vec![1, -1, 1]);
        let b = BipolarHv::new(vec![1, 1, -1]);
        assert_eq!(bundle(&[&a, &b]), vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn bundle_majority_is_similar_to_inputs() {
        let mut rng = Rng::new(1);
        let items: Vec<BipolarHv> = (0..5).map(|_| random_hv(2000, &mut rng)).collect();
        let refs: Vec<&BipolarHv> = items.iter().collect();
        let m = bundle_majority(&refs);
        // Each input should correlate positively with the bundle.
        for hv in &items {
            let dot: i64 = m
                .components()
                .iter()
                .zip(hv.components())
                .map(|(&x, &y)| (x as i64) * (y as i64))
                .sum();
            assert!(dot > 0, "bundle lost similarity to an input: {dot}");
        }
    }

    #[test]
    fn bind_produces_quasi_orthogonal_result() {
        let mut rng = Rng::new(2);
        let a = random_hv(4000, &mut rng);
        let b = random_hv(4000, &mut rng);
        let c = bind(&a, &b);
        let dot_ca: i64 =
            c.components().iter().zip(a.components()).map(|(&x, &y)| (x as i64) * (y as i64)).sum();
        // |dot| should be O(√D) ≈ 63; allow 4σ.
        assert!(dot_ca.abs() < 260, "bind result not orthogonal to input: {dot_ca}");
    }

    #[test]
    fn bind_is_associative_and_self_inverse() {
        let mut rng = Rng::new(3);
        let a = random_hv(128, &mut rng);
        let b = random_hv(128, &mut rng);
        let c = random_hv(128, &mut rng);
        assert_eq!(bind(&bind(&a, &b), &c), bind(&a, &bind(&b, &c)));
        assert_eq!(bind(&bind(&a, &b), &b), a);
    }

    #[test]
    fn permute_rotates_and_inverts() {
        let h = BipolarHv::new(vec![1, -1, 1, 1, -1]);
        let r = permute(&h, 2);
        assert_eq!(r.components(), &[1, -1, 1, -1, 1]);
        // A full cycle is identity; shift + (dim − shift) is identity.
        assert_eq!(permute(&h, 5), h);
        assert_eq!(permute(&permute(&h, 2), 3), h);
    }

    #[test]
    fn permutation_preserves_composition() {
        let mut rng = Rng::new(4);
        let a = random_hv(64, &mut rng);
        let b = random_hv(64, &mut rng);
        // ρ(a ⊗ b) == ρ(a) ⊗ ρ(b)
        assert_eq!(permute(&bind(&a, &b), 7), bind(&permute(&a, 7), &permute(&b, 7)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bundle_panics() {
        bundle(&[]);
    }
}
