//! Random-projection encoding — the paper's Φ_P — and its decoding
//! adjoint used by the manifold-learner backward pass.

use crate::hypervector::{BipolarHv, PackedHv};
use nshd_tensor::{matmul, par, Rng, Tensor};

/// A seeded bipolar random-projection encoder.
///
/// Holds one random bipolar *base hypervector* `P_f ∈ {±1}^D` per input
/// feature, stored bit-packed (the paper's constant-memory binary layout).
/// Encoding is `H = sign(Σ_f v_f ⊗ P_f)` — binding each feature value to
/// its base vector and bundling — computed without multiplications by
/// adding or subtracting `v_f` according to each stored sign bit.
///
/// # Examples
///
/// ```
/// use nshd_hdc::RandomProjection;
///
/// let proj = RandomProjection::new(16, 1024, 42);
/// let hv = proj.encode(&vec![0.5; 16]);
/// assert_eq!(hv.dim(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    features: usize,
    dim: usize,
    seed: u64,
    rows: Vec<PackedHv>,
}

impl RandomProjection {
    /// Creates a projection for `features` inputs into `dim`-dimensional
    /// hyperspace, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `dim == 0`.
    pub fn new(features: usize, dim: usize, seed: u64) -> Self {
        assert!(features > 0 && dim > 0, "features and dim must be positive");
        let mut rng = Rng::new(seed);
        let rows = (0..features)
            .map(|_| {
                let signs: Vec<f32> = (0..dim).map(|_| rng.bipolar()).collect();
                BipolarHv::from_signs(&signs).to_packed()
            })
            .collect();
        RandomProjection { features, dim, seed, rows }
    }

    /// The seed this projection was built from (sufficient to
    /// reconstruct it exactly — seeded projections need not be stored).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of input features `F`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The base hypervector for feature `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.features()`.
    pub fn base(&self, f: usize) -> &PackedHv {
        &self.rows[f]
    }

    /// The pre-sign accumulator `Σ_f v_f ⊗ P_f` (a dense `D`-vector).
    ///
    /// Exposed separately because the straight-through estimator needs the
    /// pre-binarisation activations.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.features()`.
    pub fn encode_raw(&self, values: &[f32]) -> Vec<f32> {
        assert_eq!(values.len(), self.features, "feature count mismatch");
        let mut sp = nshd_obs::span("hd_encode");
        sp.add_flops(2 * (self.features * self.dim) as u64);
        sp.add_bytes((self.features * self.dim / 8 + 4 * (self.features + self.dim)) as u64);
        let mut acc = vec![0.0f32; self.dim];
        for (row, &v) in self.rows.iter().zip(values) {
            if v == 0.0 {
                continue;
            }
            let words = row.words();
            // Add/sub by sign bit, 64 dimensions per word.
            for (w, word) in words.iter().enumerate() {
                let base = w * 64;
                let end = (base + 64).min(self.dim);
                let mut bits = *word;
                for a in &mut acc[base..end] {
                    if bits & 1 == 1 {
                        *a += v;
                    } else {
                        *a -= v;
                    }
                    bits >>= 1;
                }
            }
        }
        acc
    }

    /// Encodes a feature vector into a bipolar hypervector:
    /// `sign(encode_raw(values))`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.features()`.
    pub fn encode(&self, values: &[f32]) -> BipolarHv {
        BipolarHv::from_signs(&self.encode_raw(values))
    }

    /// Decodes a dense hyperspace vector back to feature space:
    /// `out_f = ⟨P_f, e⟩ / D` — the paper's HD decoding, which is the
    /// adjoint of `encode_raw` up to the `1/D` normalisation.
    ///
    /// # Panics
    ///
    /// Panics if `hyper.len() != self.dim()`.
    pub fn decode(&self, hyper: &[f32]) -> Vec<f32> {
        assert_eq!(hyper.len(), self.dim, "hyperspace dimension mismatch");
        let mut sp = nshd_obs::span("hd_decode");
        sp.add_flops(2 * (self.features * self.dim) as u64);
        sp.add_bytes((self.features * self.dim / 8 + 4 * (self.features + self.dim)) as u64);
        let inv_d = 1.0 / self.dim as f32;
        self.rows
            .iter()
            .map(|row| {
                let words = row.words();
                let mut s = 0.0;
                for (w, word) in words.iter().enumerate() {
                    let base = w * 64;
                    let end = (base + 64).min(self.dim);
                    let mut bits = *word;
                    for item in &hyper[base..end] {
                        if bits & 1 == 1 {
                            s += item;
                        } else {
                            s -= item;
                        }
                        bits >>= 1;
                    }
                }
                s * inv_d
            })
            .collect()
    }

    /// Builds the dense-GEMM batch encoder for this projection — see
    /// [`BatchEncoder`].
    pub fn batch_encoder(&self) -> BatchEncoder {
        BatchEncoder::new(self)
    }

    /// MACs per encoded sample under the paper's Fig. 5 convention
    /// (binding = one multiply–accumulate per feature per dimension).
    pub fn macs_per_encode(&self) -> u64 {
        (self.features * self.dim) as u64
    }

    /// Parameter count of the projection (one bipolar scalar per cell;
    /// Table II counts these as learning parameters).
    pub fn param_count(&self) -> usize {
        self.features * self.dim
    }
}

/// The dense-GEMM counterpart of [`RandomProjection`] for batched
/// encoding: the bit-packed base hypervectors unpacked once into an
/// `F×D` ±1 matrix, so a whole batch of feature vectors encodes as a
/// single matrix product instead of `N` bit-serial accumulation passes.
///
/// `encode_raw_batch` is **bit-identical** to per-sample
/// [`RandomProjection::encode_raw`]: the GEMM kernel accumulates the
/// inner (feature) dimension sequentially and skips exact zeros, the
/// same summation order and zero-skip as the bit-serial path, and
/// `±1.0 · v` is exact in IEEE arithmetic. The serving runtime's
/// determinism guarantee rests on this equality.
///
/// # Examples
///
/// ```
/// use nshd_hdc::RandomProjection;
/// use nshd_tensor::Tensor;
///
/// let proj = RandomProjection::new(4, 256, 7);
/// let batch = proj.batch_encoder();
/// let values = Tensor::from_fn([3, 4], |i| (i as f32 * 0.3).sin());
/// let hvs = batch.encode_batch(&values);
/// assert_eq!(hvs.len(), 3);
/// assert_eq!(hvs[0], proj.encode(&values.as_slice()[..4]));
/// ```
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    features: usize,
    dim: usize,
    /// Row-major `F×D` matrix of ±1.0, row `f` = unpacked `P_f`.
    basis: Tensor,
}

impl BatchEncoder {
    /// Unpacks `proj`'s base hypervectors into the dense basis matrix.
    pub fn new(proj: &RandomProjection) -> Self {
        let (features, dim) = (proj.features, proj.dim);
        let mut data = Vec::with_capacity(features * dim);
        for row in &proj.rows {
            let mut d = 0usize;
            'row: for word in row.words() {
                let mut bits = *word;
                for _ in 0..64 {
                    if d == dim {
                        break 'row;
                    }
                    data.push(if bits & 1 == 1 { 1.0 } else { -1.0 });
                    bits >>= 1;
                    d += 1;
                }
            }
        }
        let basis = Tensor::from_vec(data, [features, dim]).expect("F·D basis entries");
        BatchEncoder { features, dim, basis }
    }

    /// Number of input features `F`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Pre-sign accumulators for a whole batch: `values · P` as an `N×D`
    /// tensor, row `i` bit-identical to `encode_raw` of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not a rank-2 tensor with `F` columns.
    pub fn encode_raw_batch(&self, values: &Tensor) -> Tensor {
        let dims = values.dims();
        assert_eq!(dims.len(), 2, "BatchEncoder expects an N×F value matrix");
        assert_eq!(dims[1], self.features, "feature count mismatch");
        // FLOPs are attributed by the nested matmul span; this span only
        // names the stage.
        let _sp = nshd_obs::span("hd_encode");
        matmul(values, &self.basis)
    }

    /// Encodes a whole batch of feature vectors into bipolar
    /// hypervectors: `sign(encode_raw_batch(values))` row by row.
    ///
    /// The per-sample sign-and-pack step is independent across rows, so
    /// large batches run it in parallel over the `nshd_tensor::par`
    /// worker set; each row is binarised by the same serial code either
    /// way, so results are identical at any thread count (and the GEMM
    /// underneath is itself bit-exact row-parallel).
    ///
    /// # Panics
    ///
    /// Panics if `values` is not a rank-2 tensor with `F` columns.
    pub fn encode_batch(&self, values: &Tensor) -> Vec<BipolarHv> {
        let raw = self.encode_raw_batch(values);
        let rows: Vec<&[f32]> = raw.as_slice().chunks(self.dim).collect();
        let pack_work = (rows.len() * self.dim) as u64;
        if rows.len() > 1 && par::should_parallelize(pack_work) {
            par::par_map(&rows, |row| BipolarHv::from_signs(row))
        } else {
            rows.into_iter().map(BipolarHv::from_signs).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = RandomProjection::new(8, 256, 5);
        let b = RandomProjection::new(8, 256, 5);
        let v: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        assert_eq!(a.encode(&v), b.encode(&v));
        let c = RandomProjection::new(8, 256, 6);
        assert_ne!(a.encode(&v), c.encode(&v));
    }

    #[test]
    fn encode_raw_matches_explicit_matrix_product() {
        let proj = RandomProjection::new(5, 130, 1);
        let v = [0.7, -1.2, 0.0, 2.0, -0.4];
        let raw = proj.encode_raw(&v);
        for (d, &r) in raw.iter().enumerate() {
            let mut expect = 0.0;
            for (f, &vf) in v.iter().enumerate() {
                expect += vf * proj.base(f).sign_at(d) as f32;
            }
            assert!((r - expect).abs() < 1e-5, "dim {d}");
        }
    }

    #[test]
    fn similar_inputs_encode_to_similar_hypervectors() {
        let proj = RandomProjection::new(32, 4096, 2);
        let mut rng = Rng::new(3);
        let v: Vec<f32> = (0..32).map(|_| rng.normal()).collect();
        let mut v2 = v.clone();
        v2[0] += 0.05; // small perturbation
        let w: Vec<f32> = (0..32).map(|_| rng.normal()).collect(); // unrelated
        let h = proj.encode(&v).to_packed();
        let h2 = proj.encode(&v2).to_packed();
        let hw = proj.encode(&w).to_packed();
        let sim_close = crate::similarity::cosine_packed(&h, &h2);
        let sim_far = crate::similarity::cosine_packed(&h, &hw);
        assert!(sim_close > 0.9, "perturbed input similarity {sim_close}");
        assert!(sim_far < 0.5, "unrelated input similarity {sim_far}");
    }

    #[test]
    fn decode_is_scaled_adjoint_of_encode_raw() {
        // ⟨encode_raw(v), e⟩ == D · ⟨v, decode(e)⟩ for arbitrary v, e.
        let proj = RandomProjection::new(7, 200, 4);
        let v: Vec<f32> = (0..7).map(|i| (i as f32 * 0.77).sin()).collect();
        let e: Vec<f32> = (0..200).map(|i| (i as f32 * 0.13).cos()).collect();
        let lhs: f32 = proj.encode_raw(&v).iter().zip(&e).map(|(a, b)| a * b).sum();
        let dec = proj.decode(&e);
        let rhs: f32 = v.iter().zip(&dec).map(|(a, b)| a * b).sum::<f32>() * 200.0;
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn decode_recovers_feature_direction() {
        // decode(encode_raw(v)) ≈ v up to projection noise: the diagonal
        // of PᵀP/D concentrates at 1.
        let proj = RandomProjection::new(10, 8000, 9);
        let v: Vec<f32> = (0..10).map(|i| (i as f32) - 4.5).collect();
        let rec = proj.decode(&proj.encode_raw(&v));
        // Cosine between v and its reconstruction should be near 1.
        let dot: f32 = v.iter().zip(&rec).map(|(a, b)| a * b).sum();
        let nv: f32 = v.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nr: f32 = rec.iter().map(|a| a * a).sum::<f32>().sqrt();
        let cos = dot / (nv * nr);
        assert!(cos > 0.95, "reconstruction cosine {cos}");
    }

    #[test]
    fn cost_accounting() {
        let proj = RandomProjection::new(100, 3000, 0);
        assert_eq!(proj.macs_per_encode(), 300_000);
        assert_eq!(proj.param_count(), 300_000);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        RandomProjection::new(4, 64, 0).encode(&[1.0; 5]);
    }

    #[test]
    fn batch_encoder_is_bit_identical_to_per_sample_encode() {
        // 130 dims exercises the partial trailing word; a zero value
        // exercises the zero-skip paths on both sides.
        let proj = RandomProjection::new(6, 130, 11);
        let batch = proj.batch_encoder();
        assert_eq!(batch.features(), 6);
        assert_eq!(batch.dim(), 130);
        let mut rng = Rng::new(12);
        let mut rows: Vec<Vec<f32>> =
            (0..5).map(|_| (0..6).map(|_| rng.normal()).collect()).collect();
        rows[2][3] = 0.0;
        let values = Tensor::from_vec(rows.concat(), [5, 6]).unwrap();
        let raw = batch.encode_raw_batch(&values);
        let hvs = batch.encode_batch(&values);
        for (i, row) in rows.iter().enumerate() {
            let expect = proj.encode_raw(row);
            assert_eq!(
                &raw.as_slice()[i * 130..(i + 1) * 130],
                expect.as_slice(),
                "row {i} raw accumulators must be bit-identical"
            );
            assert_eq!(hvs[i], proj.encode(row), "row {i} hypervector");
        }
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn batch_encoder_wrong_feature_count_panics() {
        let proj = RandomProjection::new(4, 64, 0);
        proj.batch_encoder().encode_raw_batch(&Tensor::zeros([2, 5]));
    }

    use nshd_tensor::Rng;
}
