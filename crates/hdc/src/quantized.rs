//! Quantised deployments of the associative memory.
//!
//! The paper compiles the trained NSHD model through Vitis-AI, which
//! quantises it to INT8, "with very minor impacts on the prediction
//! quality" (§VI-B); the GPGPU path likewise stores binary hypervectors
//! in constant memory. This module provides both deployment forms —
//! [`QuantizedMemory`] (per-class symmetric INT8) and [`BinaryMemory`]
//! (sign-binarised, packed, popcount similarity) — so that claim is
//! testable in-repo.

use crate::hypervector::{BipolarHv, PackedHv};
use crate::memory::AssociativeMemory;
use crate::similarity::cosine_packed;

/// An INT8-quantised class memory (symmetric per-class scaling), the
/// DPU-style deployment of a trained [`AssociativeMemory`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMemory {
    dim: usize,
    classes: Vec<Vec<i8>>,
    scales: Vec<f32>,
}

impl QuantizedMemory {
    /// Quantises a trained memory: each class hypervector is scaled by
    /// `127 / max|component|` and rounded to `i8`.
    pub fn from_memory(memory: &AssociativeMemory) -> Self {
        let dim = memory.dim();
        let mut classes = Vec::with_capacity(memory.num_classes());
        let mut scales = Vec::with_capacity(memory.num_classes());
        for c in 0..memory.num_classes() {
            let class = memory.class(c);
            let max = class.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
            classes.push(
                class.iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8).collect(),
            );
            scales.push(scale);
        }
        QuantizedMemory { dim, classes, scales }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The quantised cells of one class (fault injection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class(&self, class: usize) -> &[i8] {
        &self.classes[class]
    }

    /// Mutable INT8 cells of one class — the hook [`crate::FaultPlan`]
    /// uses to model DPU weight-memory upsets.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_mut(&mut self, class: usize) -> &mut [i8] {
        &mut self.classes[class]
    }

    /// Cosine similarities of a bipolar query against each quantised
    /// class (integer accumulation, de-scaled at the end).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn similarities(&self, hv: &BipolarHv) -> Vec<f32> {
        assert_eq!(hv.dim(), self.dim, "dimension mismatch");
        let sqrt_d = (self.dim as f32).sqrt();
        self.classes
            .iter()
            .zip(&self.scales)
            .map(|(class, &scale)| {
                let mut acc: i64 = 0;
                let mut norm2: i64 = 0;
                for (&c, &s) in class.iter().zip(hv.components()) {
                    // Multiplication-free accumulate, as in the paper's
                    // binary kernels: add or subtract by the sign bit.
                    if s > 0 {
                        acc += c as i64;
                    } else {
                        acc -= c as i64;
                    }
                    norm2 += (c as i64) * (c as i64);
                }
                let norm = (norm2 as f32).sqrt() * scale;
                if norm == 0.0 {
                    0.0
                } else {
                    (acc as f32 * scale) / (norm * sqrt_d)
                }
            })
            .collect()
    }

    /// Predicted class: `argmax` of the quantised similarities.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn predict(&self, hv: &BipolarHv) -> usize {
        self.similarities(hv)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite similarities"))
            .map(|(i, _)| i)
            .expect("memory has at least one class")
    }

    /// Classification accuracy over labelled hypervectors.
    pub fn accuracy(&self, samples: &[(BipolarHv, usize)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|(h, l)| self.predict(h) == *l).count();
        correct as f32 / samples.len() as f32
    }

    /// The per-class dequantisation scales (one `f32` per class).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Deployment bytes: one `i8` per component plus one `f32` scale per
    /// class — vs 4 bytes per component for the f32 memory.
    pub fn size_bytes(&self) -> u64 {
        (self.classes.len() * self.dim) as u64 + (self.classes.len() * 4) as u64
    }
}

/// A fully binarised class memory: each class hypervector reduced to its
/// sign pattern and bit-packed; similarity by popcount — the paper's
/// constant-memory GPGPU representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMemory {
    dim: usize,
    classes: Vec<PackedHv>,
}

impl BinaryMemory {
    /// Binarises a trained memory: `sign` of each class accumulator.
    pub fn from_memory(memory: &AssociativeMemory) -> Self {
        let classes = (0..memory.num_classes())
            .map(|c| BipolarHv::from_signs(memory.class(c)).to_packed())
            .collect();
        BinaryMemory { dim: memory.dim(), classes }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed class hypervector for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class(&self, class: usize) -> &PackedHv {
        &self.classes[class]
    }

    /// Mutable packed class hypervector — the hook [`crate::FaultPlan`]
    /// uses to model bit upsets in the FPGA's binary class memory.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_mut(&mut self, class: usize) -> &mut PackedHv {
        &mut self.classes[class]
    }

    /// Hamming-based cosine similarities against each binary class.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn similarities(&self, hv: &PackedHv) -> Vec<f32> {
        assert_eq!(hv.dim(), self.dim, "dimension mismatch");
        self.classes.iter().map(|c| cosine_packed(c, hv)).collect()
    }

    /// Predicted class.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn predict(&self, hv: &PackedHv) -> usize {
        self.similarities(hv)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite similarities"))
            .map(|(i, _)| i)
            .expect("memory has at least one class")
    }

    /// Classification accuracy over labelled bipolar hypervectors.
    pub fn accuracy(&self, samples: &[(BipolarHv, usize)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|(h, l)| self.predict(&h.to_packed()) == *l).count();
        correct as f32 / samples.len() as f32
    }

    /// Deployment bytes: one bit per component.
    pub fn size_bytes(&self) -> u64 {
        (self.classes.len() as u64) * (self.dim as u64).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mass::{bundle_init, MassTrainer};
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    /// A trained memory on a noisy prototype task plus held-out queries.
    fn trained_task(dim: usize) -> (AssociativeMemory, Vec<(BipolarHv, usize)>) {
        let mut rng = Rng::new(3);
        let classes = 6;
        let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, &mut rng)).collect();
        let noisy = |proto: &BipolarHv, rng: &mut Rng| {
            BipolarHv::new(
                proto.components().iter().map(|&s| if rng.chance(0.25) { -s } else { s }).collect(),
            )
        };
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..10 {
                train.push((noisy(proto, &mut rng), c));
                test.push((noisy(proto, &mut rng), c));
            }
        }
        let mut memory = bundle_init(classes, dim, &train);
        let trainer = MassTrainer::new(0.2);
        for _ in 0..5 {
            trainer.epoch(&mut memory, &train);
        }
        (memory, test)
    }

    #[test]
    fn int8_quantisation_preserves_accuracy() {
        let (memory, test) = trained_task(2_048);
        let float_acc = memory.accuracy(&test);
        let quant = QuantizedMemory::from_memory(&memory);
        let quant_acc = quant.accuracy(&test);
        assert!(float_acc > 0.9, "float accuracy {float_acc}");
        // The paper's §VI-B claim: quantisation has very minor impact.
        assert!(
            (float_acc - quant_acc).abs() < 0.03,
            "quantisation changed accuracy too much: {float_acc} → {quant_acc}"
        );
    }

    #[test]
    fn binarisation_preserves_most_accuracy() {
        let (memory, test) = trained_task(4_096);
        let float_acc = memory.accuracy(&test);
        let binary = BinaryMemory::from_memory(&memory);
        let bin_acc = binary.accuracy(&test);
        assert!(bin_acc > float_acc - 0.1, "binarisation lost too much: {float_acc} → {bin_acc}");
    }

    #[test]
    fn quantised_similarities_track_float_similarities() {
        let (memory, test) = trained_task(1_024);
        let quant = QuantizedMemory::from_memory(&memory);
        for (hv, _) in test.iter().take(10) {
            let f = memory.similarities(hv);
            let q = quant.similarities(hv);
            for (a, b) in f.iter().zip(&q) {
                assert!((a - b).abs() < 0.02, "similarity drift {a} vs {b}");
            }
        }
    }

    #[test]
    fn deployment_sizes_shrink() {
        let (memory, _) = trained_task(1_024);
        let float_bytes = (memory.param_count() * 4) as u64;
        let quant = QuantizedMemory::from_memory(&memory);
        let binary = BinaryMemory::from_memory(&memory);
        assert!(quant.size_bytes() < float_bytes / 3);
        assert!(binary.size_bytes() < quant.size_bytes() / 7);
        assert_eq!(quant.num_classes(), memory.num_classes());
        assert_eq!(binary.dim(), memory.dim());
    }

    #[test]
    fn empty_sample_sets_score_zero() {
        let (memory, _) = trained_task(256);
        assert_eq!(QuantizedMemory::from_memory(&memory).accuracy(&[]), 0.0);
        assert_eq!(BinaryMemory::from_memory(&memory).accuracy(&[]), 0.0);
    }

    #[test]
    fn all_zero_class_quantises_to_zero_without_panicking() {
        // Class 1 never receives a sample: its accumulator stays all
        // zeros and quantisation must fall back to scale 1.0 instead of
        // dividing by zero.
        let mut rng = Rng::new(31);
        let dim = 512;
        let mut memory = AssociativeMemory::new(3, dim);
        let a = random_hv(dim, &mut rng);
        let c = random_hv(dim, &mut rng);
        memory.bundle(0, &a);
        memory.bundle(2, &c);
        let quant = QuantizedMemory::from_memory(&memory);
        assert!(quant.class(1).iter().all(|&v| v == 0), "zero class must stay zero");
        let sims = quant.similarities(&a);
        assert!(sims.iter().all(|v| v.is_finite()), "{sims:?}");
        assert_eq!(sims[1], 0.0, "empty class similarity {sims:?}");
        assert_eq!(quant.predict(&a), 0);
        // The binary deployment of the same memory stays usable too.
        let binary = BinaryMemory::from_memory(&memory);
        assert_eq!(binary.predict(&a.to_packed()), 0);
    }

    #[test]
    fn single_component_classes_round_trip() {
        let memory = AssociativeMemory::from_classes(vec![vec![3.0], vec![-2.0]]);
        let quant = QuantizedMemory::from_memory(&memory);
        assert_eq!(quant.dim(), 1);
        assert_eq!(quant.class(0), &[127]);
        assert_eq!(quant.class(1), &[-127]);
        let plus = BipolarHv::new(vec![1]);
        let minus = BipolarHv::new(vec![-1]);
        assert_eq!(quant.predict(&plus), memory.predict(&plus));
        assert_eq!(quant.predict(&minus), memory.predict(&minus));
    }

    #[test]
    fn quantised_predictions_agree_with_float_memory() {
        let (memory, test) = trained_task(2_048);
        let quant = QuantizedMemory::from_memory(&memory);
        let agree = test.iter().filter(|(hv, _)| quant.predict(hv) == memory.predict(hv)).count();
        // INT8 is a faithful deployment: sample-level decisions match on
        // (almost) every query, not just in aggregate accuracy.
        assert!(
            agree as f32 / test.len() as f32 > 0.95,
            "only {agree}/{} predictions agree",
            test.len()
        );
    }
}
