//! Similarity metrics between hypervectors and dense class vectors.

use crate::hypervector::{BipolarHv, PackedHv};

/// Dot product between a dense (accumulated) vector and a bipolar
/// hypervector — the δ of the paper for unnormalised memories.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot_dense_bipolar(dense: &[f32], hv: &BipolarHv) -> f32 {
    assert_eq!(dense.len(), hv.dim(), "length mismatch");
    let mut s = 0.0;
    for (&d, &c) in dense.iter().zip(hv.components()) {
        // Add/sub by sign bit: the paper's multiplication-free kernel.
        if c > 0 {
            s += d;
        } else {
            s -= d;
        }
    }
    s
}

/// Cosine similarity between a dense vector and a bipolar hypervector.
///
/// A bipolar hypervector has norm `√D`, so this is
/// `dot / (‖dense‖ · √D)`. Returns 0 when the dense vector is all zero.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine_dense_bipolar(dense: &[f32], hv: &BipolarHv) -> f32 {
    let norm: f32 = dense.iter().map(|d| d * d).sum::<f32>().sqrt();
    if norm == 0.0 {
        return 0.0;
    }
    dot_dense_bipolar(dense, hv) / (norm * (hv.dim() as f32).sqrt())
}

/// Normalised Hamming similarity between packed hypervectors, in
/// `[-1, 1]` (equivalent to the cosine of the bipolar vectors).
///
/// # Panics
///
/// Panics if dimensions differ or are zero.
pub fn cosine_packed(a: &PackedHv, b: &PackedHv) -> f32 {
    assert!(a.dim() > 0, "empty hypervectors have no similarity");
    a.dot(b) as f32 / a.dim() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[test]
    fn dot_matches_explicit_multiplication() {
        let dense = vec![0.5, -1.5, 2.0, 3.0];
        let hv = BipolarHv::new(vec![1, -1, -1, 1]);
        assert!((dot_dense_bipolar(&dense, &hv) - (0.5 + 1.5 - 2.0 + 3.0)).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_self_pattern_is_one() {
        let hv = BipolarHv::new(vec![1, -1, 1, -1]);
        let dense = hv.to_f32();
        assert!((cosine_dense_bipolar(&dense, &hv) - 1.0).abs() < 1e-6);
        let anti: Vec<f32> = dense.iter().map(|v| -v).collect();
        assert!((cosine_dense_bipolar(&anti, &hv) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_dense_vector_has_zero_similarity() {
        let hv = BipolarHv::new(vec![1, 1]);
        assert_eq!(cosine_dense_bipolar(&[0.0, 0.0], &hv), 0.0);
    }

    #[test]
    fn random_hypervectors_are_quasi_orthogonal() {
        // The statistical foundation of HD computing: random D-dim bipolar
        // vectors overlap in ≈ D/2 bits with std √(D/4), so the cosine is
        // ≈ 0 ± 1/√D.
        let mut rng = Rng::new(7);
        let d = 10_000;
        let n = 30;
        let hvs: Vec<BipolarHv> = (0..n).map(|_| random_hv(d, &mut rng)).collect();
        let bound = 5.0 / (d as f32).sqrt(); // 5σ
        for i in 0..n {
            for j in 0..i {
                let c = cosine_packed(&hvs[i].to_packed(), &hvs[j].to_packed());
                assert!(c.abs() < bound, "cosine {c} exceeds {bound}");
            }
        }
    }

    #[test]
    fn packed_cosine_equals_dense_cosine() {
        let mut rng = Rng::new(8);
        let a = random_hv(513, &mut rng);
        let b = random_hv(513, &mut rng);
        let dense = cosine_dense_bipolar(&a.to_f32(), &b) / (513f32).sqrt().recip();
        // cosine_dense_bipolar normalises by ‖a‖·√D = D here, same as
        // packed; compare directly instead:
        let via_dense = cosine_dense_bipolar(&a.to_f32(), &b);
        let via_packed = cosine_packed(&a.to_packed(), &b.to_packed());
        assert!((via_dense - via_packed).abs() < 1e-5, "{via_dense} vs {via_packed}");
        let _ = dense;
    }
}
