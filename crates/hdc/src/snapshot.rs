//! Copy-on-write snapshots for a *live* class memory.
//!
//! A serving pipeline wants two things that pull in opposite
//! directions: in-flight batches must score against an **immutable**
//! memory (bit-exact replies, no torn reads), while the trainer wants
//! to keep bundling, error-correcting, and even *growing* the class set
//! mid-traffic. [`MemoryCell`] resolves the tension Arc-swap style with
//! plain `std` primitives: the current memory lives behind an
//! `RwLock<Arc<AssociativeMemory>>`, readers clone the `Arc` (a cheap
//! refcount bump) and drop the lock immediately, and writers build a
//! *new* memory — cloning the old one when mutating in place — and swap
//! the pointer. A batch that pinned a [`MemorySnapshot`] before a swap
//! keeps scoring against exactly that snapshot until it drops it.

use crate::memory::AssociativeMemory;
use std::sync::{Arc, RwLock};

/// An immutable, shareable snapshot of an [`AssociativeMemory`].
///
/// Cloning is a refcount bump; the underlying class accumulators are
/// never mutated once published, so any number of in-flight batches can
/// score against the same snapshot concurrently and bit-exactly.
pub type MemorySnapshot = Arc<AssociativeMemory>;

/// A copy-on-write cell publishing the *current* [`MemorySnapshot`].
///
/// # Examples
///
/// ```
/// use nshd_hdc::{AssociativeMemory, BipolarHv, MemoryCell};
///
/// let cell = MemoryCell::new(AssociativeMemory::new(2, 64));
/// let pinned = cell.load(); // an in-flight batch pins the snapshot
/// cell.update(|memory| {
///     let h = BipolarHv::from_signs(&vec![1.0; 64]);
///     memory.bundle(0, &h);
/// });
/// // The pinned snapshot is untouched; new loads see the update.
/// assert_eq!(pinned.class(0)[0], 0.0);
/// assert_eq!(cell.load().class(0)[0], 1.0);
/// ```
#[derive(Debug)]
pub struct MemoryCell {
    current: RwLock<MemorySnapshot>,
}

impl MemoryCell {
    /// Wraps a memory as the cell's initial snapshot.
    pub fn new(memory: AssociativeMemory) -> Self {
        MemoryCell { current: RwLock::new(Arc::new(memory)) }
    }

    /// Pins and returns the current snapshot. Callers that need a
    /// consistent view across several operations (extract + score for
    /// one batch) must call this **once** and reuse the returned `Arc`.
    pub fn load(&self) -> MemorySnapshot {
        self.current.read().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
    }

    /// Atomically publishes `next` as the current snapshot and returns
    /// the snapshot it replaced. In-flight readers holding the previous
    /// snapshot are unaffected; only subsequent [`load`](MemoryCell::load)
    /// calls observe `next`.
    pub fn swap(&self, next: MemorySnapshot) -> MemorySnapshot {
        let _sp = nshd_obs::span("memory_swap");
        nshd_obs::counter("memory.swaps").inc();
        let mut slot = self.current.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        std::mem::replace(&mut slot, next)
    }

    /// Copy-on-write update: clones the current memory, applies `f` to
    /// the clone, publishes the result, and returns the new snapshot.
    /// The pre-update snapshot stays valid for anyone still holding it.
    pub fn update(&self, f: impl FnOnce(&mut AssociativeMemory)) -> MemorySnapshot {
        let mut next = AssociativeMemory::clone(&self.load());
        f(&mut next);
        let published = Arc::new(next);
        self.swap(published.clone());
        published
    }

    /// Grows the memory by one zeroed class (copy-on-write) and returns
    /// the new class index — live class addition for a serving ensemble.
    pub fn add_class(&self) -> usize {
        let mut next = AssociativeMemory::clone(&self.load());
        let index = next.add_class();
        self.swap(Arc::new(next));
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervector::BipolarHv;

    #[test]
    fn pinned_snapshot_survives_swap() {
        let cell = MemoryCell::new(AssociativeMemory::new(2, 16));
        let pinned = cell.load();
        let prev = cell.swap(Arc::new(AssociativeMemory::new(3, 16)));
        assert_eq!(prev.num_classes(), 2);
        assert_eq!(pinned.num_classes(), 2);
        assert_eq!(cell.load().num_classes(), 3);
    }

    #[test]
    fn update_is_copy_on_write() {
        let cell = MemoryCell::new(AssociativeMemory::new(1, 8));
        let pinned = cell.load();
        let h = BipolarHv::from_signs(&[1.0; 8]);
        let published = cell.update(|m| m.bundle(0, &h));
        assert_eq!(pinned.class(0), &[0.0; 8]);
        assert_eq!(published.class(0), &[1.0; 8]);
        assert!(Arc::ptr_eq(&published, &cell.load()));
    }

    #[test]
    fn add_class_grows_only_new_loads() {
        let cell = MemoryCell::new(AssociativeMemory::new(2, 8));
        let pinned = cell.load();
        assert_eq!(cell.add_class(), 2);
        assert_eq!(pinned.num_classes(), 2);
        assert_eq!(cell.load().num_classes(), 3);
    }
}
