//! Straight-through-estimator gradients across the HD encoder.
//!
//! The paper trains the manifold layer by *decoding* the class-hypervector
//! errors back into feature space (§V-C): the error signal in hyperspace
//! is pushed through the non-differentiable `sign` with a straight-through
//! estimator (as in BinaryNet training) and then through the projection by
//! HD decoding — binding with the base hypervectors and a dot product,
//! i.e. multiplication by `Pᵀ`.

use crate::memory::AssociativeMemory;
use crate::projection::RandomProjection;

/// Straight-through-estimator settings.
#[derive(Debug, Clone, PartialEq)]
pub struct SteConfig {
    /// Gradients pass where `|pre-activation| ≤ clip_factor ×
    /// mean(|pre-activation|)`; elsewhere the estimator saturates to zero,
    /// the standard clipped-STE rule.
    pub clip_factor: f32,
}

impl Default for SteConfig {
    fn default() -> Self {
        SteConfig { clip_factor: 2.0 }
    }
}

/// Builds the hyperspace error signal `e = Σ_c U_c · Ĉ_c` from a sample's
/// update vector `U` and the (ℓ²-normalised) class hypervectors — the
/// dense direction in which moving the sample's hypervector would realise
/// the update that Algorithm 1 applied to the memory.
///
/// # Panics
///
/// Panics if `u.len() != memory.num_classes()`.
pub fn hyperspace_error(memory: &AssociativeMemory, u: &[f32]) -> Vec<f32> {
    assert_eq!(u.len(), memory.num_classes(), "update vector width mismatch");
    let dim = memory.dim();
    let mut e = vec![0.0f32; dim];
    for (c, &uc) in u.iter().enumerate() {
        if uc == 0.0 {
            continue;
        }
        let class = memory.class(c);
        let norm: f32 = class.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm == 0.0 {
            continue;
        }
        let w = uc / norm;
        for (ei, &ci) in e.iter_mut().zip(class) {
            *ei += w * ci;
        }
    }
    e
}

/// Applies the clipped straight-through estimator: zeroes error components
/// whose pre-sign activation saturates.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply_ste(error: &[f32], pre_activation: &[f32], config: &SteConfig) -> Vec<f32> {
    assert_eq!(error.len(), pre_activation.len(), "length mismatch");
    if error.is_empty() {
        return Vec::new();
    }
    let mean_abs: f32 =
        pre_activation.iter().map(|p| p.abs()).sum::<f32>() / pre_activation.len() as f32;
    let clip = config.clip_factor * mean_abs;
    error.iter().zip(pre_activation).map(|(&e, &p)| if p.abs() <= clip { e } else { 0.0 }).collect()
}

/// Full decoded feature-space gradient for one sample: STE through the
/// sign, then HD decoding through the projection.
///
/// Returns the direction in the manifold layer's *output* space that
/// increases the realised update — callers ascend it (or descend its
/// negation) when updating the manifold weights.
///
/// # Panics
///
/// Panics if dimensions disagree between `memory`, `projection` and
/// `pre_activation`.
pub fn feature_gradient(
    projection: &RandomProjection,
    memory: &AssociativeMemory,
    u: &[f32],
    pre_activation: &[f32],
    config: &SteConfig,
) -> Vec<f32> {
    assert_eq!(memory.dim(), projection.dim(), "memory/projection dimension mismatch");
    assert_eq!(pre_activation.len(), projection.dim(), "pre-activation length mismatch");
    let e = hyperspace_error(memory, u);
    let gated = apply_ste(&e, pre_activation, config);
    projection.decode(&gated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervector::BipolarHv;
    use nshd_tensor::Rng;

    fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
        BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
    }

    #[test]
    fn hyperspace_error_points_toward_positive_classes() {
        let mut rng = Rng::new(1);
        let dim = 1024;
        let mut mem = AssociativeMemory::new(2, dim);
        let a = random_hv(dim, &mut rng);
        let b = random_hv(dim, &mut rng);
        mem.bundle(0, &a);
        mem.bundle(1, &b);
        let e = hyperspace_error(&mem, &[1.0, -1.0]);
        // e must correlate positively with class 0 and negatively with 1.
        let dot = |x: &[f32], hv: &BipolarHv| -> f32 {
            x.iter().zip(hv.components()).map(|(v, &s)| v * s as f32).sum()
        };
        assert!(dot(&e, &a) > 0.0);
        assert!(dot(&e, &b) < 0.0);
    }

    #[test]
    fn empty_class_contributes_nothing() {
        let mem = AssociativeMemory::new(2, 64);
        let e = hyperspace_error(&mem, &[1.0, 1.0]);
        assert!(e.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ste_gates_saturated_components() {
        let error = vec![1.0, 1.0, 1.0, 1.0];
        let pre = vec![0.1, -0.2, 10.0, -12.0]; // mean |pre| = 5.575
        let cfg = SteConfig { clip_factor: 0.5 }; // clip ≈ 2.79
        let gated = apply_ste(&error, &pre, &cfg);
        assert_eq!(gated, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn feature_gradient_improves_similarity_when_followed() {
        // Ascending the decoded gradient in feature space must increase
        // the (pre-sign, hence eventual) similarity to the target class.
        let mut rng = Rng::new(2);
        let f = 12;
        let d = 4096;
        let proj = RandomProjection::new(f, d, 3);
        let v: Vec<f32> = (0..f).map(|_| rng.normal()).collect();
        let pre = proj.encode_raw(&v);
        let h = BipolarHv::from_signs(&pre);

        // Memory: class 0 is a random target prototype, class 1 is h
        // itself (so the sample currently matches the wrong class).
        let target = random_hv(d, &mut rng);
        let mut mem = AssociativeMemory::new(2, d);
        mem.bundle(0, &target);
        mem.bundle(1, &h);

        let u = vec![1.0, -1.0]; // push toward class 0, away from class 1
        let g = feature_gradient(&proj, &mem, &u, &pre, &SteConfig::default());
        assert_eq!(g.len(), f);
        assert!(g.iter().any(|&x| x != 0.0));

        // Decoded gradients carry a 1/D normalisation, so scale the ascent
        // step relative to the input magnitude (as the manifold trainer
        // does).
        let norm_v: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        let norm_g: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        let step = 0.5 * norm_v / norm_g;
        let v2: Vec<f32> = v.iter().zip(&g).map(|(a, b)| a + step * b).collect();
        let h2 = proj.encode(&v2);
        let sims_before = mem.similarities(&h);
        let sims_after = mem.similarities(&h2);
        assert!(
            sims_after[0] - sims_after[1] > sims_before[0] - sims_before[1],
            "margin did not improve: {sims_before:?} → {sims_after:?}"
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_update_width_panics() {
        let mem = AssociativeMemory::new(3, 64);
        hyperspace_error(&mem, &[1.0, 2.0]);
    }
}
