//! Symbolic composition utilities: item memories, key–value records, and
//! sequence encoding.
//!
//! The paper positions NSHD inside neuro-symbolic AI: once data is
//! symbolised into hypervectors, classic HD algebra composes and queries
//! structures. This module supplies the standard toolkit — a seeded item
//! memory of named atomic symbols, record (key ⊗ value bundling)
//! encoding, and permutation-based n-gram sequence encoding — so the
//! symbolised representations can be *reasoned over*, not just
//! classified.

use crate::hypervector::BipolarHv;
use crate::ops::{bind, bundle, permute, sign_with_tiebreak};
use nshd_tensor::Rng;
use std::collections::HashMap;

/// A deterministic item memory: assigns each distinct name a random
/// bipolar hypervector, created lazily and reproducibly from a seed.
///
/// # Examples
///
/// ```
/// use nshd_hdc::ItemMemory;
///
/// let mut items = ItemMemory::new(1_000, 7);
/// let apple = items.get("apple").clone();
/// assert_eq!(&apple, items.get("apple")); // stable
/// assert_ne!(&apple, items.get("pear"));  // distinct
/// ```
#[derive(Debug, Clone)]
pub struct ItemMemory {
    dim: usize,
    rng: Rng,
    items: HashMap<String, BipolarHv>,
}

impl ItemMemory {
    /// Creates an item memory of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        ItemMemory { dim, rng: Rng::new(seed), items: HashMap::new() }
    }

    /// Dimensionality of stored symbols.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct symbols allocated so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no symbols have been allocated.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The hypervector for `name`, allocating a fresh quasi-orthogonal
    /// one on first use.
    pub fn get(&mut self, name: &str) -> &BipolarHv {
        if !self.items.contains_key(name) {
            // Derive the symbol from the name so allocation order does
            // not matter: fork the seed stream by the name's hash.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut rng = self.rng.clone().fork(h);
            let hv = BipolarHv::new(
                (0..self.dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect(),
            );
            self.items.insert(name.to_string(), hv);
        }
        &self.items[name]
    }

    /// The most similar known symbol to a query, with its cosine — the
    /// "cleanup memory" operation.
    pub fn cleanup(&self, query: &BipolarHv) -> Option<(&str, f32)> {
        let mut best: Option<(&str, f32)> = None;
        for (name, hv) in &self.items {
            let dot: i64 = hv
                .components()
                .iter()
                .zip(query.components())
                .map(|(&a, &b)| a as i64 * b as i64)
                .sum();
            let cos = dot as f32 / self.dim as f32;
            if best.map(|(_, b)| cos > b).unwrap_or(true) {
                best = Some((name.as_str(), cos));
            }
        }
        best
    }
}

/// Encodes a record `{key_i: value_i}` as `sign(Σ key_i ⊗ value_i)`.
///
/// Individual fields are recoverable by binding with the key again
/// (binding is self-inverse) and cleaning up against the item memory.
///
/// # Panics
///
/// Panics if `fields` is empty or dimensions disagree.
pub fn encode_record(fields: &[(&BipolarHv, &BipolarHv)]) -> BipolarHv {
    assert!(!fields.is_empty(), "record needs at least one field");
    let bound: Vec<BipolarHv> = fields.iter().map(|(k, v)| bind(k, v)).collect();
    let refs: Vec<&BipolarHv> = bound.iter().collect();
    sign_with_tiebreak(&bundle(&refs))
}

/// Retrieves (an approximation of) the value stored under `key` in a
/// record hypervector: `record ⊗ key`.
pub fn query_record(record: &BipolarHv, key: &BipolarHv) -> BipolarHv {
    bind(record, key)
}

/// Encodes a sequence of symbols as bundled position-permuted n-grams:
/// `Σ_i ρ^(n-1)(s_i) ⊗ ρ^(n-2)(s_{i+1}) ⊗ … ⊗ s_{i+n-1}` — the encoding
/// used by the HD language-recognition literature the paper cites.
///
/// # Panics
///
/// Panics if `n == 0` or the sequence is shorter than `n`.
pub fn encode_sequence(symbols: &[&BipolarHv], n: usize) -> BipolarHv {
    assert!(n > 0, "n-gram size must be positive");
    assert!(symbols.len() >= n, "sequence shorter than n-gram size");
    let mut grams: Vec<BipolarHv> = Vec::with_capacity(symbols.len() - n + 1);
    for window in symbols.windows(n) {
        let mut gram = permute(window[0], n - 1);
        for (offset, sym) in window.iter().enumerate().skip(1) {
            gram = bind(&gram, &permute(sym, n - 1 - offset));
        }
        grams.push(gram);
    }
    let refs: Vec<&BipolarHv> = grams.iter().collect();
    sign_with_tiebreak(&bundle(&refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine_packed;

    #[test]
    fn item_memory_is_order_independent() {
        let mut a = ItemMemory::new(512, 3);
        let mut b = ItemMemory::new(512, 3);
        let x1 = a.get("x").clone();
        let _ = b.get("y");
        let x2 = b.get("x").clone();
        assert_eq!(x1, x2, "symbol identity must not depend on allocation order");
    }

    #[test]
    fn record_fields_are_recoverable() {
        let dim = 4_096;
        let mut items = ItemMemory::new(dim, 5);
        let name_k = items.get("name").clone();
        let colour_k = items.get("colour").clone();
        let alice = items.get("alice").clone();
        let red = items.get("red").clone();
        let record = encode_record(&[(&name_k, &alice), (&colour_k, &red)]);
        // Unbind the name key and clean up.
        let noisy_name = query_record(&record, &name_k);
        let (best, cos) = items.cleanup(&noisy_name).expect("non-empty memory");
        assert_eq!(best, "alice", "cleanup returned {best} ({cos})");
        let noisy_colour = query_record(&record, &colour_k);
        assert_eq!(items.cleanup(&noisy_colour).expect("some").0, "red");
    }

    #[test]
    fn cleanup_rejects_unrelated_queries_gracefully() {
        let mut items = ItemMemory::new(2_048, 6);
        let _ = items.get("a");
        let _ = items.get("b");
        let mut other = ItemMemory::new(2_048, 99);
        let q = other.get("unrelated").clone();
        let (_, cos) = items.cleanup(&q).expect("non-empty");
        assert!(cos.abs() < 0.1, "unrelated query matched too well: {cos}");
    }

    #[test]
    fn sequences_distinguish_order() {
        let dim = 4_096;
        let mut items = ItemMemory::new(dim, 7);
        let a = items.get("a").clone();
        let b = items.get("b").clone();
        let c = items.get("c").clone();
        let abc = encode_sequence(&[&a, &b, &c], 2);
        let cba = encode_sequence(&[&c, &b, &a], 2);
        let abc2 = encode_sequence(&[&a, &b, &c], 2);
        assert_eq!(abc, abc2);
        let same = cosine_packed(&abc.to_packed(), &abc2.to_packed());
        let reversed = cosine_packed(&abc.to_packed(), &cba.to_packed());
        assert!(same > reversed + 0.5, "order not distinguished: {same} vs {reversed}");
    }

    #[test]
    fn similar_sequences_share_ngrams() {
        let dim = 4_096;
        let mut items = ItemMemory::new(dim, 8);
        let syms: Vec<BipolarHv> = (0..6).map(|i| items.get(&format!("s{i}")).clone()).collect();
        let refs: Vec<&BipolarHv> = syms.iter().collect();
        let full = encode_sequence(&refs, 3);
        // Replace the last symbol only: most trigrams survive.
        let mut alt = refs.clone();
        let z = items.get("z").clone();
        alt[5] = &z;
        let close = encode_sequence(&alt, 3);
        let cos = cosine_packed(&full.to_packed(), &close.to_packed());
        assert!(cos > 0.4, "shared n-grams lost: {cos}");
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_record_panics() {
        encode_record(&[]);
    }

    #[test]
    #[should_panic(expected = "shorter than n-gram")]
    fn short_sequence_panics() {
        let mut items = ItemMemory::new(64, 9);
        let a = items.get("a").clone();
        encode_sequence(&[&a], 2);
    }
}
