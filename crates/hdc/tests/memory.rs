//! Negative tests for the typed [`AssociativeMemory`] constructors and
//! accessors, plus the live-growth (`add_class`) and copy-on-write
//! snapshot ([`MemoryCell`]) semantics.

use nshd_hdc::{AssociativeMemory, BipolarHv, MemoryCell, MemoryError};
use std::sync::Arc;

#[test]
fn try_from_classes_rejects_empty_matrix() {
    assert_eq!(AssociativeMemory::try_from_classes(vec![]), Err(MemoryError::EmptyClasses));
}

#[test]
fn try_from_classes_rejects_zero_dim_rows() {
    let rows = vec![vec![], vec![]];
    assert_eq!(AssociativeMemory::try_from_classes(rows), Err(MemoryError::ZeroDim));
}

#[test]
fn try_from_classes_rejects_ragged_rows() {
    let rows = vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]];
    assert_eq!(
        AssociativeMemory::try_from_classes(rows),
        Err(MemoryError::Ragged { class: 1, expected: 2, actual: 1 })
    );
}

#[test]
fn try_from_classes_accepts_well_formed_matrix() {
    let mem = AssociativeMemory::try_from_classes(vec![vec![1.0, -2.0], vec![0.5, 0.0]])
        .expect("well-formed matrix");
    assert_eq!(mem.num_classes(), 2);
    assert_eq!(mem.dim(), 2);
    assert_eq!(mem.class(0), &[1.0, -2.0]);
}

#[test]
#[should_panic(expected = "ragged")]
fn from_classes_still_panics_on_ragged_rows() {
    AssociativeMemory::from_classes(vec![vec![1.0], vec![1.0, 2.0]]);
}

#[test]
#[should_panic(expected = "no rows")]
fn from_classes_still_panics_on_empty_matrix() {
    AssociativeMemory::from_classes(vec![]);
}

#[test]
fn try_class_rejects_out_of_range_index() {
    let mut mem = AssociativeMemory::new(3, 8);
    assert!(mem.try_class(2).is_ok());
    assert_eq!(
        mem.try_class(3).err(),
        Some(MemoryError::ClassOutOfRange { class: 3, num_classes: 3 })
    );
    assert_eq!(
        mem.try_class_mut(7).err(),
        Some(MemoryError::ClassOutOfRange { class: 7, num_classes: 3 })
    );
}

#[test]
fn try_class_mut_writes_through() {
    let mut mem = AssociativeMemory::new(2, 3);
    mem.try_class_mut(1).expect("in range").copy_from_slice(&[1.0, 2.0, 3.0]);
    assert_eq!(mem.class(1), &[1.0, 2.0, 3.0]);
}

#[test]
fn memory_error_messages_name_the_problem() {
    assert!(MemoryError::EmptyClasses.to_string().contains("no rows"));
    assert!(MemoryError::ZeroDim.to_string().contains("zero-dimensional"));
    let ragged = MemoryError::Ragged { class: 4, expected: 16, actual: 9 };
    assert!(ragged.to_string().contains("row 4"));
    let range = MemoryError::ClassOutOfRange { class: 9, num_classes: 3 };
    assert!(range.to_string().contains("class 9"));
}

#[test]
fn add_class_grows_and_scores_zero_until_bundled() {
    let mut mem = AssociativeMemory::new(2, 128);
    let h = BipolarHv::from_signs(&[1.0; 128]);
    mem.bundle(0, &h);
    let new = mem.add_class();
    assert_eq!(new, 2);
    assert_eq!(mem.num_classes(), 3);
    assert_eq!(mem.similarities(&h)[new], 0.0, "fresh class must score 0");
    mem.bundle(new, &h);
    mem.bundle(new, &h);
    assert_eq!(mem.predict(&h), new, "last-max tie-break favours the newest bundled class");
}

#[test]
fn snapshot_cell_isolates_inflight_readers_from_growth() {
    let cell = MemoryCell::new(AssociativeMemory::new(2, 32));
    let inflight = cell.load();
    let h = BipolarHv::from_signs(&[-1.0; 32]);
    let new_class = cell.add_class();
    cell.update(|m| m.bundle(new_class, &h));
    // The pinned snapshot still answers from the pre-growth world.
    assert_eq!(inflight.num_classes(), 2);
    assert_eq!(inflight.similarities(&h).len(), 2);
    // New loads see the grown, trained memory.
    let fresh = cell.load();
    assert_eq!(fresh.num_classes(), 3);
    assert_eq!(fresh.predict(&h), new_class);
    assert!(!Arc::ptr_eq(&inflight, &fresh));
}
