//! Direct unit tests for [`OnlineTrainer`]: deterministic per-epoch
//! misclassification counts, the `epoch`/`epoch_counts` equivalence,
//! and the early-exit contract of `train`.

use nshd_hdc::{bundle_init, AssociativeMemory, BipolarHv, EpochReport, OnlineTrainer};
use nshd_tensor::Rng;

fn random_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
    BipolarHv::new((0..dim).map(|_| if rng.bipolar() > 0.0 { 1 } else { -1 }).collect())
}

fn noisy_task(
    classes: usize,
    per_class: usize,
    dim: usize,
    flip: f32,
    seed: u64,
) -> Vec<(BipolarHv, usize)> {
    let mut rng = Rng::new(seed);
    let prototypes: Vec<BipolarHv> = (0..classes).map(|_| random_hv(dim, &mut rng)).collect();
    let mut set = Vec::new();
    for (c, prototype) in prototypes.iter().enumerate() {
        for _ in 0..per_class {
            let hv = BipolarHv::new(
                prototype
                    .components()
                    .iter()
                    .map(|&s| if rng.chance(flip) { -s } else { s })
                    .collect(),
            );
            set.push((hv, c));
        }
    }
    set
}

#[test]
fn epoch_counts_are_deterministic_across_reruns() {
    let train = noisy_task(4, 10, 512, 0.3, 11);
    let trainer = OnlineTrainer::new(0.25);
    let run = |_: usize| {
        let mut memory = bundle_init(4, 512, &train);
        trainer.train(&mut memory, &train, 5)
    };
    let first = run(0);
    for i in 1..3 {
        assert_eq!(run(i), first, "rerun {i} diverged");
    }
    assert!(!first.is_empty());
    assert!(first.iter().all(|r| r.samples == train.len()));
}

#[test]
fn epoch_counts_match_epoch_accuracy() {
    let train = noisy_task(3, 8, 256, 0.35, 12);
    let trainer = OnlineTrainer::new(0.3);
    let mut by_counts = bundle_init(3, 256, &train);
    let mut by_epoch = by_counts.clone();
    for _ in 0..4 {
        let report = trainer.epoch_counts(&mut by_counts, &train);
        let acc = trainer.epoch(&mut by_epoch, &train);
        assert_eq!(report.accuracy(), acc);
    }
    assert_eq!(by_counts, by_epoch, "the two paths must apply identical updates");
}

#[test]
fn misclassification_counts_are_nonincreasing_on_easy_task() {
    // Low noise: error correction should monotonically drain the errors.
    let train = noisy_task(3, 12, 1024, 0.1, 13);
    let trainer = OnlineTrainer::new(0.3);
    let mut memory = bundle_init(3, 1024, &train);
    let reports = trainer.train(&mut memory, &train, 8);
    for pair in reports.windows(2) {
        assert!(pair[1].misclassified <= pair[0].misclassified, "errors increased: {reports:?}");
    }
    assert_eq!(reports.last().map(|r| r.misclassified), Some(0), "task not learned: {reports:?}");
}

#[test]
fn train_stops_after_first_clean_epoch() {
    let train = noisy_task(2, 6, 2048, 0.05, 14);
    let trainer = OnlineTrainer::new(0.5);
    let mut memory = bundle_init(2, 2048, &train);
    let reports = trainer.train(&mut memory, &train, 50);
    assert!(reports.len() < 50, "never converged: {reports:?}");
    let clean = reports.iter().position(|r| r.misclassified == 0);
    assert_eq!(clean, Some(reports.len() - 1), "kept training past convergence: {reports:?}");
}

#[test]
fn empty_epoch_reports_zero_samples() {
    let trainer = OnlineTrainer::new(0.3);
    let mut memory = AssociativeMemory::new(2, 64);
    let report = trainer.epoch_counts(&mut memory, &[]);
    assert_eq!(report, EpochReport { samples: 0, misclassified: 0 });
    assert_eq!(report.accuracy(), 0.0);
    assert_eq!(trainer.epoch(&mut memory, &[]), 0.0);
}

#[test]
fn accuracy_is_fraction_of_correct_samples() {
    assert_eq!(EpochReport { samples: 8, misclassified: 2 }.accuracy(), 0.75);
    assert_eq!(EpochReport { samples: 3, misclassified: 3 }.accuracy(), 0.0);
    assert_eq!(EpochReport { samples: 5, misclassified: 0 }.accuracy(), 1.0);
}
