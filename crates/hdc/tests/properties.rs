//! Property-based tests for HD computing invariants.
//!
//! Cases are generated with the in-repo seeded [`Rng`] (no external
//! property-testing framework — the workspace builds offline). Failure
//! messages carry the case index, which reproduces the exact inputs.

use nshd_hdc::{
    bind, bundle, cosine_dense_bipolar, cosine_packed, permute, AssociativeMemory, BipolarHv,
    MassTrainer, RandomProjection,
};
use nshd_tensor::Rng;

const CASES: u64 = 48;

fn bipolar_hv(dim: usize, rng: &mut Rng) -> BipolarHv {
    BipolarHv::new((0..dim).map(|_| if rng.chance(0.5) { 1 } else { -1 }).collect())
}

#[test]
fn pack_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xa000 + case);
        let hv = bipolar_hv(130, &mut rng);
        assert_eq!(hv.to_packed().to_bipolar(), hv, "case {case}");
    }
}

#[test]
fn packed_dot_equals_dense() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xb000 + case);
        let a = bipolar_hv(100, &mut rng);
        let b = bipolar_hv(100, &mut rng);
        let dense: i64 =
            a.components().iter().zip(b.components()).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(a.to_packed().dot(&b.to_packed()), dense, "case {case}");
        let cd = cosine_dense_bipolar(&a.to_f32(), &b);
        let cp = cosine_packed(&a.to_packed(), &b.to_packed());
        assert!((cd - cp).abs() < 1e-5, "case {case}: {cd} vs {cp}");
    }
}

#[test]
fn bind_commutes_and_inverts() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xc000 + case);
        let a = bipolar_hv(96, &mut rng);
        let b = bipolar_hv(96, &mut rng);
        assert_eq!(bind(&a, &b), bind(&b, &a), "case {case}");
        assert_eq!(bind(&bind(&a, &b), &b), a, "case {case}");
        // Packed bind agrees with dense bind.
        assert_eq!(a.to_packed().bind(&b.to_packed()), bind(&a, &b).to_packed(), "case {case}");
    }
}

#[test]
fn bundle_commutes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xd000 + case);
        let a = bipolar_hv(64, &mut rng);
        let b = bipolar_hv(64, &mut rng);
        let c = bipolar_hv(64, &mut rng);
        assert_eq!(bundle(&[&a, &b, &c]), bundle(&[&c, &a, &b]), "case {case}");
    }
}

#[test]
fn permute_composes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xe000 + case);
        let hv = bipolar_hv(50, &mut rng);
        let s1 = rng.below(100);
        let s2 = rng.below(100);
        assert_eq!(permute(&permute(&hv, s1), s2), permute(&hv, s1 + s2), "case {case}");
        assert_eq!(permute(&hv, 50), hv, "case {case}");
    }
}

#[test]
fn projection_preserves_scaling_direction() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xf000 + case);
        // Positive scaling never changes the encoded hypervector: signs of
        // P·(k·v) equal signs of P·v.
        let v: Vec<f32> = (0..6).map(|_| rng.uniform_in(-3.0, 3.0)).collect();
        let k = rng.uniform_in(0.1, 5.0);
        let proj = RandomProjection::new(6, 512, 11);
        let scaled: Vec<f32> = v.iter().map(|x| x * k).collect();
        assert_eq!(proj.encode(&v), proj.encode(&scaled), "case {case}");
    }
}

#[test]
fn decode_is_adjoint() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1_0000 + case);
        let v: Vec<f32> = (0..5).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let seed = rng.below(32) as u64;
        let d = 256;
        let proj = RandomProjection::new(5, d, seed);
        let e: Vec<f32> = (0..d).map(|i| ((i as f32) * 0.17).sin()).collect();
        let lhs: f32 = proj.encode_raw(&v).iter().zip(&e).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(proj.decode(&e)).map(|(a, b)| a * b).sum::<f32>() * d as f32;
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "case {case}: {lhs} vs {rhs}");
    }
}

#[test]
fn mass_update_is_zero_for_perfect_memory() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2_0000 + case);
        // If the memory already holds exactly the sample in its class and
        // nothing anywhere else, U[label] ≈ 0 and other entries are ≈ 0.
        let hv = bipolar_hv(256, &mut rng);
        let mut mem = AssociativeMemory::new(2, 256);
        mem.bundle(0, &hv);
        let u = MassTrainer::new(0.1).update_vector(&mem, &hv, 0);
        assert!(u[0].abs() < 1e-4, "case {case}: {u:?}");
        assert!(u[1].abs() < 1e-4, "case {case}: {u:?}");
    }
}

#[test]
fn mass_step_moves_similarity_toward_label() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3_0000 + case);
        let hv = bipolar_hv(512, &mut rng);
        let other = bipolar_hv(512, &mut rng);
        let mut mem = AssociativeMemory::new(2, 512);
        mem.bundle(1, &other);
        let before = mem.similarities(&hv);
        MassTrainer::new(0.5).step(&mut mem, &hv, 0);
        let after = mem.similarities(&hv);
        assert!(after[0] >= before[0] - 1e-5, "case {case}: {before:?} -> {after:?}");
    }
}
