//! Property-based tests for HD computing invariants.

use nshd_hdc::{
    bind, bundle, cosine_dense_bipolar, cosine_packed, permute, AssociativeMemory, BipolarHv,
    MassTrainer, RandomProjection,
};
use proptest::prelude::*;

fn bipolar_hv(dim: usize) -> impl Strategy<Value = BipolarHv> {
    proptest::collection::vec(proptest::bool::ANY, dim)
        .prop_map(|bits| BipolarHv::new(bits.into_iter().map(|b| if b { 1 } else { -1 }).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pack_round_trip(hv in bipolar_hv(130)) {
        prop_assert_eq!(hv.to_packed().to_bipolar(), hv);
    }

    #[test]
    fn packed_dot_equals_dense(a in bipolar_hv(100), b in bipolar_hv(100)) {
        let dense: i64 = a.components().iter().zip(b.components())
            .map(|(&x, &y)| x as i64 * y as i64).sum();
        prop_assert_eq!(a.to_packed().dot(&b.to_packed()), dense);
        let cd = cosine_dense_bipolar(&a.to_f32(), &b);
        let cp = cosine_packed(&a.to_packed(), &b.to_packed());
        prop_assert!((cd - cp).abs() < 1e-5);
    }

    #[test]
    fn bind_commutes_and_inverts(a in bipolar_hv(96), b in bipolar_hv(96)) {
        prop_assert_eq!(bind(&a, &b), bind(&b, &a));
        prop_assert_eq!(bind(&bind(&a, &b), &b), a.clone());
        // Packed bind agrees with dense bind.
        prop_assert_eq!(
            a.to_packed().bind(&b.to_packed()),
            bind(&a, &b).to_packed()
        );
    }

    #[test]
    fn bundle_commutes(a in bipolar_hv(64), b in bipolar_hv(64), c in bipolar_hv(64)) {
        prop_assert_eq!(bundle(&[&a, &b, &c]), bundle(&[&c, &a, &b]));
    }

    #[test]
    fn permute_composes(hv in bipolar_hv(50), s1 in 0usize..100, s2 in 0usize..100) {
        prop_assert_eq!(permute(&permute(&hv, s1), s2), permute(&hv, s1 + s2));
        prop_assert_eq!(permute(&hv, 50), hv.clone());
    }

    #[test]
    fn projection_preserves_scaling_direction(
        v in proptest::collection::vec(-3.0f32..3.0, 6),
        k in 0.1f32..5.0,
    ) {
        // Positive scaling never changes the encoded hypervector: signs of
        // P·(k·v) equal signs of P·v.
        let proj = RandomProjection::new(6, 512, 11);
        let scaled: Vec<f32> = v.iter().map(|x| x * k).collect();
        prop_assert_eq!(proj.encode(&v), proj.encode(&scaled));
    }

    #[test]
    fn decode_is_adjoint(
        v in proptest::collection::vec(-2.0f32..2.0, 5),
        seed in 0u64..32,
    ) {
        let d = 256;
        let proj = RandomProjection::new(5, d, seed);
        let e: Vec<f32> = (0..d).map(|i| ((i as f32) * 0.17).sin()).collect();
        let lhs: f32 = proj.encode_raw(&v).iter().zip(&e).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(proj.decode(&e)).map(|(a, b)| a * b).sum::<f32>() * d as f32;
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn mass_update_is_zero_for_perfect_memory(hv in bipolar_hv(256)) {
        // If the memory already holds exactly the sample in its class and
        // nothing anywhere else, U[label] ≈ 0 and other entries are ≈ 0.
        let mut mem = AssociativeMemory::new(2, 256);
        mem.bundle(0, &hv);
        let u = MassTrainer::new(0.1).update_vector(&mem, &hv, 0);
        prop_assert!(u[0].abs() < 1e-4, "{:?}", u);
        prop_assert!(u[1].abs() < 1e-4, "{:?}", u);
    }

    #[test]
    fn mass_step_moves_similarity_toward_label(hv in bipolar_hv(512), other in bipolar_hv(512)) {
        let mut mem = AssociativeMemory::new(2, 512);
        mem.bundle(1, &other);
        let before = mem.similarities(&hv);
        MassTrainer::new(0.5).step(&mut mem, &hv, 0);
        let after = mem.similarities(&hv);
        prop_assert!(after[0] >= before[0] - 1e-5);
    }
}
