//! Analytical model of the Xilinx DPU accelerator on the ZCU104, the
//! platform of the paper's FPGA results (Table I, Fig. 6, Fig. 10).
//!
//! The model captures the structure that matters for throughput shape: a
//! fixed INT8 MAC array at 200 MHz, per-phase efficiency factors (dense
//! convolution keeps the array busy; fully-connected and HD phases are
//! bandwidth-bound), and a roofline-style `max(compute, memory)` cycle
//! count per phase.

use crate::phase::{OpKind, Phase, Workload};

/// One resource row of the FPGA utilisation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRow {
    /// Units used by the accelerator.
    pub used: u64,
    /// Units available on the device.
    pub available: u64,
}

impl ResourceRow {
    /// Utilisation percentage.
    pub fn utilization_percent(&self) -> f64 {
        self.used as f64 / self.available as f64 * 100.0
    }
}

/// The DPU configuration and resource footprint (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct DpuModel {
    /// Configuration name.
    pub name: String,
    /// Look-up tables.
    pub lut: ResourceRow,
    /// Flip-flops.
    pub ff: ResourceRow,
    /// Block RAM tiles.
    pub bram: ResourceRow,
    /// UltraRAM tiles.
    pub uram: ResourceRow,
    /// DSP slices.
    pub dsp: ResourceRow,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Measured board power in watts.
    pub power_w: f64,
    /// Peak INT8 MACs retired per cycle (a B4096-class core does 4096
    /// INT8 ops ≈ 2048 MACs per cycle).
    pub macs_per_cycle: f64,
    /// Peak binary (popcount/add-sub) ops per cycle — HD phases map to
    /// LUT logic and run wider than the MAC array.
    pub binary_ops_per_cycle: f64,
    /// External-memory bytes per cycle.
    pub bytes_per_cycle: f64,
    /// MAC-array efficiency for dense convolution phases.
    pub conv_efficiency: f64,
    /// MAC-array efficiency for fully-connected / bandwidth-bound phases.
    pub fc_efficiency: f64,
}

/// The standard Vitis-AI DPU core sizes (peak INT8 ops per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpuSize {
    /// B512 core: 512 ops/cycle.
    B512,
    /// B1024 core: 1024 ops/cycle.
    B1024,
    /// B2304 core: 2304 ops/cycle.
    B2304,
    /// B4096 core: 4096 ops/cycle (the ZCU104 configuration).
    B4096,
}

impl DpuSize {
    /// All sizes, smallest first.
    pub const ALL: [DpuSize; 4] = [DpuSize::B512, DpuSize::B1024, DpuSize::B2304, DpuSize::B4096];

    /// Peak INT8 operations per cycle.
    pub fn ops_per_cycle(self) -> f64 {
        match self {
            DpuSize::B512 => 512.0,
            DpuSize::B1024 => 1024.0,
            DpuSize::B2304 => 2304.0,
            DpuSize::B4096 => 4096.0,
        }
    }

    /// Approximate resource scaling relative to B4096 (DSPs and LUTs
    /// scale close to linearly with the MAC array).
    fn resource_fraction(self) -> f64 {
        self.ops_per_cycle() / 4096.0
    }
}

impl std::fmt::Display for DpuSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DpuSize::B512 => "B512",
            DpuSize::B1024 => "B1024",
            DpuSize::B2304 => "B2304",
            DpuSize::B4096 => "B4096",
        };
        f.write_str(name)
    }
}

impl DpuModel {
    /// The ZCU104 DPU configuration of the paper's Table I.
    pub fn zcu104() -> Self {
        DpuModel {
            name: "DPU @ ZCU104".into(),
            lut: ResourceRow { used: 84_900, available: 230_400 },
            ff: ResourceRow { used: 146_500, available: 460_800 },
            bram: ResourceRow { used: 224, available: 312 },
            uram: ResourceRow { used: 40, available: 96 },
            dsp: ResourceRow { used: 844, available: 1728 },
            frequency_hz: 200e6,
            power_w: 4.427,
            macs_per_cycle: 2048.0,
            binary_ops_per_cycle: 8192.0,
            bytes_per_cycle: 64.0,
            conv_efficiency: 0.55,
            fc_efficiency: 0.18,
        }
    }

    /// Cycles consumed by one phase: the roofline maximum of compute and
    /// memory cycles.
    pub fn phase_cycles(&self, phase: &Phase) -> f64 {
        let compute = match phase.kind {
            OpKind::MacFp32 | OpKind::MacInt8 => {
                // DPU executes everything quantised to INT8; efficiency
                // depends on phase structure.
                let eff = if phase.param_bytes > 0 && phase.ops / phase.param_bytes.max(1) < 16 {
                    // Low arithmetic intensity → FC-like.
                    self.fc_efficiency
                } else {
                    self.conv_efficiency
                };
                phase.ops as f64 / (self.macs_per_cycle * eff)
            }
            OpKind::BinaryOp => phase.ops as f64 / self.binary_ops_per_cycle,
            OpKind::Elementwise => phase.activation_bytes as f64 / self.bytes_per_cycle,
        };
        let memory = (phase.param_bytes + phase.activation_bytes) as f64 / self.bytes_per_cycle;
        compute.max(memory)
    }

    /// Total per-inference latency in seconds.
    pub fn latency_s(&self, workload: &Workload) -> f64 {
        let cycles: f64 = workload.phases.iter().map(|p| self.phase_cycles(p)).sum();
        cycles / self.frequency_hz
    }

    /// Inference throughput in frames per second — Fig. 6's metric.
    pub fn fps(&self, workload: &Workload) -> f64 {
        1.0 / self.latency_s(workload)
    }

    /// Energy per inference in millijoules (power × latency).
    pub fn energy_per_inference_mj(&self, workload: &Workload) -> f64 {
        self.power_w * self.latency_s(workload) * 1e3
    }

    /// A scaled DPU variant: the ZCU104 fabric with a smaller (or the
    /// same) core. Compute throughput, DSP/LUT footprint, and power scale
    /// with the MAC array; external bandwidth is a board property and
    /// stays fixed. Useful for design-space exploration ("which core fits
    /// my FPS target in my LUT budget?").
    pub fn zcu104_with_size(size: DpuSize) -> Self {
        let base = DpuModel::zcu104();
        let frac = size.resource_fraction();
        DpuModel {
            name: format!("DPU {size} @ ZCU104"),
            lut: ResourceRow {
                used: (base.lut.used as f64 * frac) as u64,
                available: base.lut.available,
            },
            ff: ResourceRow {
                used: (base.ff.used as f64 * frac) as u64,
                available: base.ff.available,
            },
            bram: ResourceRow {
                used: (base.bram.used as f64 * frac.max(0.4)) as u64, // buffers shrink sub-linearly
                available: base.bram.available,
            },
            uram: base.uram,
            dsp: ResourceRow {
                used: (base.dsp.used as f64 * frac) as u64,
                available: base.dsp.available,
            },
            macs_per_cycle: size.ops_per_cycle() / 2.0,
            binary_ops_per_cycle: base.binary_ops_per_cycle * frac,
            power_w: 1.2 + (base.power_w - 1.2) * frac, // static + dynamic split
            ..base
        }
    }

    /// The Table I rows as `(name, used, available, utilisation %)`.
    pub fn resource_table(&self) -> Vec<(&'static str, u64, u64, f64)> {
        vec![
            ("LUT", self.lut.used, self.lut.available, self.lut.utilization_percent()),
            ("FF", self.ff.used, self.ff.available, self.ff.utilization_percent()),
            ("BRAM", self.bram.used, self.bram.available, self.bram.utilization_percent()),
            ("URAM", self.uram.used, self.uram.available, self.uram.utilization_percent()),
            ("DSP", self.dsp.used, self.dsp.available, self.dsp.utilization_percent()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_utilisations_match_paper() {
        let dpu = DpuModel::zcu104();
        let rows = dpu.resource_table();
        let pct: Vec<f64> = rows.iter().map(|r| r.3).collect();
        // Paper Table I: 36.87%, 31.80%, 71.79%, 41.67%, 48.84%.
        for (got, expect) in pct.iter().zip([36.87, 31.80, 71.79, 41.67, 48.84]) {
            assert!((got - expect).abs() < 0.05, "{got} vs {expect}");
        }
        assert_eq!(dpu.frequency_hz, 200e6);
        assert!((dpu.power_w - 4.427).abs() < 1e-9);
    }

    #[test]
    fn fewer_macs_means_more_fps() {
        let dpu = DpuModel::zcu104();
        let heavy = Workload::new("h").with(Phase::new(
            "c",
            OpKind::MacInt8,
            50_000_000,
            1_000_000,
            100_000,
        ));
        let light =
            Workload::new("l").with(Phase::new("c", OpKind::MacInt8, 10_000_000, 500_000, 100_000));
        assert!(dpu.fps(&light) > dpu.fps(&heavy));
    }

    #[test]
    fn binary_phases_are_cheaper_than_equivalent_mac_phases() {
        let dpu = DpuModel::zcu104();
        let mac = Phase::new("m", OpKind::MacInt8, 1_000_000, 0, 0);
        let bin = Phase::new("b", OpKind::BinaryOp, 1_000_000, 0, 0);
        assert!(dpu.phase_cycles(&bin) < dpu.phase_cycles(&mac));
    }

    #[test]
    fn bandwidth_bound_phase_hits_memory_roofline() {
        let dpu = DpuModel::zcu104();
        // Tiny compute with huge parameter streaming: memory cycles win.
        let p = Phase::new("fc", OpKind::MacInt8, 1_000, 10_000_000, 0);
        let cycles = dpu.phase_cycles(&p);
        assert!((cycles - 10_000_000.0 / 64.0).abs() < 1.0);
    }

    #[test]
    fn smaller_cores_are_slower_but_cheaper() {
        let w =
            Workload::new("w").with(Phase::new("c", OpKind::MacInt8, 100_000_000, 1_000_000, 0));
        let mut prev_fps = 0.0;
        let mut prev_dsp = 0;
        for size in DpuSize::ALL {
            let dpu = DpuModel::zcu104_with_size(size);
            let fps = dpu.fps(&w);
            assert!(fps > prev_fps, "{size}: fps not increasing");
            assert!(dpu.dsp.used > prev_dsp, "{size}: dsp not increasing");
            prev_fps = fps;
            prev_dsp = dpu.dsp.used;
        }
        // The B4096 variant is exactly the Table I configuration.
        let full = DpuModel::zcu104_with_size(DpuSize::B4096);
        assert_eq!(full.dsp.used, DpuModel::zcu104().dsp.used);
        assert_eq!(full.macs_per_cycle, DpuModel::zcu104().macs_per_cycle);
    }

    #[test]
    fn fps_is_inverse_latency_and_energy_scales_with_latency() {
        let dpu = DpuModel::zcu104();
        let w = Workload::new("w").with(Phase::new("c", OpKind::MacInt8, 20_000_000, 2_000_000, 0));
        let fps = dpu.fps(&w);
        let lat = dpu.latency_s(&w);
        assert!((fps * lat - 1.0).abs() < 1e-9);
        assert!((dpu.energy_per_inference_mj(&w) - dpu.power_w * lat * 1e3).abs() < 1e-9);
    }
}
