//! Analytical energy model for GPU-class edge accelerators.
//!
//! The paper measures Xavier power with `nvidia-smi`; here energy is
//! `Σ ops·e_op + Σ bytes·e_byte` over the workload's phases, with per-op
//! energies differentiated by arithmetic class (the TensorRT INT8 path and
//! the binary constant-memory HD kernels are what make NSHD cheap on real
//! hardware, and the same structure makes it cheap here). Only *relative*
//! energy matters for Fig. 4, and relative energy is governed by the
//! op/byte counts, which this workspace counts exactly.

use crate::phase::{OpKind, Phase, Workload};

/// Per-operation and per-byte energy coefficients, in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyProfile {
    /// Profile name.
    pub name: String,
    /// Energy per FP32 MAC.
    pub pj_per_mac_fp32: f64,
    /// Energy per INT8 MAC.
    pub pj_per_mac_int8: f64,
    /// Energy per binary (sign-select add/sub) op.
    pub pj_per_binary_op: f64,
    /// Energy per elementwise op (per activation byte touched).
    pub pj_per_elementwise: f64,
    /// Energy per DRAM byte (parameter streaming).
    pub pj_per_dram_byte: f64,
    /// Energy per on-chip SRAM byte (activation traffic).
    pub pj_per_sram_byte: f64,
    /// Multiplier on parameter bytes: workloads describe INT8 deployment
    /// sizes, but the GPU path streams FP16 weights (TensorRT's default
    /// precision on Xavier), doubling weight traffic.
    pub weight_bytes_multiplier: f64,
}

impl EnergyProfile {
    /// An NVIDIA-Xavier-class edge-GPU profile.
    ///
    /// Coefficients follow published energy-per-op figures for 16 nm-class
    /// silicon (Horowitz ISSCC'14 scaling, LPDDR4x interface energy):
    /// ≈ 2.7 pJ per FP32 MAC, ≈ 0.25 pJ per tensor-core INT8 MAC,
    /// ≈ 0.1 pJ per binary add/sub, ≈ 25 pJ per LPDDR4x byte end to end,
    /// ≈ 1 pJ per SRAM byte, with FP16 weight streaming (2× the INT8
    /// deployment bytes). Absolute numbers are approximate; Fig. 4's
    /// percentages depend only on their ratios.
    pub fn xavier() -> Self {
        EnergyProfile {
            name: "xavier".into(),
            pj_per_mac_fp32: 2.7,
            pj_per_mac_int8: 0.25,
            pj_per_binary_op: 0.1,
            pj_per_elementwise: 0.2,
            pj_per_dram_byte: 25.0,
            pj_per_sram_byte: 1.0,
            weight_bytes_multiplier: 2.0,
        }
    }

    /// Energy of one phase, in picojoules.
    pub fn phase_energy_pj(&self, phase: &Phase) -> f64 {
        let op_cost = match phase.kind {
            OpKind::MacFp32 => self.pj_per_mac_fp32,
            OpKind::MacInt8 => self.pj_per_mac_int8,
            OpKind::BinaryOp => self.pj_per_binary_op,
            OpKind::Elementwise => self.pj_per_elementwise,
        };
        phase.ops as f64 * op_cost
            + phase.param_bytes as f64 * self.weight_bytes_multiplier * self.pj_per_dram_byte
            + phase.activation_bytes as f64 * self.pj_per_sram_byte
    }

    /// Energy of a whole per-inference workload, in microjoules.
    pub fn workload_energy_uj(&self, workload: &Workload) -> f64 {
        workload.phases.iter().map(|p| self.phase_energy_pj(p)).sum::<f64>() / 1e6
    }

    /// Percentage energy improvement of `candidate` over `baseline`
    /// (positive = candidate cheaper), the metric Fig. 4 plots.
    pub fn improvement_percent(&self, baseline: &Workload, candidate: &Workload) -> f64 {
        let b = self.workload_energy_uj(baseline);
        let c = self.workload_energy_uj(candidate);
        if b == 0.0 {
            return 0.0;
        }
        (1.0 - c / b) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn phase(kind: OpKind, ops: u64) -> Phase {
        Phase::new("p", kind, ops, 0, 0)
    }

    #[test]
    fn binary_ops_are_cheapest_int8_beats_fp32() {
        let p = EnergyProfile::xavier();
        let fp = p.phase_energy_pj(&phase(OpKind::MacFp32, 1000));
        let int8 = p.phase_energy_pj(&phase(OpKind::MacInt8, 1000));
        let bin = p.phase_energy_pj(&phase(OpKind::BinaryOp, 1000));
        assert!(fp > int8 && int8 > bin, "{fp} / {int8} / {bin}");
    }

    #[test]
    fn memory_traffic_dominates_small_compute() {
        let p = EnergyProfile::xavier();
        // 1 KB of DRAM traffic outweighs 1000 INT8 MACs.
        let mem_heavy = Phase::new("m", OpKind::MacInt8, 1000, 1024, 0);
        let compute_only = Phase::new("c", OpKind::MacInt8, 1000, 0, 0);
        assert!(p.phase_energy_pj(&mem_heavy) > 10.0 * p.phase_energy_pj(&compute_only));
    }

    #[test]
    fn improvement_percent_matches_hand_computation() {
        let p = EnergyProfile::xavier();
        let baseline = Workload::new("b").with(phase(OpKind::MacFp32, 1_000_000));
        let candidate = Workload::new("c").with(phase(OpKind::MacFp32, 500_000));
        let imp = p.improvement_percent(&baseline, &candidate);
        assert!((imp - 50.0).abs() < 1e-9);
        // Candidate worse → negative improvement.
        let worse = Workload::new("w").with(phase(OpKind::MacFp32, 2_000_000));
        assert!(p.improvement_percent(&baseline, &worse) < 0.0);
    }

    #[test]
    fn workload_energy_sums_phases() {
        let p = EnergyProfile::xavier();
        let w =
            Workload::new("w").with(phase(OpKind::MacInt8, 100)).with(phase(OpKind::BinaryOp, 100));
        let expect = (100.0 * 0.25 + 100.0 * 0.1) / 1e6;
        assert!((p.workload_energy_uj(&w) - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_yields_zero_improvement() {
        let p = EnergyProfile::xavier();
        assert_eq!(p.improvement_percent(&Workload::new("z"), &Workload::new("z")), 0.0);
    }
}
