//! # nshd-hwmodel
//!
//! Analytical hardware cost models for the NSHD paper's efficiency
//! experiments. The paper measures an NVIDIA Xavier GPU (`nvidia-smi`
//! power) and a Xilinx ZCU104 FPGA running the Vitis-AI DPU; neither is
//! available here, so this crate substitutes calibrated analytical models
//! (DESIGN.md §3):
//!
//! - [`EnergyProfile`] — per-op/per-byte energy accounting on a
//!   Xavier-class profile, driving the Fig. 4 energy-improvement numbers;
//! - [`DpuModel`] — a B4096-class DPU at 200 MHz with the paper's exact
//!   Table I resource footprint, a roofline cycle model, FPS (Fig. 6) and
//!   the dimensionality–efficiency tradeoff (Fig. 10);
//! - [`Workload`]/[`Phase`] — the pipeline description both models price.
//!
//! # Examples
//!
//! ```
//! use nshd_hwmodel::{DpuModel, EnergyProfile, OpKind, Phase, Workload};
//!
//! let w = Workload::new("demo")
//!     .with(Phase::new("conv", OpKind::MacInt8, 1_000_000, 10_000, 4_096))
//!     .with(Phase::new("hd encode", OpKind::BinaryOp, 300_000, 0, 3_000));
//! let fps = DpuModel::zcu104().fps(&w);
//! let uj = EnergyProfile::xavier().workload_energy_uj(&w);
//! assert!(fps > 0.0 && uj > 0.0);
//! ```

#![warn(missing_docs)]

mod dpu;
mod energy;
mod phase;
mod workloads;

pub use dpu::{DpuModel, DpuSize, ResourceRow};
pub use energy::EnergyProfile;
pub use phase::{OpKind, Phase, Workload};
pub use workloads::{
    cnn_workload, cnn_workload_from_stats, extractor_workload, extractor_workload_from_stats,
    phase_from_stat, INT8_ACT_BYTES, INT8_PARAM_BYTES,
};
