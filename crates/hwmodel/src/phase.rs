//! Workload phases: the unit both hardware models consume.
//!
//! An inference pipeline (CNN or NSHD) is described as an ordered list of
//! phases, each with an operation count, an arithmetic kind, and memory
//! traffic. The energy model prices each phase on a GPU-like profile; the
//! DPU model converts each phase to cycles.

/// The arithmetic class of a phase, which determines per-op cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// FP32 multiply–accumulate (unoptimised GPU path).
    MacFp32,
    /// INT8 multiply–accumulate (TensorRT-quantised convolutions, DPU
    /// native precision).
    MacInt8,
    /// Binary add/sub selected by a sign bit — the paper's optimized HD
    /// kernels (constant-memory binary hypervectors, no multiplication).
    BinaryOp,
    /// Elementwise / data-movement work (pooling, activation) — priced by
    /// bytes, with negligible arithmetic cost.
    Elementwise,
}

/// One stage of an inference pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable stage name (`"feature extractor"`, `"hd encode"`…).
    pub name: String,
    /// Arithmetic class.
    pub kind: OpKind,
    /// Operation count per inference (MACs or binary ops).
    pub ops: u64,
    /// Bytes of parameters streamed from DRAM per inference (weights are
    /// re-read unless cached; we charge them once per inference, the
    /// steady-state batch-1 behaviour of both platforms).
    pub param_bytes: u64,
    /// Bytes of activations moved through on-chip memory.
    pub activation_bytes: u64,
}

impl Phase {
    /// Creates a phase.
    pub fn new(
        name: impl Into<String>,
        kind: OpKind,
        ops: u64,
        param_bytes: u64,
        activation_bytes: u64,
    ) -> Self {
        Phase { name: name.into(), kind, ops, param_bytes, activation_bytes }
    }
}

/// A complete per-inference workload: an ordered list of phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    /// Pipeline name (`"CNN (VGG16)"`, `"NSHD (VGG16@27)"` …).
    pub name: String,
    /// The stages executed per inference.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Workload { name: name.into(), phases: Vec::new() }
    }

    /// Appends a phase, builder-style.
    pub fn with(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Total operation count across phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Total parameter bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.param_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder_accumulates() {
        let w = Workload::new("test")
            .with(Phase::new("a", OpKind::MacInt8, 100, 400, 50))
            .with(Phase::new("b", OpKind::BinaryOp, 200, 0, 10));
        assert_eq!(w.phases.len(), 2);
        assert_eq!(w.total_ops(), 300);
        assert_eq!(w.total_param_bytes(), 400);
    }
}
