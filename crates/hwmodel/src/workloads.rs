//! Builders that turn CNN cost statistics into hardware workloads.
//!
//! NSHD-specific pipelines (extractor + manifold + HD encode + similarity)
//! are assembled in `nshd-core`; this module provides the generic
//! CNN-side conversion both use.

use crate::phase::{OpKind, Phase, Workload};
use nshd_nn::stats::{model_stats, LayerStat, ModelStats};
use nshd_nn::Model;

/// Bytes per parameter under INT8 deployment quantisation (the paper runs
/// TensorRT / Vitis-AI INT8).
pub const INT8_PARAM_BYTES: u64 = 1;

/// Bytes per activation element (INT8 deployment).
pub const INT8_ACT_BYTES: u64 = 1;

/// Converts one layer's statistics into a phase.
pub fn phase_from_stat(stat: &LayerStat, prefix: &str) -> Phase {
    let kind = if stat.macs > 0 { OpKind::MacInt8 } else { OpKind::Elementwise };
    Phase::new(
        format!("{prefix}{}:{}", stat.index, stat.name),
        kind,
        stat.macs,
        stat.params as u64 * INT8_PARAM_BYTES,
        stat.activation_elems as u64 * INT8_ACT_BYTES,
    )
}

/// Builds the full-CNN inference workload from precomputed statistics
/// (works for both built models and reference-scale specs).
pub fn cnn_workload_from_stats(stats: &ModelStats, name: &str) -> Workload {
    let mut w = Workload::new(format!("CNN ({name})"));
    for s in &stats.features {
        w.phases.push(phase_from_stat(s, "feat"));
    }
    for s in &stats.classifier {
        w.phases.push(phase_from_stat(s, "head"));
    }
    w
}

/// Builds the full-CNN inference workload (the paper's baseline in
/// Figs. 4 and 6): every feature layer plus the classifier head.
pub fn cnn_workload(model: &Model) -> Workload {
    cnn_workload_from_stats(&model_stats(model), &model.name)
}

/// Builds the truncated-extractor workload from precomputed statistics.
///
/// # Panics
///
/// Panics if `cut` exceeds the feature stack.
pub fn extractor_workload_from_stats(stats: &ModelStats, cut: usize, name: &str) -> Workload {
    assert!(cut <= stats.features.len(), "cut {cut} exceeds feature stack");
    let mut w = Workload::new(format!("extractor ({name}@{cut})"));
    for s in &stats.features[..cut] {
        w.phases.push(phase_from_stat(s, "feat"));
    }
    w
}

/// Builds the truncated-extractor workload: feature layers `0..cut` only.
/// NSHD pipelines start from this and append manifold/HD phases.
pub fn extractor_workload(model: &Model, cut: usize) -> Workload {
    extractor_workload_from_stats(&model_stats(model), cut, &model.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_nn::Architecture;
    use nshd_tensor::Rng;

    #[test]
    fn cnn_workload_covers_all_layers() {
        let mut rng = Rng::new(1);
        let m = Architecture::Vgg16.build(10, &mut rng);
        let w = cnn_workload(&m);
        assert_eq!(w.phases.len(), 31 + 4);
        assert_eq!(w.total_ops(), {
            let stats = model_stats(&m);
            stats.total_macs
        });
    }

    #[test]
    fn extractor_workload_is_a_prefix() {
        let mut rng = Rng::new(2);
        let m = Architecture::MobileNetV2.build(10, &mut rng);
        let full = cnn_workload(&m);
        let cut = extractor_workload(&m, 15);
        assert_eq!(cut.phases.len(), 15);
        for (a, b) in cut.phases.iter().zip(full.phases.iter()) {
            assert_eq!(a, b);
        }
        assert!(cut.total_ops() < full.total_ops());
    }

    #[test]
    fn zero_mac_layers_become_elementwise() {
        let mut rng = Rng::new(3);
        let m = Architecture::Vgg16.build(10, &mut rng);
        let w = cnn_workload(&m);
        // Layer 1 is a ReLU.
        assert_eq!(w.phases[1].kind, OpKind::Elementwise);
        assert_eq!(w.phases[0].kind, OpKind::MacInt8);
    }
}
