//! Activation layers: ReLU, ReLU6, SiLU (swish), and Sigmoid.
//!
//! The model zoo uses ReLU for VGG, ReLU6 for MobileNetV2, and SiLU for
//! EfficientNet, matching the reference architectures.

use crate::layer::{Layer, Mode};
use crate::shape::ShapeError;
use nshd_tensor::{Shape, Tensor};

/// The activation function applied elementwise by [`Activation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// `max(0, x)` — VGG.
    Relu,
    /// `min(max(0, x), 6)` — MobileNetV2.
    Relu6,
    /// `x · σ(x)` — EfficientNet's swish.
    Silu,
    /// `1 / (1 + e^(-x))` — squeeze-and-excite gates.
    Sigmoid,
}

impl ActKind {
    fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Relu6 => x.clamp(0.0, 6.0),
            ActKind::Silu => x * sigmoid(x),
            ActKind::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative with respect to the pre-activation input `x`.
    fn derivative(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Relu6 => {
                if x > 0.0 && x < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Silu => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
            ActKind::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// An elementwise activation layer.
///
/// # Examples
///
/// ```
/// use nshd_nn::{Activation, ActKind, Layer, Mode};
/// use nshd_tensor::Tensor;
///
/// let mut relu = Activation::new(ActKind::Relu);
/// let y = relu.forward(&Tensor::from_slice(&[-1.0, 2.0]), Mode::Eval);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActKind) -> Self {
        Activation { kind, cached_input: None }
    }

    /// The activation kind.
    pub fn kind(&self) -> ActKind {
        self.kind
    }
}

impl Layer for Activation {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        match self.kind {
            ActKind::Relu => "relu".into(),
            ActKind::Relu6 => "relu6".into(),
            ActKind::Silu => "silu".into(),
            ActKind::Sigmoid => "sigmoid".into(),
        }
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| self.kind.apply(x))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input =
            self.cached_input.as_ref().expect("backward called without a training-mode forward");
        grad.zip_with(input, |g, x| g * self.kind.derivative(x))
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        Ok(Shape::from(in_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(kind: ActKind, xs: &[f32]) {
        let eps = 1e-3;
        for &x in xs {
            let analytic = kind.derivative(x);
            let numeric = (kind.apply(x + eps) - kind.apply(x - eps)) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-2, "{kind:?} at {x}: {analytic} vs {numeric}");
        }
    }

    #[test]
    fn relu_values_and_gradient() {
        assert_eq!(ActKind::Relu.apply(-2.0), 0.0);
        assert_eq!(ActKind::Relu.apply(3.0), 3.0);
        // Avoid the kink at 0 for finite differences.
        finite_diff_check(ActKind::Relu, &[-1.5, -0.2, 0.3, 2.0]);
    }

    #[test]
    fn relu6_saturates_both_ends() {
        assert_eq!(ActKind::Relu6.apply(10.0), 6.0);
        assert_eq!(ActKind::Relu6.apply(-1.0), 0.0);
        assert_eq!(ActKind::Relu6.apply(3.0), 3.0);
        finite_diff_check(ActKind::Relu6, &[-1.0, 1.0, 5.0, 7.0]);
    }

    #[test]
    fn silu_values_and_gradient() {
        assert!((ActKind::Silu.apply(0.0)).abs() < 1e-6);
        // silu(x) -> x for large x.
        assert!((ActKind::Silu.apply(10.0) - 10.0).abs() < 1e-3);
        finite_diff_check(ActKind::Silu, &[-3.0, -1.0, 0.0, 1.0, 3.0]);
    }

    #[test]
    fn sigmoid_values_and_gradient() {
        assert!((ActKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        finite_diff_check(ActKind::Sigmoid, &[-2.0, 0.0, 2.0]);
    }

    #[test]
    fn layer_backward_masks_gradient() {
        let mut relu = Activation::new(ActKind::Relu);
        let x = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        let _ = relu.forward(&x, Mode::Train);
        let g = relu.backward(&Tensor::ones([4]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "training-mode forward")]
    fn backward_without_forward_panics() {
        Activation::new(ActKind::Relu).backward(&Tensor::ones([1]));
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut a = Activation::new(ActKind::Relu);
        let _ = a.forward(&Tensor::ones([2]), Mode::Eval);
        assert!(a.cached_input.is_none());
    }
}
