//! Standard 2-D convolution, lowered to GEMM via im2col.

use crate::init::he_normal;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{
    col2im, conv_out_dim, im2col, matmul, matmul_at, matmul_bt, par, ConvGeometry, Rng, Shape,
    Tensor,
};

/// A 2-D convolution layer (`NCHW` in, `NKH'W'` out).
///
/// Weights are stored as a `K×(C·R·S)` matrix; the whole batch's im2col
/// patches are concatenated column-wise so the forward pass is a single
/// GEMM per layer.
///
/// # Examples
///
/// ```
/// use nshd_nn::{Conv2d, Layer, Mode};
/// use nshd_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::new(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::zeros([2, 3, 32, 32]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.dims(), &[2, 8, 32, 32]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Param,
    /// `CRS × (N·P)` patch matrix of the last training-mode forward.
    cached_cols: Option<Tensor>,
    cached_batch: usize,
    cached_in_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(he_normal(rng, &[out_channels, fan_in], fan_in));
        let bias = Param::new_no_decay(Tensor::zeros([out_channels]));
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias,
            cached_cols: None,
            cached_batch: 0,
            cached_in_hw: (0, 0),
        }
    }

    fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry {
            channels: self.in_channels,
            height: h,
            width: w,
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Unfolds the whole batch into one `CRS × (N·P)` patch matrix.
    ///
    /// The per-sample `im2col` unfolds are independent, so large batches
    /// run them in parallel across the `nshd_tensor::par` worker set;
    /// each sample's patches are produced by the same serial code either
    /// way, and the interleaving copy below is pure data movement, so
    /// the result is identical at any thread count.
    fn batch_cols(&self, input: &Tensor, g: &ConvGeometry) -> Tensor {
        let n = input.dims()[0];
        let crs = g.patch_len();
        let p = g.out_positions();
        let in_plane = self.in_channels * g.height * g.width;
        let items: Vec<&[f32]> =
            (0..n).map(|b| &input.as_slice()[b * in_plane..(b + 1) * in_plane]).collect();
        let unfold_work = (crs * p) as u64 * n as u64;
        let per_sample: Vec<Tensor> = if n > 1 && par::should_parallelize(unfold_work) {
            par::par_map(&items, |item| im2col(item, g))
        } else {
            items.iter().map(|item| im2col(item, g)).collect()
        };
        let mut cols = Tensor::zeros([crs, n * p]);
        let dst = cols.as_mut_slice();
        for (b, item_cols) in per_sample.iter().enumerate() {
            // Copy row-by-row into the combined matrix at column offset b·P.
            let src = item_cols.as_slice();
            for r in 0..crs {
                dst[r * n * p + b * p..r * n * p + (b + 1) * p]
                    .copy_from_slice(&src[r * p..(r + 1) * p]);
            }
        }
        cols
    }

    /// The full forward computation, shared between [`Layer::forward`] and
    /// [`Layer::infer`]: returns the patch matrix (for the training cache)
    /// and the biased output.
    fn compute(&self, input: &Tensor) -> (Tensor, Tensor) {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects NCHW input, got {:?}", dims);
        assert_eq!(dims[1], self.in_channels, "channel mismatch in {}", self.name());
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let g = self.geometry(h, w);
        let (oh, ow) = (g.out_height(), g.out_width());
        let p = oh * ow;
        let cols = self.batch_cols(input, &g);
        // One GEMM for the whole batch: K×CRS · CRS×(N·P) = K×(N·P).
        let y = matmul(&self.weight.value, &cols);
        // Scatter K×(N·P) → N×K×P, adding bias.
        let mut out = Tensor::zeros([n, self.out_channels, oh, ow]);
        let yv = y.as_slice();
        let ov = out.as_mut_slice();
        let bv = self.bias.value.as_slice();
        for k in 0..self.out_channels {
            let bias_k = bv[k];
            for b in 0..n {
                let src = &yv[k * n * p + b * p..k * n * p + (b + 1) * p];
                let dst =
                    &mut ov[(b * self.out_channels + k) * p..(b * self.out_channels + k + 1) * p];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + bias_k;
                }
            }
        }
        (cols, out)
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!(
            "conv{}x{}({}→{},s{})",
            self.kernel, self.kernel, self.in_channels, self.out_channels, self.stride
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (cols, out) = self.compute(input);
        if mode == Mode::Train {
            self.cached_batch = input.dims()[0];
            self.cached_in_hw = (input.dims()[2], input.dims()[3]);
            self.cached_cols = Some(cols);
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.compute(input).1
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cols =
            self.cached_cols.as_ref().expect("backward called without a training-mode forward");
        let dims = grad.dims();
        let (n, k) = (dims[0], dims[1]);
        assert_eq!(k, self.out_channels);
        assert_eq!(n, self.cached_batch, "batch size changed between forward and backward");
        let (h, w) = self.cached_in_hw;
        let g = self.geometry(h, w);
        let p = g.out_positions();
        // Gather N×K×P gradients into the K×(N·P) layout of the GEMM.
        let mut dy = Tensor::zeros([k, n * p]);
        {
            let gv = grad.as_slice();
            let dv = dy.as_mut_slice();
            for b in 0..n {
                for kk in 0..k {
                    let src = &gv[(b * k + kk) * p..(b * k + kk + 1) * p];
                    dv[kk * n * p + b * p..kk * n * p + (b + 1) * p].copy_from_slice(src);
                }
            }
        }
        // dW += dY · colsᵀ ; db += row sums of dY.
        let dw = matmul_bt(&dy, cols);
        self.weight.grad.axpy(1.0, &dw);
        {
            let dv = dy.as_slice();
            for kk in 0..k {
                let s: f32 = dv[kk * n * p..(kk + 1) * n * p].iter().sum();
                self.bias.grad.as_mut_slice()[kk] += s;
            }
        }
        // dcols = Wᵀ · dY ; dx_b = col2im(dcols[:, b·P..(b+1)·P]).
        let dcols = matmul_at(&self.weight.value, &dy);
        let crs = g.patch_len();
        let in_plane = self.in_channels * h * w;
        let mut dx = Tensor::zeros([n, self.in_channels, h, w]);
        let dcv = dcols.as_slice();
        // Per-sample col2im folds are independent; parallel for large
        // batches, with the same per-sample serial fold either way.
        let items: Vec<Tensor> = (0..n)
            .map(|b| {
                let mut item = Tensor::zeros([crs, p]);
                let iv = item.as_mut_slice();
                for r in 0..crs {
                    iv[r * p..(r + 1) * p]
                        .copy_from_slice(&dcv[r * n * p + b * p..r * n * p + (b + 1) * p]);
                }
                item
            })
            .collect();
        let fold_work = (crs * p) as u64 * n as u64;
        let images: Vec<Vec<f32>> = if n > 1 && par::should_parallelize(fold_work) {
            par::par_map(&items, |item| col2im(item, &g))
        } else {
            items.iter().map(|item| col2im(item, &g)).collect()
        };
        for (b, img) in images.iter().enumerate() {
            dx.write_slice(b * in_plane, img);
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        if in_shape[0] != self.in_channels {
            return Err(ShapeError::ChannelMismatch {
                layer: self.name(),
                expected: self.in_channels,
                actual: in_shape[0],
            });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        match (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        ) {
            (Some(oh), Some(ow)) => Ok(Shape::from([self.out_channels, oh, ow])),
            _ => Err(ShapeError::WindowTooLarge {
                layer: self.name(),
                window: self.kernel,
                input: (h, w),
            }),
        }
    }

    fn macs(&self, in_shape: &[usize]) -> u64 {
        let g = self.geometry(in_shape[1], in_shape[2]);
        (self.out_channels * g.patch_len() * g.out_positions()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn naive_conv(
        x: &Tensor,
        w: &Tensor,
        bias: &[f32],
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, h, wd) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (wd + 2 * pad - k) / stride + 1;
        let mut out = Tensor::zeros([n, cout, oh, ow]);
        for b in 0..n {
            for co in 0..cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[co];
                        for ci in 0..cin {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < wd
                                    {
                                        acc += x.at(&[b, ci, iy as usize, ix as usize])
                                            * w.at(&[co, ci * k * k + ky * k + kx]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[b, co, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_convolution() {
        let mut rng = Rng::new(1);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::from_fn([2, 2, 5, 6], |i| ((i * 31 % 17) as f32 - 8.0) / 8.0);
        let y = conv.forward(&x, Mode::Eval);
        let expected =
            naive_conv(&x, &conv.weight.value, conv.bias.value.as_slice(), 2, 3, 3, 2, 1);
        assert_eq!(y.shape(), expected.shape());
        for (a, b) in y.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        // Batch of 2 exercises the gather/scatter paths.
        let x = Tensor::from_fn([2, 1, 4, 4], |i| (i as f32 * 0.13).sin());
        let y = conv.forward(&x, Mode::Train);
        let ones = Tensor::ones(y.shape().clone());
        let dx = conv.backward(&ones);

        let eps = 1e-2;
        for &idx in &[0usize, 5, 10, 15, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = conv.forward(&xp, Mode::Eval).sum();
            let fm = conv.forward(&xm, Mode::Eval).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!((numeric - analytic).abs() < 2e-2, "dx[{idx}]: {analytic} vs {numeric}");
        }
        for &idx in &[0usize, 3, 8] {
            let orig = conv.weight.value.as_slice()[idx];
            conv.weight.value.as_mut_slice()[idx] = orig + eps;
            let fp = conv.forward(&x, Mode::Eval).sum();
            conv.weight.value.as_mut_slice()[idx] = orig - eps;
            let fm = conv.forward(&x, Mode::Eval).sum();
            conv.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = conv.weight.grad.as_slice()[idx];
            assert!((numeric - analytic).abs() < 4e-2, "dw[{idx}]: {analytic} vs {numeric}");
        }
        // Bias gradient: dL/db_k = batch × output positions.
        let plane = 2.0 * 16.0;
        for &g in conv.bias.grad.as_slice() {
            assert!((g - plane).abs() < 1e-3, "db {g} vs {plane}");
        }
    }

    #[test]
    fn macs_formula() {
        let mut rng = Rng::new(3);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        assert_eq!(conv.macs(&[3, 32, 32]), 8 * 27 * 1024);
        assert_eq!(conv.out_shape(&[3, 32, 32]), vec![8, 32, 32]);
        assert_eq!(conv.param_count(), 8 * 27 + 8);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panic() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        conv.forward(&Tensor::zeros([1, 2, 8, 8]), Mode::Eval);
    }
}
