//! Depthwise 2-D convolution (one filter per channel), the workhorse of
//! MobileNetV2's and EfficientNet's inverted-residual blocks.

use crate::init::he_normal;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{conv_out_dim, Rng, Shape, Tensor};

/// A depthwise convolution: each input channel is convolved with its own
/// `R×S` kernel; channel count is preserved.
///
/// # Examples
///
/// ```
/// use nshd_nn::{DepthwiseConv2d, Layer, Mode};
/// use nshd_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::new(0);
/// let mut dw = DepthwiseConv2d::new(4, 3, 2, 1, &mut rng);
/// let y = dw.forward(&Tensor::zeros([1, 4, 16, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `channels × kernel² ` filter bank.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with He-initialised filters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(channels > 0 && kernel > 0 && stride > 0);
        let fan_in = kernel * kernel;
        let weight = Param::new(he_normal(rng, &[channels, fan_in], fan_in));
        let bias = Param::new_no_decay(Tensor::zeros([channels]));
        DepthwiseConv2d { channels, kernel, stride, padding, weight, bias, cached_input: None }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

impl Layer for DepthwiseConv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("dwconv{}x{}(c{},s{})", self.kernel, self.kernel, self.channels, self.stride)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "DepthwiseConv2d expects NCHW input");
        assert_eq!(dims[1], self.channels, "channel mismatch in {}", self.name());
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros([n, self.channels, oh, ow]);
        let x = input.as_slice();
        let wv = self.weight.value.as_slice();
        let bv = self.bias.value.as_slice();
        let ov = out.as_mut_slice();
        let k = self.kernel;
        for b in 0..n {
            for c in 0..self.channels {
                let plane =
                    &x[(b * self.channels + c) * h * w..(b * self.channels + c + 1) * h * w];
                let filt = &wv[c * k * k..(c + 1) * k * k];
                let dst = &mut ov
                    [(b * self.channels + c) * oh * ow..(b * self.channels + c + 1) * oh * ow];
                for oy in 0..oh {
                    let y0 = (oy * self.stride) as isize - self.padding as isize;
                    let y_interior = y0 >= 0 && (y0 as usize) + k <= h;
                    for ox in 0..ow {
                        let x0 = (ox * self.stride) as isize - self.padding as isize;
                        let mut acc = bv[c];
                        if y_interior && x0 >= 0 && (x0 as usize) + k <= w {
                            // Fully in-bounds window: branch-free taps.
                            let base = y0 as usize * w + x0 as usize;
                            for ky in 0..k {
                                let row = &plane[base + ky * w..base + ky * w + k];
                                let frow = &filt[ky * k..ky * k + k];
                                for (&pv, &fv) in row.iter().zip(frow) {
                                    acc += pv * fv;
                                }
                            }
                        } else {
                            for ky in 0..k {
                                let iy = y0 + ky as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = x0 + kx as isize;
                                    if ix >= 0 && (ix as usize) < w {
                                        acc += plane[iy as usize * w + ix as usize]
                                            * filt[ky * k + kx];
                                    }
                                }
                            }
                        }
                        dst[oy * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called without a training-mode forward")
            .clone();
        let dims = input.dims();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad.dims(), &[n, self.channels, oh, ow]);
        let mut dx = Tensor::zeros([n, self.channels, h, w]);
        let x = input.as_slice();
        let g = grad.as_slice();
        let wv = self.weight.value.as_slice();
        let dwv = self.weight.grad.as_mut_slice();
        let dbv = self.bias.grad.as_mut_slice();
        let dxv = dx.as_mut_slice();
        let k = self.kernel;
        for b in 0..n {
            for c in 0..self.channels {
                let base_in = (b * self.channels + c) * h * w;
                let base_out = (b * self.channels + c) * oh * ow;
                let filt = &wv[c * k * k..(c + 1) * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[base_out + oy * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        dbv[c] += go;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix >= 0 && (ix as usize) < w {
                                    let pix = base_in + iy as usize * w + ix as usize;
                                    dwv[c * k * k + ky * k + kx] += go * x[pix];
                                    dxv[pix] += go * filt[ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        if in_shape[0] != self.channels {
            return Err(ShapeError::ChannelMismatch {
                layer: self.name(),
                expected: self.channels,
                actual: in_shape[0],
            });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        match (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        ) {
            (Some(oh), Some(ow)) => Ok(Shape::from([self.channels, oh, ow])),
            _ => Err(ShapeError::WindowTooLarge {
                layer: self.name(),
                window: self.kernel,
                input: (h, w),
            }),
        }
    }

    fn macs(&self, in_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2]);
        (self.channels * self.kernel * self.kernel * oh * ow) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_independent() {
        let mut rng = Rng::new(1);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        // Zero out channel 1's filter: its output must be the bias (0).
        for v in dw.weight.value.as_mut_slice()[9..18].iter_mut() {
            *v = 0.0;
        }
        let x = Tensor::from_fn([1, 2, 4, 4], |i| i as f32);
        let y = dw.forward(&x, Mode::Eval);
        let c1 = &y.as_slice()[16..32];
        assert!(c1.iter().all(|&v| v == 0.0));
        let c0 = &y.as_slice()[..16];
        assert!(c0.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn matches_full_conv_with_block_diagonal_weights() {
        use crate::conv::Conv2d;
        let mut rng = Rng::new(2);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        let mut full = Conv2d::new(2, 2, 3, 1, 1, &mut Rng::new(99));
        // Build the equivalent block-diagonal full-conv weight.
        for v in full.params_mut()[0].value.as_mut_slice().iter_mut() {
            *v = 0.0;
        }
        let dwv: Vec<f32> = dw.weight.value.as_slice().to_vec();
        {
            let wfull = &mut full.params_mut()[0].value;
            // full weight layout: [co][ci*9 + t], co==ci on the diagonal.
            for c in 0..2 {
                for t in 0..9 {
                    *wfull.at_mut(&[c, c * 9 + t]) = dwv[c * 9 + t];
                }
            }
        }
        let x = Tensor::from_fn([1, 2, 5, 5], |i| ((i * 7 % 13) as f32 - 6.0) / 6.0);
        let a = dw.forward(&x, Mode::Eval);
        let b = full.forward(&x, Mode::Eval);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut dw = DepthwiseConv2d::new(1, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32 * 0.31).cos());
        let y = dw.forward(&x, Mode::Train);
        let dx = dw.backward(&Tensor::ones(y.shape().clone()));
        let eps = 1e-2;
        for &idx in &[0usize, 7, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (dw.forward(&xp, Mode::Eval).sum() - dw.forward(&xm, Mode::Eval).sum())
                / (2.0 * eps);
            assert!((numeric - dx.as_slice()[idx]).abs() < 1e-2);
        }
        for &idx in &[0usize, 4, 8] {
            let orig = dw.weight.value.as_slice()[idx];
            dw.weight.value.as_mut_slice()[idx] = orig + eps;
            let fp = dw.forward(&x, Mode::Eval).sum();
            dw.weight.value.as_mut_slice()[idx] = orig - eps;
            let fm = dw.forward(&x, Mode::Eval).sum();
            dw.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - dw.weight.grad.as_slice()[idx]).abs() < 2e-2);
        }
    }

    #[test]
    fn macs_are_k2_per_output_element() {
        let mut rng = Rng::new(4);
        let dw = DepthwiseConv2d::new(8, 3, 1, 1, &mut rng);
        assert_eq!(dw.macs(&[8, 16, 16]), 8 * 9 * 256);
        assert_eq!(dw.param_count(), 8 * 9 + 8);
    }
}
