//! Shape-only layers: flatten and dropout.

use crate::layer::{Layer, Mode};
use crate::shape::ShapeError;
use nshd_tensor::{Rng, Shape, Tensor};

/// Flattens `N×C×H×W` to `N×(C·H·W)`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_in_shape: None }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.cached_in_shape = Some(input.dims().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let n = input.dims()[0];
        let f: usize = input.dims()[1..].iter().product();
        input.reshape([n, f]).expect("flatten preserves element count")
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape =
            self.cached_in_shape.as_ref().expect("backward called without a training-mode forward");
        grad.reshape(shape.clone()).expect("flatten preserves element count")
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        Ok(Shape::from([in_shape.iter().product()]))
    }
}

/// Inverted dropout: active only in training mode, identity in evaluation.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer that zeroes activations with probability `p`
    /// during training and rescales survivors by `1/(1-p)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        Dropout { p, rng, mask: None }
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("dropout({})", self.p)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => self.infer(input),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask = Tensor::from_fn(input.shape().clone(), |_| {
                    if self.rng.chance(keep) {
                        scale
                    } else {
                        0.0
                    }
                });
                let out = input.mul(&mask);
                self.mask = Some(mask);
                out
            }
        }
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called without a training-mode forward");
        grad.mul(mask)
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        Ok(Shape::from(in_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn dropout_identity_in_eval() {
        let mut d = Dropout::new(0.5, Rng::new(1));
        let x = Tensor::ones([4, 4]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn dropout_preserves_expectation_in_train() {
        let mut d = Dropout::new(0.3, Rng::new(2));
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, Mode::Train);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 1/(1-p).
        let nonzero: Vec<f32> = y.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(nonzero.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, Rng::new(3));
        let x = Tensor::ones([64]);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::ones([64]));
        // Gradient is zero exactly where the output was zeroed.
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        Dropout::new(1.0, Rng::new(4));
    }
}
