//! Weight initialisation schemes.

use nshd_tensor::{Rng, Tensor};

/// He (Kaiming) normal initialisation for layers followed by ReLU-family
/// activations: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal(rng: &mut Rng, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(shape.to_vec(), |_| rng.normal_with(0.0, std))
}

/// Xavier (Glorot) uniform initialisation for linear layers:
/// `U(±sqrt(6 / (fan_in + fan_out)))`.
pub fn xavier_uniform(rng: &mut Rng, shape: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::from_fn(shape.to_vec(), |_| rng.uniform_in(-bound, bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_std_scales_with_fan_in() {
        let mut rng = Rng::new(1);
        let n = 4096;
        let w = he_normal(&mut rng, &[n], 128);
        let var: f32 = w.as_slice().iter().map(|x| x * x).sum::<f32>() / n as f32;
        let expected = 2.0 / 128.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var} expected {expected}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng::new(2);
        let w = xavier_uniform(&mut rng, &[1000], 50, 70);
        let bound = (6.0f32 / 120.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound));
        // Spread should roughly fill the interval.
        assert!(w.max().unwrap() > bound * 0.8);
        assert!(w.min().unwrap() < -bound * 0.8);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_normal(&mut Rng::new(7), &[16], 8);
        let b = he_normal(&mut Rng::new(7), &[16], 8);
        assert_eq!(a, b);
    }
}
