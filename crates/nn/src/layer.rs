//! The layer abstraction all network components implement.

use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{Shape, Tensor};

/// Whether a forward pass is part of training or evaluation.
///
/// Controls batch-norm statistics (batch vs running) and dropout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: batch statistics, dropout active, inputs cached for
    /// backward.
    Train,
    /// Evaluation: running statistics, dropout inactive.
    #[default]
    Eval,
}

/// A differentiable network component.
///
/// Layers operate on batched tensors whose leading dimension is the batch
/// (`N×C×H×W` for spatial layers, `N×F` after flattening). Each layer caches
/// whatever it needs during a [`Mode::Train`] forward pass so that
/// [`backward`](Layer::backward) can run afterwards; calling `backward`
/// without a preceding training-mode forward is a programmer error and
/// panics.
pub trait Layer: Send + Sync {
    /// A short human-readable layer name, e.g. `"conv3x3(16→32)"`.
    fn name(&self) -> String;

    /// Computes the layer output for a batched input.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Computes the layer output for a batched input in evaluation mode
    /// without touching any layer state — the thread-shareable inference
    /// path (`&self`, so `Send + Sync` layers can serve concurrent
    /// requests). Must be bit-identical to `forward(input, Mode::Eval)`.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Propagates `grad` (∂loss/∂output) backwards, accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward pass preceded this call.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Immutable access to the layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's parameters, in the same stable order
    /// as [`params`](Layer::params).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Statically infers the output shape (excluding batch) for a given
    /// input shape (excluding batch), without running any arithmetic.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] naming this layer when the input shape
    /// violates the layer's contract (wrong rank, channel or feature
    /// mismatch, window larger than the input, …).
    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError>;

    /// Output shape (excluding batch) for a given input shape (excluding
    /// batch) — the panicking convenience over
    /// [`shape_of`](Layer::shape_of).
    ///
    /// # Panics
    ///
    /// Panics with the [`ShapeError`] message when the input shape is
    /// rejected.
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        match self.shape_of(in_shape) {
            Ok(shape) => shape.dims().to_vec(),
            Err(e) => panic!("{e}"),
        }
    }

    /// Checks that the layer is ready for evaluation-mode inference
    /// (e.g. batch-norm running statistics are finite and non-negative).
    /// Containers forward to their children; stateless layers are always
    /// ready.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the unready state.
    fn eval_ready(&self) -> Result<(), String> {
        Ok(())
    }

    /// Multiply–accumulate operations for one sample of the given input
    /// shape. Elementwise layers report 0 following the convention of the
    /// NSHD paper's Fig. 5 (binding/bundling counted by the HD side).
    fn macs(&self, _in_shape: &[usize]) -> u64 {
        0
    }

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Clones the layer into a boxed trait object, enabling `Clone` for
    /// containers of `Box<dyn Layer>` (and thus for whole models, so a
    /// trained teacher can be reused across experiment configurations).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Appends any non-parameter learned state (e.g. batch-norm running
    /// statistics) to `out`, in a stable order. Containers forward to
    /// their children in order. Parameter-only layers need not override.
    fn collect_state(&self, _out: &mut Vec<Vec<f32>>) {}

    /// Restores state previously produced by
    /// [`collect_state`](Layer::collect_state), consuming entries from
    /// the cursor in the same stable order.
    ///
    /// # Panics
    ///
    /// Implementations panic if the cursor runs dry or an entry has the
    /// wrong length.
    fn restore_state(&mut self, _state: &mut std::vec::IntoIter<Vec<f32>>) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal identity layer to exercise trait defaults.
    struct Identity;

    impl Layer for Identity {
        fn name(&self) -> String {
            "identity".into()
        }
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.clone()
        }
        fn infer(&self, input: &Tensor) -> Tensor {
            input.clone()
        }
        fn backward(&mut self, grad: &Tensor) -> Tensor {
            grad.clone()
        }
        fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
            Ok(Shape::from(in_shape))
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(Identity)
        }
    }

    #[test]
    fn trait_defaults_are_sensible() {
        let mut id = Identity;
        assert!(id.params().is_empty());
        assert_eq!(id.param_count(), 0);
        assert_eq!(id.macs(&[3, 32, 32]), 0);
        // The provided `out_shape` goes through `shape_of`.
        assert_eq!(id.out_shape(&[3, 2]), vec![3, 2]);
        assert!(id.eval_ready().is_ok());
        id.zero_grad(); // no-op, must not panic
        let x = Tensor::ones([2, 3]);
        assert_eq!(id.forward(&x, Mode::Train), x);
        assert_eq!(id.infer(&x), x);
        assert_eq!(id.backward(&x), x);
    }

    #[test]
    fn mode_default_is_eval() {
        assert_eq!(Mode::default(), Mode::Eval);
    }
}
