//! # nshd-nn
//!
//! A from-scratch CNN substrate for the NSHD workspace: layers with full
//! backward passes, optimizers, a training loop, per-layer cost
//! accounting, and width-reduced analogs of the four architectures the
//! NSHD paper (DAC 2023) uses as feature extractors — VGG16, MobileNetV2,
//! EfficientNet-B0 and EfficientNet-B7.
//!
//! The crate plays the role PyTorch + torchvision play for the original
//! paper: it supplies *trained* teachers whose truncated prefixes become
//! NSHD feature extractors, whose remaining layers provide distillation
//! targets, and whose per-layer MAC/parameter counts drive the efficiency
//! experiments (Figs. 4–6, Table II).
//!
//! # Examples
//!
//! ```
//! use nshd_nn::{Architecture, Mode};
//! use nshd_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::new(42);
//! let mut model = Architecture::EfficientNetB0.build(10, &mut rng);
//! let logits = model.forward(&Tensor::zeros([1, 3, 32, 32]), Mode::Eval);
//! assert_eq!(logits.dims(), &[1, 10]);
//! // Truncate after the paper's "layer 7" (cut = 8 feature layers kept):
//! let features = model.features_at(&Tensor::zeros([1, 3, 32, 32]), 8, Mode::Eval);
//! assert_eq!(features.len(), model.feature_len_at(8));
//! ```

#![warn(missing_docs)]

mod act;
mod conv;
mod dwconv;
mod flatten;
mod init;
mod layer;
mod linear;
mod loss;
mod model;
pub mod models;
mod norm;
mod optim;
mod param;
mod pool;
mod se;
mod sequential;
mod serialize;
mod shape;
pub mod specs;
pub mod stats;
mod trainer;

pub use act::{ActKind, Activation};
pub use conv::Conv2d;
pub use dwconv::DepthwiseConv2d;
pub use flatten::{Dropout, Flatten};
pub use init::{he_normal, xavier_uniform};
pub use layer::{Layer, Mode};
pub use linear::Linear;
pub use loss::{accuracy, cross_entropy, distillation_loss, LossOutput};
pub use model::Model;
pub use models::Architecture;
pub use norm::BatchNorm2d;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use se::SqueezeExcite;
pub use sequential::{Residual, Sequential};
pub use serialize::{load_model, save_model, CountingReader};
pub use shape::{ShapeError, ShapeStep, ShapeTrace};
pub use trainer::{evaluate, fit, EpochReport, TrainConfig};
