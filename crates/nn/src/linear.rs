//! Fully-connected layer.

use crate::init::xavier_uniform;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{matmul_at, matmul_bt, Rng, Shape, Tensor};

/// A fully-connected layer: `y = x·Wᵀ + b` over `N×F_in` batches.
///
/// # Examples
///
/// ```
/// use nshd_nn::{Layer, Linear, Mode};
/// use nshd_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::new(0);
/// let mut fc = Linear::new(8, 3, &mut rng);
/// let y = fc.forward(&Tensor::zeros([4, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[4, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// `out×in` weight matrix.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let weight = Param::new(xavier_uniform(
            rng,
            &[out_features, in_features],
            in_features,
            out_features,
        ));
        let bias = Param::new_no_decay(Tensor::zeros([out_features]));
        Linear { in_features, out_features, weight, bias, cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight matrix (`out×in`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable view of the weight matrix, for external training procedures
    /// such as the NSHD manifold-learner update.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Mutable view of the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias.value
    }

    /// `y = x·Wᵀ + b` for a pre-flattened `N×F_in` input, shared between
    /// [`Layer::forward`] and [`Layer::infer`].
    fn compute(&self, input2: &Tensor) -> Tensor {
        let mut y = matmul_bt(input2, &self.weight.value);
        let n = y.dims()[0];
        let bv = self.bias.value.as_slice().to_vec();
        for b in 0..n {
            let row = &mut y.as_mut_slice()[b * self.out_features..(b + 1) * self.out_features];
            for (o, add) in row.iter_mut().zip(&bv) {
                *o += add;
            }
        }
        y
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("linear({}→{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let input2 = flatten_to_2d(input, self.in_features);
        let y = self.compute(&input2);
        if mode == Mode::Train {
            self.cached_input = Some(input2);
        }
        y
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.compute(&flatten_to_2d(input, self.in_features))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input =
            self.cached_input.as_ref().expect("backward called without a training-mode forward");
        let n = grad.dims()[0];
        assert_eq!(grad.dims(), &[n, self.out_features]);
        // dW += gradᵀ · x  ((out×n)·(n×in))
        let dw = matmul_at(grad, input);
        self.weight.grad.axpy(1.0, &dw);
        // db += column sums of grad.
        for b in 0..n {
            let row = &grad.as_slice()[b * self.out_features..(b + 1) * self.out_features];
            for (g, &r) in self.bias.grad.as_mut_slice().iter_mut().zip(row) {
                *g += r;
            }
        }
        // dx = grad · W  ((n×out)·(out×in))
        nshd_tensor::matmul(grad, &self.weight.value)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        let f: usize = in_shape.iter().product();
        if f != self.in_features {
            return Err(ShapeError::FeatureMismatch {
                layer: self.name(),
                expected: self.in_features,
                actual: f,
            });
        }
        Ok(Shape::from([self.out_features]))
    }

    fn macs(&self, _in_shape: &[usize]) -> u64 {
        (self.in_features * self.out_features) as u64
    }
}

/// Flattens an `N×…` tensor to `N×F`, checking the feature count.
fn flatten_to_2d(input: &Tensor, features: usize) -> Tensor {
    let n = input.dims()[0];
    let f: usize = input.dims()[1..].iter().product();
    assert_eq!(f, features, "linear expects {features} features per sample, got {f}");
    input.reshape([n, f]).expect("same element count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(1);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        fc.bias.value = Tensor::from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let y = fc.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn accepts_nchw_input_by_flattening() {
        let mut rng = Rng::new(2);
        let mut fc = Linear::new(12, 4, &mut rng);
        let y = fc.forward(&Tensor::zeros([2, 3, 2, 2]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let mut fc = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.9, 0.2, -0.4], [2, 3]).unwrap();
        let y = fc.forward(&x, Mode::Train);
        // Loss: weighted sum to make gradients non-uniform.
        let gy = Tensor::from_fn(y.shape().clone(), |i| (i as f32 + 1.0) * 0.5);
        let dx = fc.backward(&gy);
        let loss = |fc: &mut Linear, x: &Tensor| {
            let out = fc.forward(x, Mode::Eval);
            out.as_slice().iter().enumerate().map(|(i, v)| v * (i as f32 + 1.0) * 0.5).sum::<f32>()
        };
        let eps = 1e-2;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&mut fc, &xp) - loss(&mut fc, &xm)) / (2.0 * eps);
            assert!((numeric - dx.as_slice()[idx]).abs() < 1e-2);
        }
        for idx in 0..fc.weight.value.len() {
            let orig = fc.weight.value.as_slice()[idx];
            fc.weight.value.as_mut_slice()[idx] = orig + eps;
            let fp = loss(&mut fc, &x);
            fc.weight.value.as_mut_slice()[idx] = orig - eps;
            let fm = loss(&mut fc, &x);
            fc.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - fc.weight.grad.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn macs_and_shape() {
        let mut rng = Rng::new(4);
        let fc = Linear::new(100, 10, &mut rng);
        assert_eq!(fc.macs(&[100]), 1000);
        assert_eq!(fc.out_shape(&[100]), vec![10]);
        assert_eq!(fc.param_count(), 1010);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn wrong_feature_count_panics() {
        let mut rng = Rng::new(5);
        let mut fc = Linear::new(4, 2, &mut rng);
        fc.forward(&Tensor::zeros([1, 5]), Mode::Eval);
    }
}
