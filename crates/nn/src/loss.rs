//! Classification losses: softmax cross-entropy and the soft
//! (distillation) variant.

use nshd_tensor::Tensor;

/// Value and gradient of softmax cross-entropy over a logit batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits (`N×K`), already divided by the
    /// batch size.
    pub grad: Tensor,
}

/// Softmax cross-entropy between `logits` (`N×K`) and integer `labels`.
///
/// # Panics
///
/// Panics if `logits` is not rank-2, `labels.len()` differs from the batch
/// size, or a label is out of range.
///
/// # Examples
///
/// ```
/// use nshd_nn::cross_entropy;
/// use nshd_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0], [1, 2])?;
/// let out = cross_entropy(&logits, &[0]);
/// assert!(out.loss < 0.01); // confident and correct
/// # Ok::<(), nshd_tensor::TensorError>(())
/// ```
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.shape().rank(), 2, "cross_entropy expects N×K logits");
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "label count must equal batch size");
    let probs = logits.softmax();
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (b, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let p = probs.at(&[b, label]).max(1e-12);
        loss -= p.ln();
        *grad.at_mut(&[b, label]) -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    LossOutput { loss: loss * inv_n, grad: grad.scale(inv_n) }
}

/// Distillation loss between student logits and a teacher's soft targets,
/// Hinton-style: `KL(softmax(teacher/T) ‖ softmax(student/T)) · T²`,
/// averaged over the batch.
///
/// Returned gradient is with respect to the student logits. The `T²` factor
/// keeps gradient magnitudes comparable across temperatures.
///
/// # Panics
///
/// Panics if shapes disagree or `temperature <= 0`.
pub fn distillation_loss(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    temperature: f32,
) -> LossOutput {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(student_logits.shape(), teacher_logits.shape());
    let (n, _k) = (student_logits.dims()[0], student_logits.dims()[1]);
    let p_teacher = teacher_logits.softmax_with_temperature(temperature);
    let p_student = student_logits.softmax_with_temperature(temperature);
    let mut loss = 0.0;
    for (t, s) in p_teacher.as_slice().iter().zip(p_student.as_slice()) {
        if *t > 0.0 {
            loss += t * (t.max(1e-12).ln() - s.max(1e-12).ln());
        }
    }
    // d/d(student logits) of T²·KL = T · (p_student - p_teacher); averaged
    // over batch.
    let grad = p_student.sub(&p_teacher).scale(temperature / n as f32);
    LossOutput { loss: loss * temperature * temperature / n as f32, grad }
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `labels.len()` differs from the
/// batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.shape().rank(), 2);
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n);
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[b * k..(b + 1) * k];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if pred == label {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let out = cross_entropy(&logits, &[0, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_over_n() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, 0.1], [2, 2]).unwrap();
        let out = cross_entropy(&logits, &[1, 0]);
        let probs = logits.softmax();
        let expect_00 = probs.at(&[0, 0]) / 2.0;
        let expect_01 = (probs.at(&[0, 1]) - 1.0) / 2.0;
        assert!((out.grad.at(&[0, 0]) - expect_00).abs() < 1e-6);
        assert!((out.grad.at(&[0, 1]) - expect_01).abs() < 1e-6);
        // Gradient rows sum to zero.
        for b in 0..2 {
            let s: f32 = (0..2).map(|k| out.grad.at(&[b, k])).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.8, 1.2], [1, 3]).unwrap();
        let labels = [2usize];
        let out = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let numeric =
                (cross_entropy(&lp, &labels).loss - cross_entropy(&lm, &labels).loss) / (2.0 * eps);
            assert!((numeric - out.grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn distillation_zero_when_student_matches_teacher() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.3], [1, 3]).unwrap();
        let out = distillation_loss(&logits, &logits, 4.0);
        assert!(out.loss.abs() < 1e-5);
        assert!(out.grad.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn distillation_gradient_matches_finite_differences() {
        let student = Tensor::from_vec(vec![0.5, -0.5, 1.0], [1, 3]).unwrap();
        let teacher = Tensor::from_vec(vec![2.0, 0.0, -1.0], [1, 3]).unwrap();
        let t = 3.0;
        let out = distillation_loss(&student, &teacher, t);
        let eps = 1e-3;
        for idx in 0..3 {
            let mut sp = student.clone();
            sp.as_mut_slice()[idx] += eps;
            let mut sm = student.clone();
            sm.as_mut_slice()[idx] -= eps;
            let numeric = (distillation_loss(&sp, &teacher, t).loss
                - distillation_loss(&sm, &teacher, t).loss)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad.as_slice()[idx]).abs() < 1e-3,
                "{numeric} vs {}",
                out.grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 9.0, 0.0, 0.1, 0.2, 0.3], [3, 3]).unwrap();
        assert!((accuracy(&logits, &[2, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros([0, 3]), &[]), 0.0);
    }
}
