//! The [`Model`] container: an indexed feature stack plus a classifier
//! head, mirroring the `features` / `classifier` split of torchvision
//! models that the NSHD paper's layer indices refer to.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::sequential::Sequential;
use crate::shape::{ShapeError, ShapeTrace};
use nshd_tensor::Tensor;

/// A CNN organised as `features` (indexed layers, the paper's truncation
/// points) followed by a `classifier` head.
///
/// The NSHD pipeline truncates `features` at a *cut point* — `cut` layers
/// are kept — and uses the remainder plus the classifier as the
/// distillation teacher's tail.
#[derive(Clone)]
pub struct Model {
    /// Human-readable model name (`"vgg16"`, `"efficientnet-b0"`, …).
    pub name: String,
    /// The indexed feature stack.
    pub features: Sequential,
    /// The classification head.
    pub classifier: Sequential,
    /// Expected input shape, CHW.
    pub input_shape: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl Model {
    /// Full forward pass producing logits (`N×classes`).
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let feats = self.features.forward_all(input, mode);
        self.classifier.forward_all(&feats, mode)
    }

    /// Backward pass through classifier then features (training-mode
    /// forward required).
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.classifier.backward_all(grad_logits);
        self.features.backward_all(&g)
    }

    /// Activations after the first `cut` feature layers — NSHD's extracted
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if `cut > self.features.len()`.
    pub fn features_at(&mut self, input: &Tensor, cut: usize, mode: Mode) -> Tensor {
        self.features.forward_to(input, cut, mode)
    }

    /// Full evaluation-mode forward pass without mutating any layer — the
    /// `&self` counterpart of [`forward`](Model::forward), usable from a
    /// shared reference across threads.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let feats = self.features.infer_all(input);
        self.classifier.infer_all(&feats)
    }

    /// Activations after the first `cut` feature layers, computed in
    /// evaluation mode without mutating any layer — the `&self`
    /// counterpart of [`features_at`](Model::features_at). Bit-identical
    /// to `features_at(input, cut, Mode::Eval)`.
    ///
    /// # Panics
    ///
    /// Panics if `cut > self.features.len()`.
    pub fn infer_features_at(&self, input: &Tensor, cut: usize) -> Tensor {
        self.features.infer_to(input, cut)
    }

    /// Completes the forward pass from intermediate features: runs
    /// feature layers `cut..` and the classifier. Used to obtain teacher
    /// logits without recomputing the shared prefix.
    ///
    /// # Panics
    ///
    /// Panics if `cut > self.features.len()`.
    pub fn logits_from_features(&mut self, feats: &Tensor, cut: usize, mode: Mode) -> Tensor {
        let tail = self.features.forward_from(feats, cut, mode);
        self.classifier.forward_all(&tail, mode)
    }

    /// Flattened feature count after `cut` feature layers.
    pub fn feature_len_at(&self, cut: usize) -> usize {
        self.features.out_shape_at(&self.input_shape, cut).iter().product()
    }

    /// Feature-map shape (CHW) after `cut` feature layers.
    pub fn feature_shape_at(&self, cut: usize) -> Vec<usize> {
        self.features.out_shape_at(&self.input_shape, cut)
    }

    /// All parameters, features first.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.features.params_mut();
        p.extend(self.classifier.params_mut());
        p
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.features.param_count() + self.classifier.param_count()
    }

    /// Parameter count of the first `cut` feature layers only — the part
    /// NSHD keeps at inference time.
    pub fn param_count_to_cut(&self, cut: usize) -> usize {
        self.features.param_count_to(cut)
    }

    /// MACs for one full forward pass of a single sample.
    pub fn total_macs(&self) -> u64 {
        let feat_shape = self.features.out_shape(&self.input_shape);
        self.features.total_macs(&self.input_shape) + self.classifier.total_macs(&feat_shape)
    }

    /// MACs for the first `cut` feature layers of a single sample.
    pub fn macs_to_cut(&self, cut: usize) -> u64 {
        self.features.macs_to(&self.input_shape, cut)
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.features.zero_grad();
        self.classifier.zero_grad();
    }

    /// Statically traces the model's own input shape through the feature
    /// stack and the classifier, returning both traces.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShapeError`] encountered; feature-stack
    /// failures are reported before classifier failures.
    pub fn infer_shapes(&self) -> Result<(ShapeTrace, ShapeTrace), ShapeError> {
        let features = self.features.infer_shapes(&self.input_shape)?;
        let classifier = self.classifier.infer_shapes(features.output())?;
        Ok((features, classifier))
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("name", &self.name)
            .field("features", &self.features)
            .field("classifier", &self.classifier)
            .field("input_shape", &self.input_shape)
            .field("num_classes", &self.num_classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{ActKind, Activation};
    use crate::conv::Conv2d;
    use crate::flatten::Flatten;
    use crate::linear::Linear;
    use crate::pool::MaxPool2d;
    use nshd_tensor::Rng;

    fn tiny_model() -> Model {
        let mut rng = Rng::new(1);
        let features = Sequential::new()
            .with(Conv2d::new(1, 4, 3, 1, 1, &mut rng))
            .with(Activation::new(ActKind::Relu))
            .with(MaxPool2d::new(2));
        let classifier =
            Sequential::new().with(Flatten::new()).with(Linear::new(4 * 4 * 4, 3, &mut rng));
        Model {
            name: "tiny".into(),
            features,
            classifier,
            input_shape: vec![1, 8, 8],
            num_classes: 3,
        }
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = tiny_model();
        let y = m.forward(&Tensor::zeros([2, 1, 8, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn split_forward_matches_full_forward() {
        let mut m = tiny_model();
        let x = Tensor::from_fn([1, 1, 8, 8], |i| (i as f32 * 0.1).sin());
        let full = m.forward(&x, Mode::Eval);
        let feats = m.features_at(&x, 2, Mode::Eval);
        let rejoined = m.logits_from_features(&feats, 2, Mode::Eval);
        for (a, b) in full.as_slice().iter().zip(rejoined.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn infer_matches_eval_forward_bitwise() {
        let mut m = tiny_model();
        let x = Tensor::from_fn([3, 1, 8, 8], |i| (i as f32 * 0.17).sin());
        assert_eq!(m.infer(&x).as_slice(), m.forward(&x, Mode::Eval).as_slice());
        assert_eq!(
            m.infer_features_at(&x, 2).as_slice(),
            m.features_at(&x, 2, Mode::Eval).as_slice()
        );
    }

    #[test]
    fn feature_shapes_and_counts() {
        let m = tiny_model();
        assert_eq!(m.feature_shape_at(1), vec![4, 8, 8]);
        assert_eq!(m.feature_len_at(3), 4 * 4 * 4);
        assert_eq!(m.param_count_to_cut(1), 4 * 9 + 4);
        assert!(m.param_count() > m.param_count_to_cut(3));
        assert!(m.total_macs() > m.macs_to_cut(3));
    }

    #[test]
    fn backward_flows_to_input() {
        let mut m = tiny_model();
        let x = Tensor::from_fn([1, 1, 8, 8], |i| (i as f32 * 0.2).cos());
        let y = m.forward(&x, Mode::Train);
        let dx = m.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.as_slice().iter().any(|&g| g != 0.0));
    }
}
