//! EfficientNet-B0/B7 analogs with per-block feature indexing.

use crate::act::{ActKind, Activation};
use crate::conv::Conv2d;
use crate::dwconv::DepthwiseConv2d;
use crate::linear::Linear;
use crate::model::Model;
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;
use crate::se::SqueezeExcite;
use crate::sequential::Sequential;
use crate::Residual;
use nshd_tensor::Rng;

/// Number of entries in the EfficientNet `features` stack (indices 0–8,
/// matching torchvision): stem, 7 MBConv stages, head.
pub const EFFICIENTNET_FEATURE_COUNT: usize = 9;

/// conv + BN + SiLU helper.
fn conv_bn_silu(
    seq: &mut Sequential,
    cin: usize,
    cout: usize,
    k: usize,
    s: usize,
    p: usize,
    rng: &mut Rng,
) {
    seq.push(Box::new(Conv2d::new(cin, cout, k, s, p, rng)));
    seq.push(Box::new(BatchNorm2d::new(cout)));
    seq.push(Box::new(Activation::new(ActKind::Silu)));
}

/// One MBConv block: expand (1×1) → depthwise → squeeze-and-excite →
/// project (1×1, linear), with a skip connection when shape-preserving.
fn mbconv(
    cin: usize,
    cout: usize,
    stride: usize,
    expand: usize,
    kernel: usize,
    rng: &mut Rng,
) -> Box<dyn crate::Layer> {
    let hidden = cin * expand;
    let mut body = Sequential::new();
    if expand != 1 {
        conv_bn_silu(&mut body, cin, hidden, 1, 1, 0, rng);
    }
    body.push(Box::new(DepthwiseConv2d::new(hidden, kernel, stride, kernel / 2, rng)));
    body.push(Box::new(BatchNorm2d::new(hidden)));
    body.push(Box::new(Activation::new(ActKind::Silu)));
    // SE reduction is relative to the block's input channels (ratio 4).
    body.push(Box::new(SqueezeExcite::new(hidden, (cin / 4).max(1), rng)));
    body.push(Box::new(Conv2d::new(hidden, cout, 1, 1, 0, rng)));
    body.push(Box::new(BatchNorm2d::new(cout)));
    if stride == 1 && cin == cout {
        Box::new(Residual::new(body))
    } else {
        Box::new(body)
    }
}

/// Per-variant compound-scaling plan.
struct Plan {
    name: &'static str,
    stem: usize,
    head: usize,
    /// (expand, channels, repeats, first-stride, kernel) per stage.
    stages: [(usize, usize, usize, usize, usize); 7],
}

/// Builds an EfficientNet model from a plan.
fn build(plan: &Plan, num_classes: usize, rng: &mut Rng) -> Model {
    let mut features = Sequential::new();
    // Block 0: stem (reference stride 2; stride 1 for 32×32 inputs).
    {
        let mut op = Sequential::new();
        conv_bn_silu(&mut op, 3, plan.stem, 3, 1, 1, rng);
        features.push(Box::new(op));
    }
    let mut cin = plan.stem;
    for (expand, cout, repeats, stride, kernel) in plan.stages {
        let mut stage = Sequential::new();
        for i in 0..repeats {
            let s = if i == 0 { stride } else { 1 };
            stage.push(mbconv(cin, cout, s, expand, kernel, rng));
            cin = cout;
        }
        features.push(Box::new(stage));
    }
    // Block 8: 1×1 head conv.
    {
        let mut op = Sequential::new();
        conv_bn_silu(&mut op, cin, plan.head, 1, 1, 0, rng);
        features.push(Box::new(op));
    }
    debug_assert_eq!(features.len(), EFFICIENTNET_FEATURE_COUNT);
    let classifier =
        Sequential::new().with(GlobalAvgPool::new()).with(Linear::new(plan.head, num_classes, rng));
    Model {
        name: plan.name.into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes,
    }
}

/// Builds the EfficientNet-B0 analog for 3×32×32 inputs.
///
/// Stage structure (expansion, repeats, kernels, SE) follows the reference
/// B0; channels are width-reduced and total downsampling is 8× for 32×32
/// inputs. Feature indices: 0 = stem, 1–7 = MBConv stages, 8 = head — the
/// paper's "layers 5–8".
pub fn efficientnet_b0(num_classes: usize, rng: &mut Rng) -> Model {
    let plan = Plan {
        name: "efficientnet-b0",
        stem: 8,
        head: 192,
        // Reference: t, c(16,24,40,80,112,192,320), n(1,2,2,3,3,4,1),
        // kernels (3,3,5,3,5,5,3). Channels scaled ≈ /5 (min 8) — wide
        // enough to learn shape classes on one CPU core; strides adapted
        // to 32×32 (8× total).
        stages: [
            (1, 8, 1, 1, 3),
            (6, 8, 2, 1, 3),
            (6, 12, 2, 2, 5),
            (6, 16, 3, 2, 3),
            (6, 22, 3, 1, 5),
            (6, 38, 4, 2, 5),
            (6, 64, 1, 1, 3),
        ],
    };
    build(&plan, num_classes, rng)
}

/// Builds the EfficientNet-B7 analog: the same stage skeleton scaled wider
/// and deeper (compound scaling), as in the reference family.
pub fn efficientnet_b7(num_classes: usize, rng: &mut Rng) -> Model {
    let plan = Plan {
        name: "efficientnet-b7",
        stem: 12,
        head: 384,
        stages: [
            (1, 12, 2, 1, 3),
            (6, 16, 3, 1, 3),
            (6, 24, 3, 2, 5),
            (6, 32, 4, 2, 3),
            (6, 44, 4, 1, 5),
            (6, 76, 5, 2, 5),
            (6, 128, 2, 1, 3),
        ],
    };
    build(&plan, num_classes, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use nshd_tensor::Tensor;

    #[test]
    fn block_count_is_nine() {
        let mut rng = Rng::new(1);
        let b0 = efficientnet_b0(10, &mut rng);
        assert_eq!(b0.features.len(), EFFICIENTNET_FEATURE_COUNT);
        let b7 = efficientnet_b7(10, &mut rng);
        assert_eq!(b7.features.len(), EFFICIENTNET_FEATURE_COUNT);
    }

    #[test]
    fn b7_is_strictly_larger_than_b0() {
        let mut rng = Rng::new(2);
        let b0 = efficientnet_b0(10, &mut rng);
        let b7 = efficientnet_b7(10, &mut rng);
        assert!(b7.param_count() > 2 * b0.param_count());
        assert!(b7.total_macs() > 2 * b0.total_macs());
    }

    #[test]
    fn forward_backward_b0() {
        let mut rng = Rng::new(3);
        let mut m = efficientnet_b0(4, &mut rng);
        let x = Tensor::from_fn([2, 3, 32, 32], |i| ((i % 53) as f32 - 26.0) / 26.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 4]);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn paper_cuts_have_growing_macs() {
        let mut rng = Rng::new(4);
        let m = efficientnet_b0(10, &mut rng);
        // Cuts 6,7,8,9 (paper layers 5,6,7,8).
        let macs: Vec<u64> = [6usize, 7, 8, 9].iter().map(|&c| m.macs_to_cut(c)).collect();
        assert!(macs.windows(2).all(|w| w[0] < w[1]), "{macs:?}");
    }

    #[test]
    fn downsampling_totals_8x() {
        let mut rng = Rng::new(5);
        let m = efficientnet_b0(10, &mut rng);
        let shape = m.feature_shape_at(EFFICIENTNET_FEATURE_COUNT);
        assert_eq!(&shape[1..], &[4, 4]);
    }
}
