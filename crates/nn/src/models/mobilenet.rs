//! MobileNetV2 analog with per-operator feature indexing.

use crate::act::{ActKind, Activation};
use crate::conv::Conv2d;
use crate::dwconv::DepthwiseConv2d;
use crate::linear::Linear;
use crate::model::Model;
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;
use crate::sequential::Sequential;
use crate::Residual;
use nshd_tensor::Rng;

/// Number of operators in the MobileNetV2 `features` stack (indices 0–18,
/// matching torchvision): stem, 17 inverted residuals, head.
pub const MOBILENET_FEATURE_COUNT: usize = 19;

/// Width divisor applied to the reference channel plan (laptop-scale
/// substitution; see DESIGN.md §3). Chosen, like the EfficientNet
/// analogs, to be just wide enough to learn the shape classes on one CPU
/// core.
const DIV: usize = 5;

fn scaled(c: usize) -> usize {
    (c / DIV).max(8)
}

/// conv1x1 + BN + ReLU6 helper.
fn conv_bn_act(
    seq: &mut Sequential,
    cin: usize,
    cout: usize,
    k: usize,
    s: usize,
    p: usize,
    rng: &mut Rng,
) {
    seq.push(Box::new(Conv2d::new(cin, cout, k, s, p, rng)));
    seq.push(Box::new(BatchNorm2d::new(cout)));
    seq.push(Box::new(Activation::new(ActKind::Relu6)));
}

/// One inverted-residual operator: expand (1×1), depthwise (3×3), project
/// (1×1, linear). Wrapped in a skip connection when stride is 1 and the
/// channel count is preserved, exactly like the reference block.
fn inverted_residual(
    cin: usize,
    cout: usize,
    stride: usize,
    expand: usize,
    rng: &mut Rng,
) -> Box<dyn crate::Layer> {
    let hidden = cin * expand;
    let mut body = Sequential::new();
    if expand != 1 {
        conv_bn_act(&mut body, cin, hidden, 1, 1, 0, rng);
    }
    body.push(Box::new(DepthwiseConv2d::new(hidden, 3, stride, 1, rng)));
    body.push(Box::new(BatchNorm2d::new(hidden)));
    body.push(Box::new(Activation::new(ActKind::Relu6)));
    body.push(Box::new(Conv2d::new(hidden, cout, 1, 1, 0, rng)));
    body.push(Box::new(BatchNorm2d::new(cout)));
    if stride == 1 && cin == cout {
        Box::new(Residual::new(body))
    } else {
        Box::new(body)
    }
}

/// Builds the MobileNetV2 analog for 3×32×32 inputs.
///
/// Feature indices match torchvision's operator numbering, so the paper's
/// layers 14 and 17 are the same operators here. Strides follow the
/// standard CIFAR adaptation (stem and first stages at stride 1, total 8×
/// downsampling).
pub fn mobilenet_v2(num_classes: usize, rng: &mut Rng) -> Model {
    // (expand t, channels c, repeats n, first stride s) per reference
    // stage; channels pass through `scaled`.
    let stages: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 1), // reference stride 2; CIFAR keeps 1
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let stem = scaled(32);
    let mut features = Sequential::new();
    // Operator 0: stem conv (reference stride 2; stride 1 for 32×32).
    {
        let mut op = Sequential::new();
        conv_bn_act(&mut op, 3, stem, 3, 1, 1, rng);
        features.push(Box::new(op));
    }
    let mut cin = stem;
    for (t, c, n, s) in stages {
        let cout = scaled(c);
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            features.push(inverted_residual(cin, cout, stride, t, rng));
            cin = cout;
        }
    }
    // Operator 18: 1×1 head conv.
    let head = scaled(1280);
    {
        let mut op = Sequential::new();
        conv_bn_act(&mut op, cin, head, 1, 1, 0, rng);
        features.push(Box::new(op));
    }
    debug_assert_eq!(features.len(), MOBILENET_FEATURE_COUNT);
    let classifier =
        Sequential::new().with(GlobalAvgPool::new()).with(Linear::new(head, num_classes, rng));
    Model {
        name: "mobilenet_v2".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use nshd_tensor::Tensor;

    #[test]
    fn operator_count_matches_torchvision() {
        let mut rng = Rng::new(1);
        let m = mobilenet_v2(10, &mut rng);
        assert_eq!(m.features.len(), MOBILENET_FEATURE_COUNT);
    }

    #[test]
    fn residual_operators_appear_within_stages() {
        let mut rng = Rng::new(2);
        let m = mobilenet_v2(10, &mut rng);
        // Operator 2 is the first repeat of stage 2 at stride 1 with equal
        // channels — it must be a residual.
        assert!(m.features.layer(2).name().starts_with("residual"));
        // Operator 0 (stem) is a plain sequential.
        assert!(m.features.layer(0).name().starts_with("sequential"));
    }

    #[test]
    fn downsampling_totals_8x() {
        let mut rng = Rng::new(3);
        let m = mobilenet_v2(10, &mut rng);
        let final_shape = m.feature_shape_at(MOBILENET_FEATURE_COUNT);
        assert_eq!(&final_shape[1..], &[4, 4]);
    }

    #[test]
    fn paper_cut_points_are_valid() {
        let mut rng = Rng::new(4);
        let mut m = mobilenet_v2(10, &mut rng);
        // Paper layers 14 and 17 → cuts 15 and 18.
        for cut in [15usize, 18] {
            let f = m.features_at(&Tensor::zeros([1, 3, 32, 32]), cut, Mode::Eval);
            assert_eq!(f.len(), m.feature_len_at(cut));
        }
        assert!(m.feature_len_at(15) < m.feature_len_at(18) * 4);
    }

    #[test]
    fn forward_backward_run() {
        let mut rng = Rng::new(5);
        let mut m = mobilenet_v2(4, &mut rng);
        let x = Tensor::from_fn([2, 3, 32, 32], |i| ((i % 31) as f32 - 15.0) / 15.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 4]);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
    }
}
