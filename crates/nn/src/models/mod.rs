//! The model zoo: width-reduced analogs of the four CNNs the NSHD paper
//! uses as feature extractors.
//!
//! Each builder reproduces the reference architecture's *topology and
//! layer-index conventions* — VGG16 indexed by conv/activation/pool entry
//! (torchvision `features` order), MobileNetV2 by operator, EfficientNet
//! by block — at channel widths small enough to train on one CPU core.
//! DESIGN.md §3 documents why this substitution preserves the paper's
//! observable behaviour.

mod efficientnet;
mod mobilenet;
mod vgg;

pub use efficientnet::{efficientnet_b0, efficientnet_b7, EFFICIENTNET_FEATURE_COUNT};
pub use mobilenet::{mobilenet_v2, MOBILENET_FEATURE_COUNT};
pub use vgg::{vgg16, VGG16_FEATURE_COUNT};

use crate::model::Model;
use nshd_tensor::Rng;

/// The four feature-extractor architectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// VGG16 analog (paper cut layers 27, 29).
    Vgg16,
    /// MobileNetV2 analog (paper cut layers 14, 17).
    MobileNetV2,
    /// EfficientNet-B0 analog (paper cut blocks 5–8).
    EfficientNetB0,
    /// EfficientNet-B7 analog (paper cut blocks 6–8).
    EfficientNetB7,
}

impl Architecture {
    /// All architectures, in the order the paper's figures list them.
    pub const ALL: [Architecture; 4] = [
        Architecture::MobileNetV2,
        Architecture::EfficientNetB0,
        Architecture::EfficientNetB7,
        Architecture::Vgg16,
    ];

    /// Builds the model for `num_classes` classes with seeded weights.
    pub fn build(self, num_classes: usize, rng: &mut Rng) -> Model {
        match self {
            Architecture::Vgg16 => vgg16(num_classes, rng),
            Architecture::MobileNetV2 => mobilenet_v2(num_classes, rng),
            Architecture::EfficientNetB0 => efficientnet_b0(num_classes, rng),
            Architecture::EfficientNetB7 => efficientnet_b7(num_classes, rng),
        }
    }

    /// The feature-layer cut points the paper evaluates for this
    /// architecture (earliest first), as *cut counts*: a cut of `n` keeps
    /// feature layers `0..n`, i.e. truncates *after* the paper's layer
    /// index `n-1`.
    pub fn paper_cuts(self) -> &'static [usize] {
        match self {
            // Paper Fig. 4/Table II: VGG16 layers 27 and 29.
            Architecture::Vgg16 => &[28, 30],
            // MobileNetV2 operators 14 and 17.
            Architecture::MobileNetV2 => &[15, 18],
            // EfficientNet-b0 blocks 5–8 (Fig. 8a sweeps all four).
            Architecture::EfficientNetB0 => &[6, 7, 8, 9],
            // EfficientNet-b7 blocks 6–8.
            Architecture::EfficientNetB7 => &[7, 8, 9],
        }
    }

    /// Display name matching the paper's figures.
    pub fn display_name(self) -> &'static str {
        match self {
            Architecture::Vgg16 => "VGG16",
            Architecture::MobileNetV2 => "Mobilenetv2",
            Architecture::EfficientNetB0 => "Efficientnetb0",
            Architecture::EfficientNetB7 => "Efficientnetb7",
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use nshd_tensor::Tensor;

    #[test]
    fn all_architectures_build_and_run() {
        for arch in Architecture::ALL {
            let mut rng = Rng::new(7);
            let mut m = arch.build(10, &mut rng);
            let y = m.forward(&Tensor::zeros([1, 3, 32, 32]), Mode::Eval);
            assert_eq!(y.dims(), &[1, 10], "{arch}");
            // Paper cut points must be valid prefixes of the feature stack.
            for &cut in arch.paper_cuts() {
                assert!(cut <= m.features.len(), "{arch} cut {cut}");
                assert!(m.feature_len_at(cut) > 0);
            }
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Architecture::Vgg16.to_string(), "VGG16");
        assert_eq!(Architecture::MobileNetV2.to_string(), "Mobilenetv2");
    }
}
