//! VGG16 analog with torchvision `features` layer indexing.

use crate::act::{ActKind, Activation};
use crate::conv::Conv2d;
use crate::flatten::Flatten;
use crate::linear::Linear;
use crate::model::Model;
use crate::pool::MaxPool2d;
use crate::sequential::Sequential;
use nshd_tensor::Rng;

/// Number of entries in the VGG16 `features` stack (indices 0–30), matching
/// torchvision: 13 convolutions, 13 ReLUs, 5 max-pools.
pub const VGG16_FEATURE_COUNT: usize = 31;

/// Base channel width of the analog (torchvision VGG16 uses 64).
const BASE: usize = 8;

/// Builds the VGG16 analog for 3×32×32 inputs.
///
/// The feature stack follows torchvision's exact interleaving, so the
/// paper's "layer 27" (a ReLU after the 13th conv's predecessor) and
/// "layer 29" (the final ReLU) land on the same indices here:
///
/// ```text
/// 0:conv 1:relu 2:conv 3:relu 4:pool
/// 5:conv 6:relu 7:conv 8:relu 9:pool
/// 10:conv 11:relu 12:conv 13:relu 14:conv 15:relu 16:pool
/// 17:conv 18:relu 19:conv 20:relu 21:conv 22:relu 23:pool
/// 24:conv 25:relu 26:conv 27:relu 28:conv 29:relu 30:pool
/// ```
pub fn vgg16(num_classes: usize, rng: &mut Rng) -> Model {
    let cfg: [&[usize]; 5] = [
        &[BASE, BASE],
        &[2 * BASE, 2 * BASE],
        &[4 * BASE, 4 * BASE, 4 * BASE],
        &[8 * BASE, 8 * BASE, 8 * BASE],
        &[8 * BASE, 8 * BASE, 8 * BASE],
    ];
    let mut features = Sequential::new();
    let mut in_ch = 3;
    for stage in cfg {
        for &out_ch in stage {
            features.push(Box::new(Conv2d::new(in_ch, out_ch, 3, 1, 1, rng)));
            features.push(Box::new(Activation::new(ActKind::Relu)));
            in_ch = out_ch;
        }
        features.push(Box::new(MaxPool2d::new(2)));
    }
    debug_assert_eq!(features.len(), VGG16_FEATURE_COUNT);
    // 32×32 input through 5 pools → 1×1 spatial; classifier mirrors VGG's
    // FC stack at reduced width.
    let flat = 8 * BASE;
    let hidden = 8 * BASE;
    let classifier = Sequential::new()
        .with(Flatten::new())
        .with(Linear::new(flat, hidden, rng))
        .with(Activation::new(ActKind::Relu))
        .with(Linear::new(hidden, num_classes, rng));
    Model { name: "vgg16".into(), features, classifier, input_shape: vec![3, 32, 32], num_classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use nshd_tensor::Tensor;

    #[test]
    fn layer_indices_match_torchvision_layout() {
        let mut rng = Rng::new(1);
        let m = vgg16(10, &mut rng);
        assert_eq!(m.features.len(), VGG16_FEATURE_COUNT);
        // Pools sit at torchvision indices 4, 9, 16, 23, 30.
        for &idx in &[4usize, 9, 16, 23, 30] {
            assert!(m.features.layer(idx).name().starts_with("maxpool"), "index {idx}");
        }
        // Convs at 24, 26, 28; ReLUs at 27 and 29 (the paper's cut layers).
        for &idx in &[24usize, 26, 28] {
            assert!(m.features.layer(idx).name().starts_with("conv"), "index {idx}");
        }
        for &idx in &[27usize, 29] {
            assert_eq!(m.features.layer(idx).name(), "relu", "index {idx}");
        }
    }

    #[test]
    fn spatial_shape_collapses_to_1x1() {
        let mut rng = Rng::new(2);
        let m = vgg16(10, &mut rng);
        assert_eq!(m.feature_shape_at(VGG16_FEATURE_COUNT), vec![8 * BASE, 1, 1]);
        // After layer 27 (ReLU, cut 28): still 2×2 spatial.
        assert_eq!(m.feature_shape_at(28), vec![8 * BASE, 2, 2]);
    }

    #[test]
    fn forward_and_backward_run() {
        let mut rng = Rng::new(3);
        let mut m = vgg16(5, &mut rng);
        let x = Tensor::from_fn([2, 3, 32, 32], |i| ((i % 97) as f32 - 48.0) / 48.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 5]);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn deeper_cut_means_more_macs() {
        let mut rng = Rng::new(4);
        let m = vgg16(10, &mut rng);
        assert!(m.macs_to_cut(28) < m.macs_to_cut(30));
        assert!(m.macs_to_cut(30) < m.total_macs());
    }
}
