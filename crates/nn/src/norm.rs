//! Batch normalisation over NCHW feature maps.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{Shape, Tensor};

/// 2-D batch normalisation with learnable affine parameters and running
/// statistics for evaluation.
///
/// During training, activations are normalised with batch statistics and
/// exponential running averages are updated; during evaluation the running
/// averages are used, so single-image inference behaves deterministically.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    n_per_channel: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0 and running stats (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new_no_decay(Tensor::ones([channels])),
            beta: Param::new_no_decay(Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// The per-channel running mean currently used in evaluation mode.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The per-channel running variance currently used in evaluation mode.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("bn(c{})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval {
            return self.infer(input);
        }
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(dims[1], self.channels, "channel mismatch in {}", self.name());
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let plane = h * w;
        let per_channel = n * plane;
        let x = input.as_slice();
        let mut out = Tensor::zeros(input.shape().clone());

        let mut mean = vec![0.0f32; self.channels];
        let mut var = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let mut s = 0.0;
            for b in 0..n {
                let base = (b * self.channels + c) * plane;
                s += x[base..base + plane].iter().sum::<f32>();
            }
            mean[c] = s / per_channel as f32;
            let mut v = 0.0;
            for b in 0..n {
                let base = (b * self.channels + c) * plane;
                v += x[base..base + plane].iter().map(|&e| (e - mean[c]).powi(2)).sum::<f32>();
            }
            var[c] = v / per_channel as f32;
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let g = self.gamma.value.as_slice();
        let bta = self.beta.value.as_slice();
        let mut x_hat = Tensor::zeros(input.shape().clone());
        {
            let xh = x_hat.as_mut_slice();
            let o = out.as_mut_slice();
            for b in 0..n {
                for c in 0..self.channels {
                    let base = (b * self.channels + c) * plane;
                    for i in 0..plane {
                        let normalised = (x[base + i] - mean[c]) * inv_std[c];
                        xh[base + i] = normalised;
                        o[base + i] = g[c] * normalised + bta[c];
                    }
                }
            }
        }
        self.cache = Some(BnCache { x_hat, inv_std, n_per_channel: per_channel });
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(dims[1], self.channels, "channel mismatch in {}", self.name());
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let plane = h * w;
        let x = input.as_slice();
        let inv_std: Vec<f32> =
            self.running_var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let g = self.gamma.value.as_slice();
        let bta = self.beta.value.as_slice();
        let mut out = Tensor::zeros(input.shape().clone());
        let o = out.as_mut_slice();
        for b in 0..n {
            for c in 0..self.channels {
                let base = (b * self.channels + c) * plane;
                for i in 0..plane {
                    let normalised = (x[base + i] - self.running_mean[c]) * inv_std[c];
                    o[base + i] = g[c] * normalised + bta[c];
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called without a training-mode forward");
        let dims = grad.dims();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let plane = h * w;
        let m = cache.n_per_channel as f32;
        let g = grad.as_slice();
        let xh = cache.x_hat.as_slice();
        let gamma = self.gamma.value.as_slice();
        let mut dx = Tensor::zeros(grad.shape().clone());

        // Per-channel sums needed by the batch-norm backward formula.
        let mut sum_dy = vec![0.0f32; self.channels];
        let mut sum_dy_xhat = vec![0.0f32; self.channels];
        for b in 0..n {
            for c in 0..self.channels {
                let base = (b * self.channels + c) * plane;
                for i in 0..plane {
                    sum_dy[c] += g[base + i];
                    sum_dy_xhat[c] += g[base + i] * xh[base + i];
                }
            }
        }
        for c in 0..self.channels {
            self.beta.grad.as_mut_slice()[c] += sum_dy[c];
            self.gamma.grad.as_mut_slice()[c] += sum_dy_xhat[c];
        }
        {
            let dxv = dx.as_mut_slice();
            for b in 0..n {
                for c in 0..self.channels {
                    let base = (b * self.channels + c) * plane;
                    let k = gamma[c] * cache.inv_std[c] / m;
                    for i in 0..plane {
                        dxv[base + i] =
                            k * (m * g[base + i] - sum_dy[c] - xh[base + i] * sum_dy_xhat[c]);
                    }
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        if in_shape[0] != self.channels {
            return Err(ShapeError::ChannelMismatch {
                layer: self.name(),
                expected: self.channels,
                actual: in_shape[0],
            });
        }
        Ok(Shape::from(in_shape))
    }

    fn eval_ready(&self) -> Result<(), String> {
        for (c, (&m, &v)) in self.running_mean.iter().zip(&self.running_var).enumerate() {
            if !m.is_finite() || !v.is_finite() {
                return Err(format!("{}: non-finite running stats in channel {c}", self.name()));
            }
            if v < 0.0 {
                return Err(format!(
                    "{}: negative running variance {v} in channel {c}",
                    self.name()
                ));
            }
        }
        Ok(())
    }

    fn collect_state(&self, out: &mut Vec<Vec<f32>>) {
        out.push(self.running_mean.clone());
        out.push(self.running_var.clone());
    }

    fn restore_state(&mut self, state: &mut std::vec::IntoIter<Vec<f32>>) {
        let mean = state.next().expect("missing running-mean state");
        let var = state.next().expect("missing running-var state");
        assert_eq!(mean.len(), self.channels, "running-mean length mismatch");
        assert_eq!(var.len(), self.channels, "running-var length mismatch");
        self.running_mean = mean;
        self.running_var = var;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_forward_normalises_batch() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_fn([4, 2, 3, 3], |i| (i as f32 * 0.7).sin() * 3.0 + 1.0);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of the output should have ~0 mean, ~1 variance
        // (γ=1, β=0 initially).
        let plane = 9;
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + c) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Without any training, running stats are (0, 1): eval is identity.
        let x = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        let y = bn.forward(&x, Mode::Eval);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        // After training passes, running stats move toward batch stats.
        let shifted = x.shift(10.0);
        for _ in 0..50 {
            bn.forward(&shifted, Mode::Train);
        }
        assert!((bn.running_mean()[0] - 11.5).abs() < 0.5);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(1);
        // Use distinctive gamma/beta so their gradients are exercised.
        bn.gamma.value.as_mut_slice()[0] = 1.3;
        bn.beta.value.as_mut_slice()[0] = -0.2;
        let x = Tensor::from_fn([2, 1, 2, 2], |i| (i as f32 * 0.9).cos());
        let y = bn.forward(&x, Mode::Train);
        let gy = Tensor::from_fn(y.shape().clone(), |i| 0.1 * (i as f32 + 1.0));
        let dx = bn.backward(&gy);

        // Numerical loss: sum(gy * bn(x)) recomputed in Train mode with a
        // fresh layer each time (running stats must not pollute the check).
        let loss = |xin: &Tensor| {
            let mut bn2 = BatchNorm2d::new(1);
            bn2.gamma.value.as_mut_slice()[0] = 1.3;
            bn2.beta.value.as_mut_slice()[0] = -0.2;
            let out = bn2.forward(xin, Mode::Train);
            out.as_slice().iter().zip(gy.as_slice()).map(|(a, b)| a * b).sum::<f32>()
        };
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[idx]).abs() < 2e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
        // Gamma/beta gradients against finite differences.
        let loss_gb = |gamma: f32, beta: f32| {
            let mut bn2 = BatchNorm2d::new(1);
            bn2.gamma.value.as_mut_slice()[0] = gamma;
            bn2.beta.value.as_mut_slice()[0] = beta;
            let out = bn2.forward(&x, Mode::Train);
            out.as_slice().iter().zip(gy.as_slice()).map(|(a, b)| a * b).sum::<f32>()
        };
        let num_dgamma = (loss_gb(1.3 + eps, -0.2) - loss_gb(1.3 - eps, -0.2)) / (2.0 * eps);
        let num_dbeta = (loss_gb(1.3, -0.2 + eps) - loss_gb(1.3, -0.2 - eps)) / (2.0 * eps);
        assert!((num_dgamma - bn.gamma.grad.as_slice()[0]).abs() < 2e-2);
        assert!((num_dbeta - bn.beta.grad.as_slice()[0]).abs() < 2e-2);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let bn = BatchNorm2d::new(16);
        assert_eq!(bn.param_count(), 32);
        assert_eq!(bn.out_shape(&[16, 8, 8]), vec![16, 8, 8]);
        assert_eq!(bn.macs(&[16, 8, 8]), 0);
    }
}
