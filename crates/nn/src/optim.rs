//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state positionally: the layer graph is
//! static, so [`Layer::params_mut`] yields parameters in a stable order on
//! every call.
//!
//! [`Layer::params_mut`]: crate::Layer::params_mut

use crate::param::Param;

/// A gradient-descent rule applied to a flat list of parameters.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients, then leaves
    /// gradients untouched (call [`Layer::zero_grad`] between steps).
    ///
    /// [`Layer::zero_grad`]: crate::Layer::zero_grad
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate, momentum, and weight
    /// decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter list changed between optimizer steps"
        );
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            let decay = if p.decay { self.weight_decay } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            for i in 0..value.len() {
                let g = grad[i] + decay * value[i];
                v[i] = self.momentum * v[i] + g;
                value[i] -= self.lr * v[i];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard defaults β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed between optimizer steps");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let decay = if p.decay { self.weight_decay } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            for i in 0..value.len() {
                let g = grad[i] + decay * value[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                value[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_tensor::Tensor;

    /// Minimise f(x) = x² with each optimizer; both must converge.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_slice(&[5.0]));
        for _ in 0..steps {
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * x;
            opt.step(&mut [&mut p]);
            p.zero_grad();
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        assert!(quadratic_descent(&mut sgd, 50).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.02, 0.0, 0.0);
        let mut with_mom = Sgd::new(0.02, 0.9, 0.0);
        let slow = quadratic_descent(&mut plain, 30).abs();
        let fast = quadratic_descent(&mut with_mom, 30).abs();
        assert!(fast < slow, "momentum {fast} should beat plain {slow}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1, 0.0);
        assert!(quadratic_descent(&mut adam, 300).abs() < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        let mut p = Param::new(Tensor::from_slice(&[2.0]));
        sgd.step(&mut [&mut p]);
        // x ← x − lr·wd·x = 2 − 0.1·0.5·2 = 1.9
        assert!((p.value.as_slice()[0] - 1.9).abs() < 1e-6);
        // No-decay params are untouched by weight decay.
        let mut sgd2 = Sgd::new(0.1, 0.0, 0.5);
        let mut q = Param::new_no_decay(Tensor::from_slice(&[2.0]));
        sgd2.step(&mut [&mut q]);
        assert_eq!(q.value.as_slice()[0], 2.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        assert_eq!(sgd.learning_rate(), 0.1);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        Sgd::new(0.0, 0.0, 0.0);
    }
}
