//! Learnable parameters: a value tensor paired with its gradient.

use nshd_tensor::Tensor;

/// A learnable parameter: the value and its accumulated gradient.
///
/// Layers own their `Param`s; optimizers visit them through
/// [`Layer::params_mut`] in a stable order, which lets per-parameter
/// optimizer state (momentum, Adam moments) be kept positionally.
///
/// [`Layer::params_mut`]: crate::Layer::params_mut
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
    /// Whether weight decay applies (disabled for biases and norm scales,
    /// following standard practice).
    pub decay: bool,
}

impl Param {
    /// Creates a parameter with a zeroed gradient, with weight decay
    /// enabled.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad, decay: true }
    }

    /// Creates a parameter exempt from weight decay (biases, norm affine
    /// terms).
    pub fn new_no_decay(value: Tensor) -> Self {
        let mut p = Param::new(value);
        p.decay = false;
        p
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_matching_shape() {
        let p = Param::new(Tensor::ones([2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(p.decay);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn no_decay_constructor() {
        let p = Param::new_no_decay(Tensor::ones([4]));
        assert!(!p.decay);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([3]));
        p.grad.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }
}
