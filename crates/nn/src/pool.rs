//! Pooling layers: max, average, and global average.

use crate::layer::{Layer, Mode};
use crate::shape::ShapeError;
use nshd_tensor::{pool_out_dim, Shape, Tensor};

/// 2-D max pooling over NCHW inputs.
///
/// The paper's manifold learner begins with a window-2 max pool, so this
/// layer is shared between the CNN substrate and the NSHD pipeline.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cached: Option<MaxCache>,
}

#[derive(Debug, Clone)]
struct MaxCache {
    in_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max pool with the given square window and stride equal to
    /// the window (the common non-overlapping configuration).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        MaxPool2d { window, stride: window, cached: None }
    }

    /// Creates a max pool with an explicit stride.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn with_stride(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0);
        MaxPool2d { window, stride, cached: None }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "pool window {} larger than input {h}×{w}",
            self.window
        );
        ((h - self.window) / self.stride + 1, (w - self.window) / self.stride + 1)
    }

    /// The pooling scan shared between [`Layer::forward`] and
    /// [`Layer::infer`]: returns the pooled output and per-output argmax
    /// indices (the latter only cached in training mode).
    fn compute(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "MaxPool2d expects NCHW input");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        let x = input.as_slice();
        let mut out = Tensor::zeros([n, c, oh, ow]);
        let mut argmax = vec![0usize; out.len()];
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = base + iy * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        o[oi] = best;
                        argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        (out, argmax)
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("maxpool{}", self.window)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (out, argmax) = self.compute(input);
        if mode == Mode::Train {
            self.cached = Some(MaxCache { in_shape: input.dims().to_vec(), argmax });
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.compute(input).0
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cached.as_ref().expect("backward called without a training-mode forward");
        let mut dx = Tensor::zeros(cache.in_shape.clone());
        let dxv = dx.as_mut_slice();
        for (g, &src) in grad.as_slice().iter().zip(cache.argmax.iter()) {
            dxv[src] += g;
        }
        dx
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        match (pool_out_dim(h, self.window, self.stride), pool_out_dim(w, self.window, self.stride))
        {
            (Some(oh), Some(ow)) => Ok(Shape::from([in_shape[0], oh, ow])),
            _ => Err(ShapeError::WindowTooLarge {
                layer: self.name(),
                window: self.window,
                input: (h, w),
            }),
        }
    }
}

/// 2-D average pooling over NCHW inputs (non-overlapping windows).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    cached_in_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average pool with a square window and stride equal to
    /// the window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        AvgPool2d { window, cached_in_shape: None }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "pool window {} larger than input {h}×{w}",
            self.window
        );
        (h / self.window, w / self.window)
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("avgpool{}", self.window)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.cached_in_shape = Some(input.dims().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "AvgPool2d expects NCHW input");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        let x = input.as_slice();
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut out = Tensor::zeros([n, c, oh, ow]);
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                s += x[base + (oy * self.window + ky) * w + ox * self.window + kx];
                            }
                        }
                        o[oi] = s * norm;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let in_shape =
            self.cached_in_shape.as_ref().expect("backward called without a training-mode forward");
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let norm = 1.0 / (self.window * self.window) as f32;
        let g = grad.as_slice();
        let mut dx = Tensor::zeros(in_shape.clone());
        let d = dx.as_mut_slice();
        let mut gi = 0usize;
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let spread = g[gi] * norm;
                        gi += 1;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                d[base + (oy * self.window + ky) * w + ox * self.window + kx] +=
                                    spread;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        let (h, w) = (in_shape[1], in_shape[2]);
        // Non-overlapping windows: stride equals the window, so
        // `pool_out_dim` reduces to floor division.
        match (pool_out_dim(h, self.window, self.window), pool_out_dim(w, self.window, self.window))
        {
            (Some(oh), Some(ow)) => Ok(Shape::from([in_shape[0], oh, ow])),
            _ => Err(ShapeError::WindowTooLarge {
                layer: self.name(),
                window: self.window,
                input: (h, w),
            }),
        }
    }
}

/// Global average pooling: `N×C×H×W → N×C`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        GlobalAvgPool { cached_in_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        "gap".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.cached_in_shape = Some(input.dims().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "GlobalAvgPool expects NCHW input");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let x = input.as_slice();
        Tensor::from_fn([n, c], |i| {
            let base = i * plane;
            x[base..base + plane].iter().sum::<f32>() / plane as f32
        })
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let in_shape =
            self.cached_in_shape.as_ref().expect("backward called without a training-mode forward");
        let (h, w) = (in_shape[2], in_shape[3]);
        let plane = (h * w) as f32;
        let mut dx = Tensor::zeros(in_shape.clone());
        let dxv = dx.as_mut_slice();
        for (i, &g) in grad.as_slice().iter().enumerate() {
            let spread = g / plane;
            for v in dxv[i * h * w..(i + 1) * h * w].iter_mut() {
                *v = spread;
            }
        }
        dx
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        Ok(Shape::from([in_shape[0]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut mp = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, 7.0,
            ],
            [1, 1, 4, 4],
        )
        .unwrap();
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut mp = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let _ = mp.forward(&x, Mode::Train);
        let dx = mp.backward(&Tensor::from_vec(vec![10.0], [1, 1, 1, 1]).unwrap());
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool_with_stride_one_overlaps() {
        let mut mp = MaxPool2d::with_stride(2, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], [1, 1, 3, 3])
            .unwrap();
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn gap_averages_each_plane() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.at(&[0, 0]), 1.5); // mean of 0,1,2,3
        assert_eq!(y.at(&[1, 2]), 21.5); // mean of 20..=23
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::zeros([1, 1, 2, 2]);
        let _ = gap.forward(&x, Mode::Train);
        let dx = gap.backward(&Tensor::from_vec(vec![8.0], [1, 1]).unwrap());
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn shapes_and_macs() {
        let mp = MaxPool2d::new(2);
        assert_eq!(mp.out_shape(&[8, 16, 16]), vec![8, 8, 8]);
        assert_eq!(mp.macs(&[8, 16, 16]), 0);
        let gap = GlobalAvgPool::new();
        assert_eq!(gap.out_shape(&[8, 4, 4]), vec![8]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_window_panics() {
        MaxPool2d::new(4).forward(&Tensor::zeros([1, 1, 2, 2]), Mode::Eval);
    }

    #[test]
    fn avgpool_averages_windows() {
        let mut ap = AvgPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let y = ap.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[2.5]);
        assert_eq!(ap.out_shape(&[3, 8, 8]), vec![3, 4, 4]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut ap = AvgPool2d::new(2);
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let _ = ap.forward(&x, Mode::Train);
        let dx = ap.backward(&Tensor::ones([1, 1, 2, 2]));
        assert!(dx.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        // Gradient mass is conserved.
        assert!((dx.sum() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn avgpool_matches_finite_differences() {
        let mut ap = AvgPool2d::new(2);
        let x = Tensor::from_fn([1, 2, 4, 4], |i| (i as f32 * 0.37).sin());
        let y = ap.forward(&x, Mode::Train);
        let gy = Tensor::from_fn(y.shape().clone(), |i| 0.3 * (i as f32 + 1.0));
        let dx = ap.backward(&gy);
        let loss = |xin: &Tensor| {
            let mut ap2 = AvgPool2d::new(2);
            ap2.forward(xin, Mode::Eval)
                .as_slice()
                .iter()
                .zip(gy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-3;
        for idx in [0usize, 7, 19, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((numeric - dx.as_slice()[idx]).abs() < 1e-2);
        }
    }
}
