//! Squeeze-and-excite channel attention, used by EfficientNet's MBConv
//! blocks.

use crate::init::he_normal;
use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::ShapeError;
use nshd_tensor::{matvec, Rng, Shape, Tensor};

/// Squeeze-and-excite: gates each channel by a learned function of the
/// globally-pooled channel descriptor.
///
/// `y = x · σ(W₂ · relu(W₁ · gap(x)))`, with the gate broadcast over each
/// channel's spatial plane.
#[derive(Debug, Clone)]
pub struct SqueezeExcite {
    channels: usize,
    reduced: usize,
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    cache: Option<SeCache>,
}

#[derive(Debug, Clone)]
struct SeCache {
    input: Tensor,
    pooled: Vec<Vec<f32>>,
    pre1: Vec<Vec<f32>>,
    hidden: Vec<Vec<f32>>,
    gate: Vec<Vec<f32>>,
}

impl SqueezeExcite {
    /// Creates a squeeze-and-excite block with the given reduction ratio
    /// (EfficientNet uses 4 relative to the block's input channels; we
    /// take the reduced width directly for flexibility).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `reduced == 0`.
    pub fn new(channels: usize, reduced: usize, rng: &mut Rng) -> Self {
        assert!(channels > 0 && reduced > 0);
        SqueezeExcite {
            channels,
            reduced,
            w1: Param::new(he_normal(rng, &[reduced, channels], channels)),
            b1: Param::new_no_decay(Tensor::zeros([reduced])),
            w2: Param::new(he_normal(rng, &[channels, reduced], reduced)),
            b2: Param::new_no_decay(Tensor::zeros([channels])),
            cache: None,
        }
    }

    /// The gating computation shared between [`Layer::forward`] and
    /// [`Layer::infer`]; the returned cache is only stored in training
    /// mode.
    fn compute(&self, input: &Tensor) -> (Tensor, SeCache) {
        let dims = input.dims();
        assert_eq!(dims.len(), 4, "SqueezeExcite expects NCHW input");
        assert_eq!(dims[1], self.channels, "channel mismatch in {}", self.name());
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let x = input.as_slice();
        let mut out = Tensor::zeros(input.shape().clone());
        let mut cache = SeCache {
            input: input.clone(),
            pooled: Vec::with_capacity(n),
            pre1: Vec::with_capacity(n),
            hidden: Vec::with_capacity(n),
            gate: Vec::with_capacity(n),
        };
        for b in 0..n {
            let pooled: Vec<f32> = (0..c)
                .map(|ch| {
                    let base = (b * c + ch) * plane;
                    x[base..base + plane].iter().sum::<f32>() / plane as f32
                })
                .collect();
            let mut pre1 = matvec(&self.w1.value, &pooled);
            for (a, &bias) in pre1.iter_mut().zip(self.b1.value.as_slice()) {
                *a += bias;
            }
            let hidden: Vec<f32> = pre1.iter().map(|&v| v.max(0.0)).collect();
            let mut pre2 = matvec(&self.w2.value, &hidden);
            for (a, &bias) in pre2.iter_mut().zip(self.b2.value.as_slice()) {
                *a += bias;
            }
            let gate: Vec<f32> = pre2.iter().map(|&v| sigmoid(v)).collect();
            let o = out.as_mut_slice();
            for (ch, &g) in gate.iter().enumerate() {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    o[base + i] = x[base + i] * g;
                }
            }
            cache.pooled.push(pooled);
            cache.pre1.push(pre1);
            cache.hidden.push(hidden);
            cache.gate.push(gate);
        }
        (out, cache)
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for SqueezeExcite {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("se(c{}→{})", self.channels, self.reduced)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (out, cache) = self.compute(input);
        if mode == Mode::Train {
            self.cache = Some(cache);
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.compute(input).0
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called without a training-mode forward");
        let dims = cache.input.dims().to_vec();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let x = cache.input.as_slice();
        let g = grad.as_slice();
        let mut dx = Tensor::zeros(dims.clone());
        for b in 0..n {
            let gate = &cache.gate[b];
            // d(gate)_ch = Σ_plane grad · x ; dx = grad · gate (direct path).
            let mut dgate = vec![0.0f32; c];
            {
                let dxv = dx.as_mut_slice();
                for ch in 0..c {
                    let base = (b * c + ch) * plane;
                    let mut s = 0.0;
                    for i in 0..plane {
                        s += g[base + i] * x[base + i];
                        dxv[base + i] += g[base + i] * gate[ch];
                    }
                    dgate[ch] = s;
                }
            }
            // Through the sigmoid.
            let dpre2: Vec<f32> =
                dgate.iter().zip(gate.iter()).map(|(&d, &s)| d * s * (1.0 - s)).collect();
            // dW2 += dpre2 ⊗ hidden ; db2 += dpre2 ; dhidden = W2ᵀ·dpre2.
            let hidden = &cache.hidden[b];
            {
                let dw2 = self.w2.grad.as_mut_slice();
                for ch in 0..c {
                    for r in 0..self.reduced {
                        dw2[ch * self.reduced + r] += dpre2[ch] * hidden[r];
                    }
                    self.b2.grad.as_mut_slice()[ch] += dpre2[ch];
                }
            }
            let mut dhidden = vec![0.0f32; self.reduced];
            {
                let w2 = self.w2.value.as_slice();
                for ch in 0..c {
                    for r in 0..self.reduced {
                        dhidden[r] += w2[ch * self.reduced + r] * dpre2[ch];
                    }
                }
            }
            // Through the ReLU.
            let pre1 = &cache.pre1[b];
            let dpre1: Vec<f32> = dhidden
                .iter()
                .zip(pre1.iter())
                .map(|(&d, &a)| if a > 0.0 { d } else { 0.0 })
                .collect();
            // dW1 += dpre1 ⊗ pooled ; db1 += dpre1 ; dpooled = W1ᵀ·dpre1.
            let pooled = &cache.pooled[b];
            {
                let dw1 = self.w1.grad.as_mut_slice();
                for r in 0..self.reduced {
                    for ch in 0..c {
                        dw1[r * c + ch] += dpre1[r] * pooled[ch];
                    }
                    self.b1.grad.as_mut_slice()[r] += dpre1[r];
                }
            }
            let mut dpooled = vec![0.0f32; c];
            {
                let w1 = self.w1.value.as_slice();
                for r in 0..self.reduced {
                    for ch in 0..c {
                        dpooled[ch] += w1[r * c + ch] * dpre1[r];
                    }
                }
            }
            // Through the global average pool.
            {
                let dxv = dx.as_mut_slice();
                for (ch, &dp) in dpooled.iter().enumerate() {
                    let base = (b * c + ch) * plane;
                    let spread = dp / plane as f32;
                    for i in 0..plane {
                        dxv[base + i] += spread;
                    }
                }
            }
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w1, &self.b1, &self.w2, &self.b2]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2]
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        if in_shape.len() != 3 {
            return Err(ShapeError::WrongRank {
                layer: self.name(),
                expected: 3,
                actual: in_shape.to_vec(),
            });
        }
        if in_shape[0] != self.channels {
            return Err(ShapeError::ChannelMismatch {
                layer: self.name(),
                expected: self.channels,
                actual: in_shape[0],
            });
        }
        Ok(Shape::from(in_shape))
    }

    fn macs(&self, _in_shape: &[usize]) -> u64 {
        2 * (self.channels * self.reduced) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_gated_input() {
        let mut rng = Rng::new(1);
        let mut se = SqueezeExcite::new(3, 2, &mut rng);
        let x = Tensor::from_fn([1, 3, 2, 2], |i| (i as f32 * 0.4).sin());
        let y = se.forward(&x, Mode::Eval);
        // Each channel plane must be a scalar multiple of the input plane,
        // with the scalar in (0, 1).
        for ch in 0..3 {
            let xs = &x.as_slice()[ch * 4..(ch + 1) * 4];
            let ys = &y.as_slice()[ch * 4..(ch + 1) * 4];
            let (mut ratio, mut seen) = (0.0, false);
            for (a, b) in xs.iter().zip(ys) {
                if a.abs() > 1e-6 {
                    let r = b / a;
                    if seen {
                        assert!((r - ratio).abs() < 1e-5, "plane not uniformly gated");
                    }
                    ratio = r;
                    seen = true;
                }
            }
            assert!(seen && ratio > 0.0 && ratio < 1.0, "gate {ratio} outside (0,1)");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::new(2);
        let mut se = SqueezeExcite::new(2, 2, &mut rng);
        let x = Tensor::from_fn([1, 2, 2, 2], |i| (i as f32 * 0.7).cos());
        let gy = Tensor::from_fn([1, 2, 2, 2], |i| 0.2 * (i as f32 + 1.0));
        let y = se.forward(&x, Mode::Train);
        let _ = y;
        let dx = se.backward(&gy);
        let loss = |se: &mut SqueezeExcite, xin: &Tensor| {
            se.forward(xin, Mode::Eval)
                .as_slice()
                .iter()
                .zip(gy.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&mut se, &xp) - loss(&mut se, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[idx]).abs() < 1e-2,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
        // Weight gradients for both matrices.
        for (pi, len) in [(0usize, 4usize), (2, 4)] {
            for idx in 0..len {
                let orig = se.params()[pi].value.as_slice()[idx];
                se.params_mut()[pi].value.as_mut_slice()[idx] = orig + eps;
                let fp = loss(&mut se, &x);
                se.params_mut()[pi].value.as_mut_slice()[idx] = orig - eps;
                let fm = loss(&mut se, &x);
                se.params_mut()[pi].value.as_mut_slice()[idx] = orig;
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = se.params()[pi].grad.as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "param {pi}[{idx}]: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn shape_and_params() {
        let mut rng = Rng::new(3);
        let se = SqueezeExcite::new(8, 2, &mut rng);
        assert_eq!(se.out_shape(&[8, 4, 4]), vec![8, 4, 4]);
        assert_eq!(se.param_count(), 8 * 2 + 2 + 2 * 8 + 8);
    }
}
