//! Layer containers: the indexed [`Sequential`] graph and the
//! [`Residual`] skip-connection wrapper.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::shape::{ShapeError, ShapeStep, ShapeTrace};
use nshd_tensor::{Shape, Tensor};

/// Opens a per-layer profiling span labelled `l<index>.<kind>` (e.g.
/// `l0.conv2d`), where `<kind>` is the layer name truncated at its first
/// parameter bracket; `suffix` distinguishes backward passes. Returns
/// `None` (no formatting, no allocation) when no recorder is installed.
fn layer_span(index: usize, layer: &dyn Layer, suffix: &str) -> Option<nshd_obs::SpanGuard> {
    if !nshd_obs::enabled() {
        return None;
    }
    let name = layer.name();
    let kind = name.split(['(', '[']).next().unwrap_or("layer");
    Some(nshd_obs::span(&format!("l{index}.{kind}{suffix}")))
}

/// An ordered stack of layers, indexed the way the NSHD paper indexes
/// feature extractors ("VGG16 at layer 27", "EfficientNet-b0 block 6", …).
///
/// `Sequential` supports running a prefix only ([`forward_to`]), which is
/// how NSHD truncates a CNN into a feature extractor while the remaining
/// layers stay available as the distillation teacher's tail.
///
/// [`forward_to`]: Sequential::forward_to
#[derive(Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for builder-style chaining.
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer(&self, index: usize) -> &dyn Layer {
        self.layers[index].as_ref()
    }

    /// Mutable access to the layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer_mut(&mut self, index: usize) -> &mut dyn Layer {
        self.layers[index].as_mut()
    }

    /// Runs the full stack.
    pub fn forward_all(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.forward_to(input, self.layers.len(), mode)
    }

    /// Runs layers `0..end` and returns the activation after layer
    /// `end - 1` (the paper's "features at layer *end-1*"). `end == 0`
    /// returns the input unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `end > self.len()`.
    pub fn forward_to(&mut self, input: &Tensor, end: usize, mode: Mode) -> Tensor {
        assert!(end <= self.layers.len(), "end {end} exceeds {} layers", self.layers.len());
        let mut x = input.clone();
        for (index, layer) in self.layers[..end].iter_mut().enumerate() {
            let _sp = layer_span(index, &**layer, "");
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Runs layers `start..len` — the "remaining layers" used as the
    /// distillation teacher's tail after truncating at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.len()`.
    pub fn forward_from(&mut self, input: &Tensor, start: usize, mode: Mode) -> Tensor {
        assert!(start <= self.layers.len());
        let mut x = input.clone();
        for (offset, layer) in self.layers[start..].iter_mut().enumerate() {
            let _sp = layer_span(start + offset, &**layer, "");
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Runs the full stack in evaluation mode without mutating any layer —
    /// the `&self` counterpart of [`forward_all`](Sequential::forward_all)
    /// used by the thread-shared serving path.
    pub fn infer_all(&self, input: &Tensor) -> Tensor {
        self.infer_to(input, self.layers.len())
    }

    /// Runs layers `0..end` in evaluation mode without mutating any layer —
    /// the `&self` counterpart of [`forward_to`](Sequential::forward_to).
    ///
    /// # Panics
    ///
    /// Panics if `end > self.len()`.
    pub fn infer_to(&self, input: &Tensor, end: usize) -> Tensor {
        assert!(end <= self.layers.len(), "end {end} exceeds {} layers", self.layers.len());
        let mut x = input.clone();
        for (index, layer) in self.layers[..end].iter().enumerate() {
            let _sp = layer_span(index, &**layer, "");
            x = layer.infer(&x);
        }
        x
    }

    /// Runs layers `start..len` in evaluation mode without mutating any
    /// layer — the `&self` counterpart of
    /// [`forward_from`](Sequential::forward_from).
    ///
    /// # Panics
    ///
    /// Panics if `start > self.len()`.
    pub fn infer_from(&self, input: &Tensor, start: usize) -> Tensor {
        assert!(start <= self.layers.len());
        let mut x = input.clone();
        for (offset, layer) in self.layers[start..].iter().enumerate() {
            let _sp = layer_span(start + offset, &**layer, "");
            x = layer.infer(&x);
        }
        x
    }

    /// Backwards through the full stack (training-mode forward required).
    pub fn backward_all(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for (index, layer) in self.layers.iter_mut().enumerate().rev() {
            let _sp = layer_span(index, &**layer, ".bwd");
            g = layer.backward(&g);
        }
        g
    }

    /// Shape (excluding batch) after running the first `end` layers on
    /// `in_shape`.
    ///
    /// # Panics
    ///
    /// Panics if `end > self.len()`.
    pub fn out_shape_at(&self, in_shape: &[usize], end: usize) -> Vec<usize> {
        assert!(end <= self.layers.len());
        let mut shape = in_shape.to_vec();
        for layer in &self.layers[..end] {
            shape = layer.out_shape(&shape);
        }
        shape
    }

    /// Per-layer MAC counts for one sample of the given input shape.
    pub fn macs_per_layer(&self, in_shape: &[usize]) -> Vec<u64> {
        let mut shape = in_shape.to_vec();
        let mut macs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            macs.push(layer.macs(&shape));
            shape = layer.out_shape(&shape);
        }
        macs
    }

    /// Total MACs for one sample.
    pub fn total_macs(&self, in_shape: &[usize]) -> u64 {
        self.macs_per_layer(in_shape).iter().sum()
    }

    /// MACs for the first `end` layers only.
    pub fn macs_to(&self, in_shape: &[usize], end: usize) -> u64 {
        self.macs_per_layer(in_shape)[..end].iter().sum()
    }

    /// Total parameters in the first `end` layers.
    ///
    /// # Panics
    ///
    /// Panics if `end > self.len()`.
    pub fn param_count_to(&self, end: usize) -> usize {
        self.layers[..end].iter().map(|l| l.param_count()).sum()
    }

    /// Statically traces a per-sample input shape through every layer,
    /// producing the full per-layer shape, MAC, and parameter accounting
    /// without running any tensor arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::InLayer`] naming the first layer (index and
    /// name) that rejects its input shape.
    pub fn infer_shapes(&self, in_shape: &[usize]) -> Result<ShapeTrace, ShapeError> {
        let mut steps = Vec::with_capacity(self.layers.len());
        let mut shape = in_shape.to_vec();
        for (index, layer) in self.layers.iter().enumerate() {
            let out = layer.shape_of(&shape).map_err(|source| ShapeError::InLayer {
                index,
                layer: layer.name(),
                source: Box::new(source),
            })?;
            // `macs` is only well-defined once `shape_of` accepted the
            // input, so it is computed after the check above.
            let macs = layer.macs(&shape);
            let out_shape = out.dims().to_vec();
            steps.push(ShapeStep {
                index,
                name: layer.name(),
                in_shape: shape,
                out_shape: out_shape.clone(),
                macs,
                params: layer.param_count(),
            });
            shape = out_shape;
        }
        Ok(ShapeTrace { input: in_shape.to_vec(), steps })
    }
}

impl Layer for Sequential {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("sequential[{}]", self.layers.len())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.forward_all(input, mode)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.infer_all(input)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.backward_all(grad)
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        let mut shape = Shape::from(in_shape);
        for (index, layer) in self.layers.iter().enumerate() {
            shape = layer.shape_of(shape.dims()).map_err(|source| ShapeError::InLayer {
                index,
                layer: layer.name(),
                source: Box::new(source),
            })?;
        }
        Ok(shape)
    }

    fn macs(&self, in_shape: &[usize]) -> u64 {
        self.total_macs(in_shape)
    }

    fn eval_ready(&self) -> Result<(), String> {
        for layer in &self.layers {
            layer.eval_ready()?;
        }
        Ok(())
    }

    fn collect_state(&self, out: &mut Vec<Vec<f32>>) {
        for layer in &self.layers {
            layer.collect_state(out);
        }
    }

    fn restore_state(&mut self, state: &mut std::vec::IntoIter<Vec<f32>>) {
        for layer in &mut self.layers {
            layer.restore_state(state);
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.layers.iter().map(|l| l.name())).finish()
    }
}

/// A residual wrapper: `y = body(x) + x`.
///
/// Used by MobileNetV2's inverted-residual blocks (stride 1, equal channel
/// counts) and EfficientNet's MBConv blocks. The body must preserve shape.
#[derive(Clone)]
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps `body` in a skip connection.
    pub fn new(body: Sequential) -> Self {
        Residual { body }
    }
}

impl Layer for Residual {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        format!("residual({:?})", self.body)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let y = self.body.forward_all(input, mode);
        assert_eq!(
            y.shape(),
            input.shape(),
            "residual body must preserve shape ({} vs {})",
            y.shape(),
            input.shape()
        );
        y.add(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let y = self.body.infer_all(input);
        assert_eq!(
            y.shape(),
            input.shape(),
            "residual body must preserve shape ({} vs {})",
            y.shape(),
            input.shape()
        );
        y.add(input)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.body.backward_all(grad).add(grad)
    }

    fn params(&self) -> Vec<&Param> {
        self.body.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.body.params_mut()
    }

    fn shape_of(&self, in_shape: &[usize]) -> Result<Shape, ShapeError> {
        let body = self.body.shape_of(in_shape)?;
        if body.dims() != in_shape {
            return Err(ShapeError::NotShapePreserving {
                layer: "residual".into(),
                input: in_shape.to_vec(),
                body: body.dims().to_vec(),
            });
        }
        Ok(body)
    }

    fn macs(&self, in_shape: &[usize]) -> u64 {
        self.body.total_macs(in_shape)
    }

    fn eval_ready(&self) -> Result<(), String> {
        self.body.eval_ready()
    }

    fn collect_state(&self, out: &mut Vec<Vec<f32>>) {
        self.body.collect_state(out);
    }

    fn restore_state(&mut self, state: &mut std::vec::IntoIter<Vec<f32>>) {
        self.body.restore_state(state);
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Residual({:?})", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{ActKind, Activation};
    use crate::linear::Linear;
    use nshd_tensor::Rng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = Rng::new(seed);
        Sequential::new()
            .with(Linear::new(4, 8, &mut rng))
            .with(Activation::new(ActKind::Relu))
            .with(Linear::new(8, 3, &mut rng))
    }

    #[test]
    fn forward_to_prefix_matches_manual_composition() {
        let mut seq = tiny_mlp(1);
        let x = Tensor::from_fn([2, 4], |i| (i as f32 * 0.3).sin());
        let full = seq.forward_all(&x, Mode::Eval);
        assert_eq!(full.dims(), &[2, 3]);
        let mid = seq.forward_to(&x, 2, Mode::Eval);
        assert_eq!(mid.dims(), &[2, 8]);
        let tail = seq.forward_from(&mid, 2, Mode::Eval);
        for (a, b) in tail.as_slice().iter().zip(full.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        // end == 0 is the identity.
        assert_eq!(seq.forward_to(&x, 0, Mode::Eval), x);
    }

    #[test]
    fn backward_chains_through_all_layers() {
        let mut seq = tiny_mlp(2);
        let x = Tensor::from_fn([1, 4], |i| (i as f32 + 1.0) * 0.1);
        let y = seq.forward_all(&x, Mode::Train);
        let dx = seq.backward_all(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.dims(), x.dims());
        // Finite-difference check on the input gradient.
        let eps = 1e-2;
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (seq.forward_all(&xp, Mode::Eval).sum()
                - seq.forward_all(&xm, Mode::Eval).sum())
                / (2.0 * eps);
            assert!((numeric - dx.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn shape_and_stat_propagation() {
        let seq = tiny_mlp(3);
        assert_eq!(seq.out_shape_at(&[4], 1), vec![8]);
        assert_eq!(seq.out_shape(&[4]), vec![3]);
        assert_eq!(seq.macs_per_layer(&[4]), vec![32, 0, 24]);
        assert_eq!(seq.total_macs(&[4]), 56);
        assert_eq!(seq.macs_to(&[4], 1), 32);
        assert_eq!(seq.param_count_to(1), 4 * 8 + 8);
        assert_eq!(seq.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn residual_adds_identity() {
        let mut rng = Rng::new(4);
        let mut fc = Linear::new(3, 3, &mut rng);
        // Zero the body so the residual is pure identity.
        for p in fc.params_mut() {
            for v in p.value.as_mut_slice() {
                *v = 0.0;
            }
        }
        let mut res = Residual::new(Sequential::new().with(fc));
        let x = Tensor::from_fn([2, 3], |i| i as f32);
        let y = res.forward(&x, Mode::Eval);
        assert_eq!(y, x);
    }

    #[test]
    fn residual_backward_adds_skip_gradient() {
        let mut rng = Rng::new(5);
        let mut res = Residual::new(Sequential::new().with(Linear::new(2, 2, &mut rng)));
        let x = Tensor::from_fn([1, 2], |i| 0.5 + i as f32);
        let y = res.forward(&x, Mode::Train);
        let dx = res.backward(&Tensor::ones(y.shape().clone()));
        let eps = 1e-2;
        for idx in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (res.forward(&xp, Mode::Eval).sum() - res.forward(&xm, Mode::Eval).sum())
                / (2.0 * eps);
            assert!((numeric - dx.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "preserve shape")]
    fn residual_rejects_shape_changing_body() {
        let mut rng = Rng::new(6);
        let mut res = Residual::new(Sequential::new().with(Linear::new(2, 3, &mut rng)));
        res.forward(&Tensor::zeros([1, 2]), Mode::Eval);
    }
}
