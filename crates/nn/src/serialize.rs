//! Binary save/load of trained model weights.
//!
//! Architectures rebuild deterministically from code, so only the learned
//! numbers are persisted: every parameter tensor (in the stable
//! `params_mut` order) plus non-parameter state (batch-norm running
//! statistics) collected through [`Layer::collect_state`]. The format is
//! a small little-endian container — versioned, checksummed by length
//! discipline, and free of external dependencies.
//!
//! [`Layer::collect_state`]: crate::Layer::collect_state

use crate::layer::Layer;
use crate::model::Model;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NSHDMDL1";

/// Saves a model's learned weights and state.
///
/// The `writer` can be a `File`, a `Vec<u8>` cursor, or anything
/// implementing [`Write`]; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_model<W: Write>(model: &mut Model, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    write_str(&mut writer, &model.name)?;
    // Parameters.
    let params = model.params_mut();
    write_u64(&mut writer, params.len() as u64)?;
    for p in &params {
        let dims = p.value.dims();
        write_u64(&mut writer, dims.len() as u64)?;
        for &d in dims {
            write_u64(&mut writer, d as u64)?;
        }
        write_f32s(&mut writer, p.value.as_slice())?;
    }
    // Non-parameter state.
    let mut state = Vec::new();
    model.features.collect_state(&mut state);
    model.classifier.collect_state(&mut state);
    write_u64(&mut writer, state.len() as u64)?;
    for block in &state {
        write_f32s(&mut writer, block)?;
    }
    Ok(())
}

/// Loads weights saved by [`save_model`] into an already-built model of
/// the *same architecture*.
///
/// # Errors
///
/// Returns an error when the magic/version is wrong, the architecture
/// name or any tensor shape disagrees, or on I/O failure.
pub fn load_model<R: Read>(model: &mut Model, mut reader: R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not an NSHD model file (bad magic)"));
    }
    let name = read_str(&mut reader)?;
    if name != model.name {
        return Err(bad_data(format!(
            "architecture mismatch: file holds '{name}', model is '{}'",
            model.name
        )));
    }
    let n_params = read_u64(&mut reader)? as usize;
    let mut params = model.params_mut();
    if n_params != params.len() {
        return Err(bad_data(format!(
            "parameter count mismatch: file {n_params}, model {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        let rank = read_u64(&mut reader)? as usize;
        if rank > 8 {
            return Err(bad_data("implausible tensor rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut reader)? as usize);
        }
        if dims != p.value.dims() {
            return Err(bad_data(format!(
                "tensor shape mismatch: file {dims:?}, model {:?}",
                p.value.dims()
            )));
        }
        read_f32s_into(&mut reader, p.value.as_mut_slice())?;
    }
    let n_state = read_u64(&mut reader)? as usize;
    let mut state = Vec::with_capacity(n_state);
    for _ in 0..n_state {
        let len = read_u64(&mut reader)? as usize;
        let mut block = vec![0.0f32; len];
        read_f32s_body(&mut reader, &mut block)?;
        state.push(block);
    }
    let mut cursor = state.into_iter();
    model.features.restore_state(&mut cursor);
    model.classifier.restore_state(&mut cursor);
    if cursor.next().is_some() {
        return Err(bad_data("trailing state blocks: architecture mismatch"));
    }
    Ok(())
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u64(r)? as usize;
    if len > 4096 {
        return Err(bad_data("implausible string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad_data("invalid utf-8 in model name"))
}

fn write_f32s<W: Write>(w: &mut W, vals: &[f32]) -> io::Result<()> {
    write_u64(w, vals.len() as u64)?;
    for v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s_into<R: Read>(r: &mut R, out: &mut [f32]) -> io::Result<()> {
    let len = read_u64(r)? as usize;
    if len != out.len() {
        return Err(bad_data(format!("tensor length mismatch: file {len}, model {}", out.len())));
    }
    read_f32s_body(r, out)
}

fn read_f32s_body<R: Read>(r: &mut R, out: &mut [f32]) -> io::Result<()> {
    let mut buf = [0u8; 4];
    for v in out.iter_mut() {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::models::Architecture;
    use crate::optim::{Adam, Optimizer};
    use crate::{cross_entropy, Layer as _};
    use nshd_tensor::{Rng, Tensor};

    /// Trains a couple of steps so weights *and* batch-norm running
    /// statistics diverge from initialisation.
    fn touched_model(seed: u64) -> Model {
        let mut rng = Rng::new(seed);
        let mut m = Architecture::MobileNetV2.build(4, &mut rng);
        let x = Tensor::from_fn([8, 3, 32, 32], |i| ((i * 29 % 61) as f32 - 30.0) / 30.0);
        let labels = [0usize, 1, 2, 3, 0, 1, 2, 3];
        let mut opt = Adam::new(1e-3, 0.0);
        for _ in 0..2 {
            m.zero_grad();
            let logits = m.forward(&x, Mode::Train);
            let out = cross_entropy(&logits, &labels);
            m.backward(&out.grad);
            let mut params = m.params_mut();
            opt.step(&mut params);
        }
        m
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let mut original = touched_model(1);
        let mut bytes = Vec::new();
        save_model(&mut original, &mut bytes).expect("save");
        assert!(!bytes.is_empty());

        // Fresh model with different seed: different weights and state.
        let mut restored = Architecture::MobileNetV2.build(4, &mut Rng::new(99));
        load_model(&mut restored, bytes.as_slice()).expect("load");

        // Evaluation outputs must match bit-for-bit (weights AND batch
        // norm running stats restored).
        let x = Tensor::from_fn([2, 3, 32, 32], |i| (i as f32 * 0.017).sin());
        let a = original.forward(&x, Mode::Eval);
        let b = restored.forward(&x, Mode::Eval);
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let mut m = touched_model(2);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        let mut other = Architecture::EfficientNetB0.build(4, &mut Rng::new(3));
        let err = load_model(&mut other, bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn wrong_class_count_is_rejected() {
        let mut m = touched_model(4);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        let mut other = Architecture::MobileNetV2.build(7, &mut Rng::new(5));
        assert!(load_model(&mut other, bytes.as_slice()).is_err());
    }

    #[test]
    fn garbage_is_rejected_up_front() {
        let mut m = touched_model(6);
        let err = load_model(&mut m, &b"definitely not a model"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let mut m = touched_model(7);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        bytes.truncate(bytes.len() / 2);
        let mut other = Architecture::MobileNetV2.build(4, &mut Rng::new(8));
        assert!(load_model(&mut other, bytes.as_slice()).is_err());
    }
}
