//! Binary save/load of trained model weights.
//!
//! Architectures rebuild deterministically from code, so only the learned
//! numbers are persisted: every parameter tensor (in the stable
//! `params_mut` order) plus non-parameter state (batch-norm running
//! statistics) collected through [`Layer::collect_state`]. The format is
//! a small little-endian container — versioned, checksummed by length
//! discipline, and free of external dependencies.
//!
//! Loading is defensive: the reader is wrapped in a [`CountingReader`] so
//! every failure — truncation, implausible lengths, shape disagreement,
//! non-finite payload values — reports the byte offset where it was
//! detected instead of panicking or silently accepting garbage.
//!
//! [`Layer::collect_state`]: crate::Layer::collect_state

use crate::layer::Layer;
use crate::model::Model;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NSHDMDL1";

/// A reader adapter that counts consumed bytes, so checkpoint-load errors
/// can point at the offending offset.
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    /// Wraps a reader, starting the byte count at zero.
    pub fn new(inner: R) -> Self {
        CountingReader { inner, offset: 0 }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

/// Saves a model's learned weights and state.
///
/// The `writer` can be a `File`, a `Vec<u8>` cursor, or anything
/// implementing [`Write`]; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_model<W: Write>(model: &mut Model, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    write_str(&mut writer, &model.name)?;
    // Parameters.
    let params = model.params_mut();
    write_u64(&mut writer, params.len() as u64)?;
    for p in &params {
        let dims = p.value.dims();
        write_u64(&mut writer, dims.len() as u64)?;
        for &d in dims {
            write_u64(&mut writer, d as u64)?;
        }
        write_f32s(&mut writer, p.value.as_slice())?;
    }
    // Non-parameter state.
    let mut state = Vec::new();
    model.features.collect_state(&mut state);
    model.classifier.collect_state(&mut state);
    write_u64(&mut writer, state.len() as u64)?;
    for block in &state {
        write_f32s(&mut writer, block)?;
    }
    Ok(())
}

/// Loads weights saved by [`save_model`] into an already-built model of
/// the *same architecture*.
///
/// # Errors
///
/// Returns an error — never panics — when the magic/version is wrong,
/// the architecture name or any tensor shape disagrees, the payload
/// contains non-finite values (corruption: trained weights and batch-norm
/// state are always finite), or the stream is truncated. Error messages
/// carry the byte offset where the problem was detected.
pub fn load_model<R: Read>(model: &mut Model, reader: R) -> io::Result<()> {
    let mut r = CountingReader::new(reader);
    load_model_counted(model, &mut r)
}

fn load_model_counted<R: Read>(model: &mut Model, r: &mut CountingReader<R>) -> io::Result<()> {
    let mut magic = [0u8; 8];
    read_exact_at(r, &mut magic, "file magic")?;
    if &magic != MAGIC {
        return Err(bad_at(0, "not an NSHD model file (bad magic)"));
    }
    let name = read_str(r)?;
    if name != model.name {
        return Err(bad_at(
            r.offset(),
            format!("architecture mismatch: file holds '{name}', model is '{}'", model.name),
        ));
    }
    let n_params = read_u64(r, "parameter count")? as usize;
    let mut params = model.params_mut();
    if n_params != params.len() {
        return Err(bad_at(
            r.offset(),
            format!("parameter count mismatch: file {n_params}, model {}", params.len()),
        ));
    }
    for (i, p) in params.iter_mut().enumerate() {
        let rank = read_u64(r, "tensor rank")? as usize;
        if rank > 8 {
            return Err(bad_at(r.offset(), format!("implausible rank {rank} for tensor {i}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r, "tensor dimension")? as usize);
        }
        if dims != p.value.dims() {
            return Err(bad_at(
                r.offset(),
                format!("tensor {i} shape mismatch: file {dims:?}, model {:?}", p.value.dims()),
            ));
        }
        read_f32s_into(r, p.value.as_mut_slice(), "tensor data")?;
    }
    let n_state = read_u64(r, "state block count")? as usize;
    if n_state > 1 << 20 {
        return Err(bad_at(r.offset(), format!("implausible state block count {n_state}")));
    }
    let mut state = Vec::with_capacity(n_state);
    for i in 0..n_state {
        let at = r.offset();
        let len = read_u64(r, "state block length")? as usize;
        if len > 1 << 28 {
            return Err(bad_at(at, format!("implausible state block length {len}")));
        }
        let mut block = vec![0.0f32; len];
        read_f32s_body(r, &mut block, "state data")?;
        if let Some(bad) = block.iter().find(|v| !v.is_finite()) {
            return Err(bad_at(r.offset(), format!("non-finite value {bad} in state block {i}")));
        }
        state.push(block);
    }
    let mut cursor = state.into_iter();
    model.features.restore_state(&mut cursor);
    model.classifier.restore_state(&mut cursor);
    if cursor.next().is_some() {
        return Err(bad_at(r.offset(), "trailing state blocks: architecture mismatch"));
    }
    Ok(())
}

fn bad_at(offset: u64, msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("at byte {offset}: {}", msg.into()))
}

fn read_exact_at<R: Read>(r: &mut CountingReader<R>, buf: &mut [u8], what: &str) -> io::Result<()> {
    let at = r.offset();
    r.read_exact(buf)
        .map_err(|e| io::Error::new(e.kind(), format!("at byte {at}: truncated reading {what}")))
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut CountingReader<R>, what: &str) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    read_exact_at(r, &mut buf, what)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut CountingReader<R>) -> io::Result<String> {
    let at = r.offset();
    let len = read_u64(r, "string length")? as usize;
    if len > 4096 {
        return Err(bad_at(at, format!("implausible string length {len}")));
    }
    let mut buf = vec![0u8; len];
    read_exact_at(r, &mut buf, "string bytes")?;
    String::from_utf8(buf).map_err(|_| bad_at(at, "invalid utf-8 in model name"))
}

fn write_f32s<W: Write>(w: &mut W, vals: &[f32]) -> io::Result<()> {
    write_u64(w, vals.len() as u64)?;
    for v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s_into<R: Read>(
    r: &mut CountingReader<R>,
    out: &mut [f32],
    what: &str,
) -> io::Result<()> {
    let at = r.offset();
    let len = read_u64(r, what)? as usize;
    if len != out.len() {
        return Err(bad_at(at, format!("{what} length mismatch: file {len}, model {}", out.len())));
    }
    read_f32s_body(r, out, what)?;
    if let Some(bad) = out.iter().find(|v| !v.is_finite()) {
        return Err(bad_at(r.offset(), format!("non-finite value {bad} in {what}")));
    }
    Ok(())
}

fn read_f32s_body<R: Read>(
    r: &mut CountingReader<R>,
    out: &mut [f32],
    what: &str,
) -> io::Result<()> {
    let mut buf = [0u8; 4];
    for v in out.iter_mut() {
        read_exact_at(r, &mut buf, what)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross_entropy;
    use crate::layer::Mode;
    use crate::models::Architecture;
    use crate::optim::{Adam, Optimizer};
    use nshd_tensor::{Rng, Tensor};

    /// Trains a couple of steps so weights *and* batch-norm running
    /// statistics diverge from initialisation.
    fn touched_model(seed: u64) -> Model {
        let mut rng = Rng::new(seed);
        let mut m = Architecture::MobileNetV2.build(4, &mut rng);
        let x = Tensor::from_fn([8, 3, 32, 32], |i| ((i * 29 % 61) as f32 - 30.0) / 30.0);
        let labels = [0usize, 1, 2, 3, 0, 1, 2, 3];
        let mut opt = Adam::new(1e-3, 0.0);
        for _ in 0..2 {
            m.zero_grad();
            let logits = m.forward(&x, Mode::Train);
            let out = cross_entropy(&logits, &labels);
            m.backward(&out.grad);
            let mut params = m.params_mut();
            opt.step(&mut params);
        }
        m
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let mut original = touched_model(1);
        let mut bytes = Vec::new();
        save_model(&mut original, &mut bytes).expect("save");
        assert!(!bytes.is_empty());

        // Fresh model with different seed: different weights and state.
        let mut restored = Architecture::MobileNetV2.build(4, &mut Rng::new(99));
        load_model(&mut restored, bytes.as_slice()).expect("load");

        // Evaluation outputs must match bit-for-bit (weights AND batch
        // norm running stats restored).
        let x = Tensor::from_fn([2, 3, 32, 32], |i| (i as f32 * 0.017).sin());
        let a = original.forward(&x, Mode::Eval);
        let b = restored.forward(&x, Mode::Eval);
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let mut m = touched_model(2);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        let mut other = Architecture::EfficientNetB0.build(4, &mut Rng::new(3));
        let err = load_model(&mut other, bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn wrong_class_count_is_rejected() {
        let mut m = touched_model(4);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        let mut other = Architecture::MobileNetV2.build(7, &mut Rng::new(5));
        assert!(load_model(&mut other, bytes.as_slice()).is_err());
    }

    #[test]
    fn garbage_is_rejected_up_front() {
        let mut m = touched_model(6);
        let err = load_model(&mut m, &b"definitely not a model"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        assert!(err.to_string().contains("byte 0"), "{err}");
    }

    #[test]
    fn every_truncation_errors_cleanly_with_offset() {
        let mut m = touched_model(7);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        // Sweep truncation points across the whole file, including the
        // header and both payload sections.
        let step = (bytes.len() / 41).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let mut other = Architecture::MobileNetV2.build(4, &mut Rng::new(8));
            let err = load_model(&mut other, &bytes[..cut]).unwrap_err();
            assert!(err.to_string().contains("at byte"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn bit_flips_error_or_load_but_never_panic() {
        let mut m = touched_model(9);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        let step = (bytes.len() / 53).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0u8, 7] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                let mut other = Architecture::MobileNetV2.build(4, &mut Rng::new(10));
                // Either a clean error or a (value-corrupted but
                // structurally valid) load — never a panic.
                let _ = load_model(&mut other, corrupt.as_slice());
            }
        }
        // A flip inside the 8-byte magic must always be caught.
        let mut corrupt = bytes.clone();
        corrupt[3] ^= 0x10;
        let mut other = Architecture::MobileNetV2.build(4, &mut Rng::new(11));
        let err = load_model(&mut other, corrupt.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn non_finite_payload_is_rejected() {
        let mut m = touched_model(12);
        let mut bytes = Vec::new();
        save_model(&mut m, &mut bytes).expect("save");
        // Compute the offset of the first f32 of the first parameter
        // tensor: magic, name (len + bytes), param count, rank, dims,
        // vector length.
        let rank = m.params_mut()[0].value.dims().len();
        let first_f32 = 8 + 8 + m.name.len() + 8 + 8 + rank * 8 + 8;
        bytes[first_f32..first_f32 + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let mut other = Architecture::MobileNetV2.build(4, &mut Rng::new(13));
        let err = load_model(&mut other, bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn counting_reader_tracks_offsets() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = CountingReader::new(&data[..]);
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.offset(), 3);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(r.offset(), 5);
    }
}
