//! Static shape inference: the error type of the [`Layer::shape_of`]
//! contract and the per-layer trace produced by
//! [`Sequential::infer_shapes`].
//!
//! Every layer can state, without running any arithmetic, what output
//! shape it would produce for a given per-sample input shape — or a
//! structured reason why the input is unacceptable. Chaining those
//! contracts over a [`Sequential`] yields a full static trace of a
//! network (shapes, MACs, parameters per layer), which the `nshd-core`
//! verifier uses to reject misconfigured pipelines before any tensor is
//! allocated or thread spawned.
//!
//! [`Layer::shape_of`]: crate::Layer::shape_of
//! [`Sequential`]: crate::Sequential
//! [`Sequential::infer_shapes`]: crate::Sequential::infer_shapes

use std::fmt;

/// Why a layer rejected an input shape during static inference.
///
/// Each variant names the offending layer; [`ShapeError::InLayer`] adds
/// the positional context when the failure happened inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The input has the wrong number of dimensions (e.g. a spatial
    /// layer fed a flattened vector).
    WrongRank {
        /// Name of the rejecting layer.
        layer: String,
        /// Rank the layer requires.
        expected: usize,
        /// The offending input shape.
        actual: Vec<usize>,
    },
    /// A channelled layer was fed the wrong channel count.
    ChannelMismatch {
        /// Name of the rejecting layer.
        layer: String,
        /// Channel count the layer was built for.
        expected: usize,
        /// Channel count of the input.
        actual: usize,
    },
    /// A fully-connected layer was fed the wrong flattened feature count.
    FeatureMismatch {
        /// Name of the rejecting layer.
        layer: String,
        /// Feature count the layer was built for.
        expected: usize,
        /// Flattened feature count of the input.
        actual: usize,
    },
    /// A convolution or pooling window does not fit the (padded) input.
    WindowTooLarge {
        /// Name of the rejecting layer.
        layer: String,
        /// Square window / kernel size.
        window: usize,
        /// Input height and width.
        input: (usize, usize),
    },
    /// A residual body changed the shape it must preserve.
    NotShapePreserving {
        /// Name of the rejecting layer.
        layer: String,
        /// The skip-connection (input) shape.
        input: Vec<usize>,
        /// The shape the body produced instead.
        body: Vec<usize>,
    },
    /// A layer inside a container rejected its input; wraps the
    /// underlying error with the layer's index and name.
    InLayer {
        /// Index of the failing layer within its container.
        index: usize,
        /// Name of the failing layer.
        layer: String,
        /// The underlying rejection.
        source: Box<ShapeError>,
    },
}

impl ShapeError {
    /// The innermost error, unwrapping any [`ShapeError::InLayer`]
    /// nesting introduced by containers.
    pub fn root_cause(&self) -> &ShapeError {
        match self {
            ShapeError::InLayer { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// The index of the outermost failing layer, if the error carries
    /// positional context.
    pub fn layer_index(&self) -> Option<usize> {
        match self {
            ShapeError::InLayer { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::WrongRank { layer, expected, actual } => {
                write!(f, "{layer}: expected rank-{expected} input, got {actual:?}")
            }
            ShapeError::ChannelMismatch { layer, expected, actual } => {
                write!(f, "{layer}: expected {expected} channels, got {actual}")
            }
            ShapeError::FeatureMismatch { layer, expected, actual } => {
                write!(f, "{layer}: expected {expected} features, got {actual}")
            }
            ShapeError::WindowTooLarge { layer, window, input: (h, w) } => {
                write!(f, "{layer}: window {window} larger than input {h}×{w}")
            }
            ShapeError::NotShapePreserving { layer, input, body } => {
                write!(f, "{layer}: body must preserve shape {input:?}, produced {body:?}")
            }
            ShapeError::InLayer { index, layer, source } => {
                write!(f, "layer {index} ({layer}): {source}")
            }
        }
    }
}

impl std::error::Error for ShapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShapeError::InLayer { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// One layer's row in a static shape trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeStep {
    /// Layer index within the traced container.
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Per-sample input shape the layer receives.
    pub in_shape: Vec<usize>,
    /// Per-sample output shape the layer produces.
    pub out_shape: Vec<usize>,
    /// Multiply–accumulates for one sample at this input shape.
    pub macs: u64,
    /// Scalar parameter count of the layer.
    pub params: usize,
}

/// The full static trace of a sequential stack: per-layer shapes plus
/// MAC and parameter accounting, computed without running any tensor
/// arithmetic.
///
/// Produced by [`Sequential::infer_shapes`](crate::Sequential::infer_shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeTrace {
    /// The per-sample input shape the trace starts from.
    pub input: Vec<usize>,
    /// One entry per layer, in execution order.
    pub steps: Vec<ShapeStep>,
}

impl ShapeTrace {
    /// The final output shape (the input shape for an empty stack).
    pub fn output(&self) -> &[usize] {
        self.steps.last().map_or(&self.input, |s| &s.out_shape)
    }

    /// The shape after the first `end` layers (`end == 0` is the input).
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the number of traced layers.
    pub fn shape_at(&self, end: usize) -> &[usize] {
        if end == 0 {
            &self.input
        } else {
            &self.steps[end - 1].out_shape
        }
    }

    /// Total MACs across every traced layer for one sample.
    pub fn total_macs(&self) -> u64 {
        self.steps.iter().map(|s| s.macs).sum()
    }

    /// MACs of the first `end` layers only.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the number of traced layers.
    pub fn macs_to(&self, end: usize) -> u64 {
        self.steps[..end].iter().map(|s| s.macs).sum()
    }

    /// Total parameters across every traced layer.
    pub fn total_params(&self) -> usize {
        self.steps.iter().map(|s| s.params).sum()
    }

    /// Parameters of the first `end` layers only.
    ///
    /// # Panics
    ///
    /// Panics if `end` exceeds the number of traced layers.
    pub fn params_to(&self, end: usize) -> usize {
        self.steps[..end].iter().map(|s| s.params).sum()
    }
}

impl fmt::Display for ShapeTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input {:?}", self.input)?;
        for s in &self.steps {
            writeln!(
                f,
                "{:>3}  {:<28} {:?} → {:?}  macs={} params={}",
                s.index, s.name, s.in_shape, s.out_shape, s.macs, s.params
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_layer() {
        let err = ShapeError::ChannelMismatch { layer: "bn(c8)".into(), expected: 8, actual: 4 };
        assert_eq!(err.to_string(), "bn(c8): expected 8 channels, got 4");
        let wrapped =
            ShapeError::InLayer { index: 3, layer: "bn(c8)".into(), source: Box::new(err.clone()) };
        assert!(wrapped.to_string().starts_with("layer 3 (bn(c8)):"));
        assert_eq!(wrapped.root_cause(), &err);
        assert_eq!(wrapped.layer_index(), Some(3));
        assert_eq!(err.layer_index(), None);
    }

    #[test]
    fn trace_accessors_aggregate_steps() {
        let trace = ShapeTrace {
            input: vec![3, 8, 8],
            steps: vec![
                ShapeStep {
                    index: 0,
                    name: "conv".into(),
                    in_shape: vec![3, 8, 8],
                    out_shape: vec![4, 8, 8],
                    macs: 100,
                    params: 10,
                },
                ShapeStep {
                    index: 1,
                    name: "flatten".into(),
                    in_shape: vec![4, 8, 8],
                    out_shape: vec![256],
                    macs: 0,
                    params: 0,
                },
            ],
        };
        assert_eq!(trace.output(), &[256]);
        assert_eq!(trace.shape_at(0), &[3, 8, 8]);
        assert_eq!(trace.shape_at(1), &[4, 8, 8]);
        assert_eq!(trace.total_macs(), 100);
        assert_eq!(trace.macs_to(1), 100);
        assert_eq!(trace.total_params(), 10);
        assert_eq!(trace.params_to(1), 10);
        assert!(trace.to_string().contains("conv"));
    }

    #[test]
    fn empty_trace_output_is_the_input() {
        let trace = ShapeTrace { input: vec![5], steps: Vec::new() };
        assert_eq!(trace.output(), &[5]);
        assert_eq!(trace.total_macs(), 0);
        assert_eq!(trace.total_params(), 0);
    }
}
