//! Analytical architecture specifications at *reference* scale.
//!
//! The efficiency experiments (Figs. 4–6, Table II) depend on the ratio
//! between CNN cost and the fixed-size HD stage. Our trainable analogs
//! are width-reduced to fit one CPU core, which distorts that ratio, so
//! cost experiments instead use these analytically-computed statistics of
//! the *reference* architectures — full torchvision widths at the
//! 224×224 resolution the paper resizes CIFAR to (its "VGG16 layer 27
//! outputs 25,088 features" implies exactly that). No weights are
//! allocated; only geometry is evaluated.
//!
//! Each spec mirrors the layer-index conventions of the corresponding
//! builder in [`crate::models`], and the unit tests cross-check the spec
//! formulas against [`crate::stats::model_stats`] on the real analog
//! models.

use crate::models::Architecture;
use crate::stats::{LayerStat, ModelStats};

/// Which scale a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecVariant {
    /// The width-reduced 32×32 models this workspace trains.
    Analog,
    /// The paper's full-width models at 224×224 input.
    Reference,
}

/// Computes the per-layer statistics of an architecture at the given
/// scale, without building the model.
pub fn arch_stats(arch: Architecture, variant: SpecVariant, num_classes: usize) -> ModelStats {
    match arch {
        Architecture::Vgg16 => vgg16_spec(variant, num_classes),
        Architecture::MobileNetV2 => mobilenet_spec(variant, num_classes),
        Architecture::EfficientNetB0 => efficientnet_spec(variant, false, num_classes),
        Architecture::EfficientNetB7 => efficientnet_spec(variant, true, num_classes),
    }
}

/// Flattened feature count after `cut` feature layers of a spec.
pub fn feature_len_at(stats: &ModelStats, cut: usize) -> usize {
    stats.feature_len_at(cut)
}

/// Feature-map shape (CHW) after `cut` feature layers of a spec.
///
/// # Panics
///
/// Panics if `cut` is 0 or out of range.
pub fn feature_shape_at(stats: &ModelStats, cut: usize) -> Vec<usize> {
    assert!(cut >= 1 && cut <= stats.features.len());
    stats.features[cut - 1].out_shape.clone()
}

// ---------------------------------------------------------------------
// Spec builder
// ---------------------------------------------------------------------

struct SpecBuilder {
    shape: (usize, usize, usize),
    stats: Vec<LayerStat>,
    /// When set, primitive stats accumulate into one pending block entry.
    block: Option<LayerStat>,
}

impl SpecBuilder {
    fn new(c: usize, h: usize, w: usize) -> Self {
        SpecBuilder { shape: (c, h, w), stats: Vec::new(), block: None }
    }

    fn emit(&mut self, name: String, macs: u64, params: usize) {
        let out_shape = vec![self.shape.0, self.shape.1, self.shape.2];
        let activation_elems = out_shape.iter().product();
        match &mut self.block {
            Some(block) => {
                block.macs += macs;
                block.params += params;
                block.out_shape = out_shape;
                block.activation_elems = activation_elems;
            }
            None => {
                self.stats.push(LayerStat {
                    index: self.stats.len(),
                    name,
                    out_shape,
                    macs,
                    params,
                    activation_elems,
                });
            }
        }
    }

    fn begin_block(&mut self, name: &str) {
        assert!(self.block.is_none(), "nested blocks are not supported");
        self.block = Some(LayerStat {
            index: self.stats.len(),
            name: name.to_string(),
            out_shape: vec![self.shape.0, self.shape.1, self.shape.2],
            macs: 0,
            params: 0,
            activation_elems: 0,
        });
    }

    fn end_block(&mut self) {
        let block = self.block.take().expect("end_block without begin_block");
        self.stats.push(block);
    }

    fn conv(&mut self, cout: usize, k: usize, s: usize, p: usize) {
        let (cin, h, w) = self.shape;
        let oh = (h + 2 * p - k) / s + 1;
        let ow = (w + 2 * p - k) / s + 1;
        let macs = (cout * cin * k * k * oh * ow) as u64;
        let params = cout * cin * k * k + cout;
        self.shape = (cout, oh, ow);
        self.emit(format!("conv{k}x{k}({cin}→{cout},s{s})"), macs, params);
    }

    fn dwconv(&mut self, k: usize, s: usize, p: usize) {
        let (c, h, w) = self.shape;
        let oh = (h + 2 * p - k) / s + 1;
        let ow = (w + 2 * p - k) / s + 1;
        let macs = (c * k * k * oh * ow) as u64;
        let params = c * k * k + c;
        self.shape = (c, oh, ow);
        self.emit(format!("dwconv{k}x{k}(c{c},s{s})"), macs, params);
    }

    fn bn(&mut self) {
        let params = 2 * self.shape.0;
        self.emit(format!("bn(c{})", self.shape.0), 0, params);
    }

    fn act(&mut self, name: &str) {
        self.emit(name.to_string(), 0, 0);
    }

    fn se(&mut self, reduced: usize) {
        let c = self.shape.0;
        let macs = 2 * (c * reduced) as u64;
        let params = c * reduced + reduced + reduced * c + c;
        self.emit(format!("se(c{c}→{reduced})"), macs, params);
    }

    fn maxpool(&mut self, window: usize) {
        let (c, h, w) = self.shape;
        self.shape = (c, (h - window) / window + 1, (w - window) / window + 1);
        self.emit(format!("maxpool{window}"), 0, 0);
    }

    fn gap(&mut self) {
        self.shape = (self.shape.0, 1, 1);
        self.emit("gap".into(), 0, 0);
    }

    fn flatten(&mut self) {
        let f = self.shape.0 * self.shape.1 * self.shape.2;
        self.shape = (f, 1, 1);
        self.emit("flatten".into(), 0, 0);
    }

    fn linear(&mut self, out: usize) {
        let fin = self.shape.0 * self.shape.1 * self.shape.2;
        let macs = (fin * out) as u64;
        let params = fin * out + out;
        self.shape = (out, 1, 1);
        self.emit(format!("linear({fin}→{out})"), macs, params);
    }

    fn take(self) -> Vec<LayerStat> {
        assert!(self.block.is_none(), "unterminated block");
        self.stats
    }
}

fn finish(features: Vec<LayerStat>, classifier: Vec<LayerStat>) -> ModelStats {
    // Re-index the classifier entries from zero.
    let classifier: Vec<LayerStat> = classifier
        .into_iter()
        .enumerate()
        .map(|(index, mut s)| {
            s.index = index;
            s
        })
        .collect();
    let total_macs = features.iter().map(|s| s.macs).sum::<u64>()
        + classifier.iter().map(|s| s.macs).sum::<u64>();
    let total_params = features.iter().map(|s| s.params).sum::<usize>()
        + classifier.iter().map(|s| s.params).sum::<usize>();
    ModelStats { features, classifier, total_macs, total_params }
}

// ---------------------------------------------------------------------
// VGG16
// ---------------------------------------------------------------------

fn vgg16_spec(variant: SpecVariant, num_classes: usize) -> ModelStats {
    let (base, input, hidden) = match variant {
        SpecVariant::Analog => (8usize, 32usize, 64usize),
        SpecVariant::Reference => (64, 224, 4096),
    };
    let cfg: [&[usize]; 5] = [
        &[base, base],
        &[2 * base, 2 * base],
        &[4 * base, 4 * base, 4 * base],
        &[8 * base, 8 * base, 8 * base],
        &[8 * base, 8 * base, 8 * base],
    ];
    let mut b = SpecBuilder::new(3, input, input);
    for stage in cfg {
        for &cout in stage {
            b.conv(cout, 3, 1, 1);
            b.act("relu");
        }
        b.maxpool(2);
    }
    let features = b.take();
    let mut c = SpecBuilder::new(
        features.last().expect("features").out_shape[0],
        features.last().expect("features").out_shape[1],
        features.last().expect("features").out_shape[2],
    );
    c.flatten();
    c.linear(hidden);
    c.act("relu");
    if variant == SpecVariant::Reference {
        // Torchvision VGG16 has two 4096-wide hidden layers.
        c.linear(hidden);
        c.act("relu");
    }
    c.linear(num_classes);
    finish(features, c.take())
}

// ---------------------------------------------------------------------
// MobileNetV2
// ---------------------------------------------------------------------

fn mobilenet_spec(variant: SpecVariant, num_classes: usize) -> ModelStats {
    // (expand, channels, repeats, first stride) per reference stage.
    let reference_stages: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let (scale, input, stem_stride, stage2_stride): (fn(usize) -> usize, usize, usize, usize) =
        match variant {
            SpecVariant::Analog => (|c| (c / 5).max(8), 32, 1, 1),
            SpecVariant::Reference => (|c| c, 224, 2, 2),
        };
    let stem = scale(32);
    let head = scale(1280);
    let mut b = SpecBuilder::new(3, input, input);
    b.begin_block("stem");
    b.conv(stem, 3, stem_stride, 1);
    b.bn();
    b.act("relu6");
    b.end_block();
    let mut cin = stem;
    for (stage_idx, (t, c, n, s)) in reference_stages.into_iter().enumerate() {
        let cout = scale(c);
        let s = if stage_idx == 1 { stage2_stride } else { s };
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            b.begin_block("inverted_residual");
            let hidden = cin * t;
            if t != 1 {
                b.conv(hidden, 1, 1, 0);
                b.bn();
                b.act("relu6");
            }
            b.dwconv(3, stride, 1);
            b.bn();
            b.act("relu6");
            b.conv(cout, 1, 1, 0);
            b.bn();
            b.end_block();
            cin = cout;
        }
    }
    b.begin_block("head");
    b.conv(head, 1, 1, 0);
    b.bn();
    b.act("relu6");
    b.end_block();
    let features = b.take();
    let last = features.last().expect("features").out_shape.clone();
    let mut c = SpecBuilder::new(last[0], last[1], last[2]);
    c.gap();
    c.linear(num_classes);
    finish(features, c.take())
}

// ---------------------------------------------------------------------
// EfficientNet
// ---------------------------------------------------------------------

fn efficientnet_spec(variant: SpecVariant, b7: bool, num_classes: usize) -> ModelStats {
    // (expand, channels, repeats, first stride, kernel) per stage.
    type Stage = (usize, usize, usize, usize, usize);
    let (stem, head, stages, input): (usize, usize, [Stage; 7], usize) = match (variant, b7) {
        (SpecVariant::Analog, false) => (
            8,
            192,
            [
                (1, 8, 1, 1, 3),
                (6, 8, 2, 1, 3),
                (6, 12, 2, 2, 5),
                (6, 16, 3, 2, 3),
                (6, 22, 3, 1, 5),
                (6, 38, 4, 2, 5),
                (6, 64, 1, 1, 3),
            ],
            32,
        ),
        (SpecVariant::Analog, true) => (
            12,
            384,
            [
                (1, 12, 2, 1, 3),
                (6, 16, 3, 1, 3),
                (6, 24, 3, 2, 5),
                (6, 32, 4, 2, 3),
                (6, 44, 4, 1, 5),
                (6, 76, 5, 2, 5),
                (6, 128, 2, 1, 3),
            ],
            32,
        ),
        (SpecVariant::Reference, false) => (
            32,
            1280,
            [
                (1, 16, 1, 1, 3),
                (6, 24, 2, 2, 3),
                (6, 40, 2, 2, 5),
                (6, 80, 3, 2, 3),
                (6, 112, 3, 1, 5),
                (6, 192, 4, 2, 5),
                (6, 320, 1, 1, 3),
            ],
            224,
        ),
        (SpecVariant::Reference, true) => (
            // Compound scaling: width ×2.0, depth ×3.1 over B0.
            64,
            2560,
            [
                (1, 32, 4, 1, 3),
                (6, 48, 7, 2, 3),
                (6, 80, 7, 2, 5),
                (6, 160, 10, 2, 3),
                (6, 224, 10, 1, 5),
                (6, 384, 13, 2, 5),
                (6, 640, 4, 1, 3),
            ],
            224,
        ),
    };
    let stem_stride = if variant == SpecVariant::Reference { 2 } else { 1 };
    let mut b = SpecBuilder::new(3, input, input);
    b.begin_block("stem");
    b.conv(stem, 3, stem_stride, 1);
    b.bn();
    b.act("silu");
    b.end_block();
    let mut cin = stem;
    for (expand, cout, repeats, stride, kernel) in stages {
        b.begin_block("mbconv_stage");
        for i in 0..repeats {
            let s = if i == 0 { stride } else { 1 };
            let hidden = cin * expand;
            if expand != 1 {
                b.conv(hidden, 1, 1, 0);
                b.bn();
                b.act("silu");
            }
            b.dwconv(kernel, s, kernel / 2);
            b.bn();
            b.act("silu");
            b.se((cin / 4).max(1));
            b.conv(cout, 1, 1, 0);
            b.bn();
            cin = cout;
        }
        b.end_block();
    }
    b.begin_block("head");
    b.conv(head, 1, 1, 0);
    b.bn();
    b.act("silu");
    b.end_block();
    let features = b.take();
    let last = features.last().expect("features").out_shape.clone();
    let mut c = SpecBuilder::new(last[0], last[1], last[2]);
    c.gap();
    c.linear(num_classes);
    finish(features, c.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::model_stats;
    use nshd_tensor::Rng;

    /// The analog spec must agree exactly with the stats of the real
    /// analog models — the strongest possible validation of the spec
    /// formulas.
    #[test]
    fn analog_spec_matches_built_models() {
        for arch in Architecture::ALL {
            let mut rng = Rng::new(1);
            let model = arch.build(10, &mut rng);
            let built = model_stats(&model);
            let spec = arch_stats(arch, SpecVariant::Analog, 10);
            assert_eq!(spec.features.len(), built.features.len(), "{arch} feature count");
            for (s, m) in spec.features.iter().zip(&built.features) {
                assert_eq!(s.macs, m.macs, "{arch} layer {} ({}) macs", s.index, m.name);
                assert_eq!(s.params, m.params, "{arch} layer {} params", s.index);
                assert_eq!(s.out_shape, m.out_shape, "{arch} layer {} shape", s.index);
            }
            assert_eq!(spec.total_macs, built.total_macs, "{arch} total macs");
            assert_eq!(spec.total_params, built.total_params, "{arch} total params");
        }
    }

    #[test]
    fn reference_vgg16_matches_published_size() {
        let spec = arch_stats(Architecture::Vgg16, SpecVariant::Reference, 1000);
        // Torchvision VGG16: 138.36M parameters.
        let millions = spec.total_params as f64 / 1e6;
        assert!((millions - 138.36).abs() < 1.5, "VGG16 params {millions}M");
        // Layer 27 (cut 28) flattened features: the paper's 25,088 comes
        // from the 512×7×7 tensor *after* the final pool; at the ReLU-27
        // cut the map is 512×14×14.
        assert_eq!(feature_shape_at(&spec, 28), vec![512, 14, 14]);
        assert_eq!(feature_len_at(&spec, 31), 512 * 7 * 7);
    }

    #[test]
    fn reference_mobilenet_and_efficientnet_sizes() {
        let mnet = arch_stats(Architecture::MobileNetV2, SpecVariant::Reference, 1000);
        let m = mnet.total_params as f64 / 1e6;
        assert!((m - 3.5).abs() < 0.5, "MobileNetV2 params {m}M");
        let b0 = arch_stats(Architecture::EfficientNetB0, SpecVariant::Reference, 1000);
        let m0 = b0.total_params as f64 / 1e6;
        assert!((m0 - 5.3).abs() < 1.0, "EfficientNet-B0 params {m0}M");
        let b7 = arch_stats(Architecture::EfficientNetB7, SpecVariant::Reference, 1000);
        let m7 = b7.total_params as f64 / 1e6;
        assert!((55.0..85.0).contains(&m7), "EfficientNet-B7 params {m7}M");
        assert!(b7.total_macs > 10 * b0.total_macs);
    }

    #[test]
    fn reference_feature_counts_are_paper_scale() {
        // Reference intermediate layers expose tens of thousands of
        // features — the explosion the manifold learner exists to tame.
        let b0 = arch_stats(Architecture::EfficientNetB0, SpecVariant::Reference, 10);
        for cut in [6usize, 7, 8, 9] {
            assert!(feature_len_at(&b0, cut) > 5_000, "cut {cut}: {}", feature_len_at(&b0, cut));
        }
    }

    #[test]
    fn block_indexing_matches_analog_builders() {
        let spec = arch_stats(Architecture::MobileNetV2, SpecVariant::Analog, 10);
        assert_eq!(spec.features.len(), crate::models::MOBILENET_FEATURE_COUNT);
        let spec = arch_stats(Architecture::EfficientNetB0, SpecVariant::Analog, 10);
        assert_eq!(spec.features.len(), crate::models::EFFICIENTNET_FEATURE_COUNT);
        let spec = arch_stats(Architecture::Vgg16, SpecVariant::Analog, 10);
        assert_eq!(spec.features.len(), crate::models::VGG16_FEATURE_COUNT);
    }
}
