//! Per-layer cost statistics: MACs, parameters, and activation footprints.
//!
//! These numbers drive the paper's efficiency results: Fig. 4 (energy),
//! Fig. 5 (MAC reduction), Fig. 6 (FPGA throughput), and Table II (model
//! size).

use crate::layer::Layer;
use crate::model::Model;
use crate::sequential::Sequential;

/// Cost statistics for one layer of a feature stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStat {
    /// Layer index within the stack.
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Output shape (excluding batch).
    pub out_shape: Vec<usize>,
    /// Multiply–accumulates for one sample.
    pub macs: u64,
    /// Scalar parameter count.
    pub params: usize,
    /// Output activation element count.
    pub activation_elems: usize,
}

/// Computes per-layer statistics for a sequential stack on a given input
/// shape (excluding batch).
pub fn sequential_stats(seq: &Sequential, in_shape: &[usize]) -> Vec<LayerStat> {
    let mut shape = in_shape.to_vec();
    let mut stats = Vec::with_capacity(seq.len());
    for index in 0..seq.len() {
        let layer = seq.layer(index);
        let macs = layer.macs(&shape);
        shape = layer.out_shape(&shape);
        stats.push(LayerStat {
            index,
            name: layer.name(),
            out_shape: shape.clone(),
            macs,
            params: layer.param_count(),
            activation_elems: shape.iter().product(),
        });
    }
    stats
}

/// Aggregate cost summary of a whole model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Per-layer stats of the feature stack.
    pub features: Vec<LayerStat>,
    /// Per-layer stats of the classifier head.
    pub classifier: Vec<LayerStat>,
    /// Total MACs for one forward pass of one sample.
    pub total_macs: u64,
    /// Total parameter count.
    pub total_params: usize,
}

/// Computes a [`ModelStats`] summary for a model.
pub fn model_stats(model: &Model) -> ModelStats {
    let features = sequential_stats(&model.features, &model.input_shape);
    let feat_out = model.features.out_shape(&model.input_shape);
    let classifier = sequential_stats(&model.classifier, &feat_out);
    let total_macs = features.iter().map(|s| s.macs).sum::<u64>()
        + classifier.iter().map(|s| s.macs).sum::<u64>();
    let total_params = features.iter().map(|s| s.params).sum::<usize>()
        + classifier.iter().map(|s| s.params).sum::<usize>();
    ModelStats { features, classifier, total_macs, total_params }
}

impl ModelStats {
    /// Parameters in the first `cut` feature layers.
    pub fn feature_params_to(&self, cut: usize) -> usize {
        self.features[..cut].iter().map(|s| s.params).sum()
    }

    /// MACs in the first `cut` feature layers.
    pub fn feature_macs_to(&self, cut: usize) -> u64 {
        self.features[..cut].iter().map(|s| s.macs).sum()
    }

    /// Flattened feature count after `cut` layers (0 → input is
    /// unavailable here; `cut` must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cut` is 0 or exceeds the number of feature layers.
    pub fn feature_len_at(&self, cut: usize) -> usize {
        assert!(cut >= 1 && cut <= self.features.len());
        self.features[cut - 1].activation_elems
    }
}

/// Model size in bytes assuming 4-byte (f32) parameters, the convention
/// Table II uses.
pub fn params_to_bytes(params: usize) -> u64 {
    params as u64 * 4
}

/// Formats a byte count the way the paper's Table II prints sizes (MB with
/// two decimals).
pub fn format_mb(bytes: u64) -> String {
    format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{vgg16, Architecture};
    use nshd_tensor::Rng;

    #[test]
    fn stats_shapes_chain_correctly() {
        let mut rng = Rng::new(1);
        let m = vgg16(10, &mut rng);
        let stats = model_stats(&m);
        assert_eq!(stats.features.len(), 31);
        // First conv: 3→8 channels at 32×32.
        assert_eq!(stats.features[0].out_shape, vec![8, 32, 32]);
        assert_eq!(stats.features[0].macs, 8 * 27 * 1024);
        // Activations shrink after each pool.
        assert_eq!(stats.features[4].out_shape, vec![8, 16, 16]);
        // Totals match Model accessors.
        assert_eq!(stats.total_macs, m.total_macs());
        assert_eq!(stats.total_params, m.param_count());
        assert_eq!(stats.feature_macs_to(28), m.macs_to_cut(28));
        assert_eq!(stats.feature_params_to(28), m.param_count_to_cut(28));
        assert_eq!(stats.feature_len_at(28), m.feature_len_at(28));
    }

    #[test]
    fn all_architectures_produce_monotone_cumulative_macs() {
        for arch in Architecture::ALL {
            let mut rng = Rng::new(2);
            let m = arch.build(10, &mut rng);
            let stats = model_stats(&m);
            let mut cum = 0u64;
            for (i, s) in stats.features.iter().enumerate() {
                cum += s.macs;
                assert_eq!(stats.feature_macs_to(i + 1), cum, "{arch}");
            }
        }
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(params_to_bytes(1024 * 1024), 4 * 1024 * 1024);
        assert_eq!(format_mb(537_200_000), format!("{:.2}MB", 537_200_000f64 / 1048576.0));
    }
}
