//! Mini-batch training loop for CNN models.
//!
//! NSHD needs genuinely *trained* teachers (the paper downloads pretrained
//! weights; we train our analogs in-repo — DESIGN.md §3). This module
//! provides the supervised loop used to produce them.

use crate::layer::Mode;
use crate::loss::{accuracy, cross_entropy};
use crate::model::Model;
use crate::optim::Optimizer;
use nshd_tensor::{par, Rng, Tensor};

/// Configuration of a supervised training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed (deterministic runs).
    pub seed: u64,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// When `true`, prints one progress line per epoch to stderr.
    pub verbose: bool,
    /// Micro-batch size for data-parallel gradient accumulation.
    ///
    /// `Some(c)` splits every mini-batch into fixed `c`-sample
    /// micro-batches, runs forward + backward for each on a clone of
    /// the model across the `nshd_tensor::par` worker set, and reduces
    /// the gradients into the live model **in ascending micro-batch
    /// order** with sample-count weights — so the accumulated gradient
    /// is identical for any `NSHD_THREADS`, because micro-batch
    /// boundaries depend only on `c` and the reduction order is fixed.
    /// `None` (the default) keeps the whole batch on one thread.
    ///
    /// Statefulness caveat: per-forward layer state updated during
    /// `Mode::Train` (batch-norm running statistics) happens in the
    /// clones and is discarded; use micro-batching for models without
    /// such layers, or re-estimate statistics afterwards.
    pub grad_chunk: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            seed: 0,
            lr_decay: 0.9,
            verbose: false,
            grad_chunk: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch number, starting from 0.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Trains `model` on `(images, labels)` with the given optimizer.
///
/// `images` is `N×C×H×W`, `labels` has length `N`. Returns one report per
/// epoch.
///
/// # Panics
///
/// Panics if `images` and `labels` disagree in length, or the dataset is
/// empty.
pub fn fit(
    model: &mut Model,
    images: &Tensor,
    labels: &[usize],
    optimizer: &mut dyn Optimizer,
    config: &TrainConfig,
) -> Vec<EpochReport> {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "images and labels must align");
    assert!(n > 0, "cannot train on an empty dataset");
    let mut rng = Rng::new(config.seed);
    let mut reports = Vec::with_capacity(config.epochs);
    let batch_size = config.batch_size.max(1);
    for epoch in 0..config.epochs {
        let _sp = nshd_obs::span("nn_epoch");
        let order = rng.permutation(n);
        let mut loss_sum = 0.0;
        let mut acc_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            let step = match config.grad_chunk {
                Some(micro) if micro > 0 && micro < chunk.len() => {
                    chunked_step(model, images, labels, chunk, micro)
                }
                _ => plain_step(model, images, labels, chunk),
            };
            // An empty (or unstackable) chunk is skipped rather than
            // aborting the whole run.
            let Some((loss, acc)) = step else { continue };
            let mut params = model.params_mut();
            optimizer.step(&mut params);
            loss_sum += loss;
            acc_sum += acc;
            batches += 1;
        }
        optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
        let batches = batches.max(1) as f32;
        let report = EpochReport { epoch, loss: loss_sum / batches, accuracy: acc_sum / batches };
        if nshd_obs::enabled() {
            nshd_obs::counter("nn.epochs").inc();
            nshd_obs::gauge("nn.train_loss").set(f64::from(report.loss));
            nshd_obs::gauge("nn.train_accuracy").set(f64::from(report.accuracy));
        }
        if config.verbose {
            eprintln!(
                "[{}] epoch {:>2}: loss {:.4}, acc {:.3}",
                model.name, report.epoch, report.loss, report.accuracy
            );
        }
        reports.push(report);
    }
    reports
}

/// One whole-batch training step on the calling thread: zeroes the
/// model's gradients, runs forward + backward, and leaves the gradients
/// accumulated for the optimizer. `None` when the chunk cannot be
/// stacked (empty tail).
fn plain_step(
    model: &mut Model,
    images: &Tensor,
    labels: &[usize],
    chunk: &[usize],
) -> Option<(f32, f32)> {
    let batch_imgs: Vec<Tensor> = chunk.iter().map(|&i| images.batch_item(i)).collect();
    let batch = Tensor::stack(&batch_imgs).ok()?;
    let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
    model.zero_grad();
    let logits = model.forward(&batch, Mode::Train);
    let out = cross_entropy(&logits, &batch_labels);
    model.backward(&out.grad);
    Some((out.loss, accuracy(&logits, &batch_labels)))
}

/// One data-parallel training step: the batch is split into fixed
/// `micro`-sample micro-batches whose boundaries depend only on `micro`
/// (never on the thread count), each runs forward + backward on its own
/// clone of the model, and the per-micro-batch gradients are reduced
/// into `model` in ascending micro-batch order with `len/total` sample
/// weights. The fixed split and fixed reduction order make the
/// accumulated gradient — and hence the whole training run —
/// bit-identical for any `NSHD_THREADS`.
fn chunked_step(
    model: &mut Model,
    images: &Tensor,
    labels: &[usize],
    chunk: &[usize],
    micro: usize,
) -> Option<(f32, f32)> {
    let subs: Vec<(Tensor, Vec<usize>)> = chunk
        .chunks(micro)
        .filter_map(|sub| {
            let imgs: Vec<Tensor> = sub.iter().map(|&i| images.batch_item(i)).collect();
            let stacked = Tensor::stack(&imgs).ok()?;
            Some((stacked, sub.iter().map(|&i| labels[i]).collect()))
        })
        .collect();
    if subs.is_empty() {
        return None;
    }
    let total: usize = subs.iter().map(|(_, y)| y.len()).sum();
    let shared: &Model = model;
    let results: Vec<(f32, f32, Vec<Tensor>, usize)> = par::par_map(&subs, |(x, y)| {
        let mut local = shared.clone();
        local.zero_grad();
        let logits = local.forward(x, Mode::Train);
        let out = cross_entropy(&logits, y);
        local.backward(&out.grad);
        let grads: Vec<Tensor> = local.params_mut().into_iter().map(|p| p.grad.clone()).collect();
        (out.loss, accuracy(&logits, y), grads, y.len())
    });
    model.zero_grad();
    let mut loss = 0.0;
    let mut acc = 0.0;
    for (sub_loss, sub_acc, grads, len) in &results {
        let weight = *len as f32 / total as f32;
        loss += weight * sub_loss;
        acc += weight * sub_acc;
        for (param, grad) in model.params_mut().into_iter().zip(grads) {
            param.grad.axpy(weight, grad);
        }
    }
    Some((loss, acc))
}

/// Evaluates classification accuracy on a held-out set, in batches.
///
/// # Panics
///
/// Panics if `images` and `labels` disagree in length.
pub fn evaluate(model: &mut Model, images: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
    let n = images.dims()[0];
    assert_eq!(n, labels.len());
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0.0;
    let mut seen = 0usize;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let batch_imgs: Vec<Tensor> = chunk.iter().map(|&i| images.batch_item(i)).collect();
        // An empty tail chunk cannot be stacked; skip it rather than
        // aborting the evaluation.
        let Ok(batch) = Tensor::stack(&batch_imgs) else { continue };
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = model.forward(&batch, Mode::Eval);
        correct += accuracy(&logits, &batch_labels) * chunk.len() as f32;
        seen += chunk.len();
    }
    correct / seen as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{ActKind, Activation};
    use crate::conv::Conv2d;
    use crate::flatten::Flatten;
    use crate::linear::Linear;
    use crate::optim::Sgd;
    use crate::pool::MaxPool2d;
    use crate::sequential::Sequential;

    /// A 2-class toy problem: class 0 images are bright in the left half,
    /// class 1 in the right half. A tiny CNN must learn it quickly.
    fn toy_dataset(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Rng::new(seed);
        let mut images = Tensor::zeros([n, 1, 8, 8]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.below(2);
            labels.push(class);
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if class == 0 { x < 4 } else { x >= 4 };
                    let v = if bright { 0.8 } else { 0.1 } + rng.normal_with(0.0, 0.05);
                    *images.at_mut(&[i, 0, y, x]) = v;
                }
            }
        }
        (images, labels)
    }

    fn toy_model(seed: u64) -> Model {
        let mut rng = Rng::new(seed);
        Model {
            name: "toy".into(),
            features: Sequential::new()
                .with(Conv2d::new(1, 4, 3, 1, 1, &mut rng))
                .with(Activation::new(ActKind::Relu))
                .with(MaxPool2d::new(2)),
            classifier: Sequential::new().with(Flatten::new()).with(Linear::new(
                4 * 4 * 4,
                2,
                &mut rng,
            )),
            input_shape: vec![1, 8, 8],
            num_classes: 2,
        }
    }

    #[test]
    fn training_learns_the_toy_problem() {
        let (train_x, train_y) = toy_dataset(64, 1);
        let (test_x, test_y) = toy_dataset(32, 2);
        let mut model = toy_model(3);
        let before = evaluate(&mut model, &test_x, &test_y, 16);
        let mut opt = Sgd::new(0.1, 0.9, 1e-4);
        let reports = fit(
            &mut model,
            &train_x,
            &train_y,
            &mut opt,
            &TrainConfig { epochs: 6, batch_size: 16, ..TrainConfig::default() },
        );
        let after = evaluate(&mut model, &test_x, &test_y, 16);
        assert!(after > 0.9, "accuracy after training: {after} (before {before})");
        // Loss decreases over epochs.
        assert!(reports.last().unwrap().loss < reports.first().unwrap().loss);
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let (x, y) = toy_dataset(32, 5);
        let run = |model_seed| {
            let mut m = toy_model(model_seed);
            let mut opt = Sgd::new(0.05, 0.0, 0.0);
            fit(
                &mut m,
                &x,
                &y,
                &mut opt,
                &TrainConfig { epochs: 2, batch_size: 8, ..TrainConfig::default() },
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn evaluate_empty_returns_zero() {
        let mut m = toy_model(9);
        assert_eq!(evaluate(&mut m, &Tensor::zeros([0, 1, 8, 8]), &[], 4), 0.0);
    }

    #[test]
    fn oversized_batch_trains_on_one_full_batch() {
        let (x, y) = toy_dataset(12, 11);
        let mut m = toy_model(12);
        let mut opt = Sgd::new(0.05, 0.0, 0.0);
        // batch_size far beyond the dataset: the single (tail) batch is
        // the whole set, and the run completes without panicking.
        let reports = fit(
            &mut m,
            &x,
            &y,
            &mut opt,
            &TrainConfig { epochs: 2, batch_size: 500, ..TrainConfig::default() },
        );
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn zero_batch_size_is_clamped_not_panicking() {
        let (x, y) = toy_dataset(8, 13);
        let mut m = toy_model(14);
        let mut opt = Sgd::new(0.05, 0.0, 0.0);
        let reports = fit(
            &mut m,
            &x,
            &y,
            &mut opt,
            &TrainConfig { epochs: 1, batch_size: 0, ..TrainConfig::default() },
        );
        assert_eq!(reports.len(), 1);
        assert!(reports[0].loss.is_finite());
        // Same clamp on the evaluation path.
        let acc = evaluate(&mut m, &x, &y, 0);
        assert!((0.0..=1.0).contains(&acc));
    }
}
