//! Property-based tests for the CNN substrate.
//!
//! Cases are generated with the in-repo seeded [`Rng`] (no external
//! property-testing framework — the workspace builds offline). Failure
//! messages carry the case index, which reproduces the exact inputs.

use nshd_nn::{
    cross_entropy, ActKind, Activation, BatchNorm2d, Conv2d, DepthwiseConv2d, GlobalAvgPool, Layer,
    Linear, MaxPool2d, Mode,
};
use nshd_tensor::{Rng, Tensor};

const CASES: u64 = 24;

fn input(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor {
    let mut rng = Rng::new(seed);
    Tensor::from_fn([n, c, h, w], |_| rng.normal())
}

/// Conv output shape follows the padding formula for any geometry.
#[test]
fn conv_shapes_follow_formula() {
    let mut tried = 0u64;
    let mut case = 0u64;
    while tried < CASES {
        case += 1;
        let mut rng = Rng::new(0x10_0000 + case);
        let cin = 1 + rng.below(3);
        let cout = 1 + rng.below(4);
        let k = 1 + rng.below(3);
        let s = 1 + rng.below(2);
        let h = 4 + rng.below(6);
        let w = 4 + rng.below(6);
        let seed = rng.below(100) as u64;
        let p = k / 2;
        if h + 2 * p < k || w + 2 * p < k {
            continue;
        }
        tried += 1;
        let mut conv = Conv2d::new(cin, cout, k, s, p, &mut Rng::new(seed));
        let x = input(2, cin, h, w, seed);
        let y = conv.forward(&x, Mode::Eval);
        let oh = (h + 2 * p - k) / s + 1;
        let ow = (w + 2 * p - k) / s + 1;
        assert_eq!(y.dims(), &[2, cout, oh, ow], "case {case}");
        assert_eq!(conv.out_shape(&[cin, h, w]), vec![cout, oh, ow], "case {case}");
        assert!(y.as_slice().iter().all(|v| v.is_finite()), "case {case}");
    }
}

/// Convolution is linear: conv(a·x) == a·conv(x) + (1−a)·bias-term.
/// With zero bias it is exactly homogeneous.
#[test]
fn conv_is_homogeneous_with_zero_bias() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x20_0000 + case);
        let seed = rng.below(50) as u64;
        let scale = rng.uniform_in(0.1, 3.0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut Rng::new(seed));
        for p in conv.params_mut() {
            if p.value.dims() == [3] {
                for v in p.value.as_mut_slice() {
                    *v = 0.0;
                }
            }
        }
        let x = input(1, 2, 5, 5, seed + 1);
        let y1 = conv.forward(&x.scale(scale), Mode::Eval);
        let y2 = conv.forward(&x, Mode::Eval).scale(scale);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0), "case {case}: {a} vs {b}");
        }
    }
}

/// Backward shape always matches the forward input shape.
#[test]
fn backward_shapes_match_input() {
    for case in 0..CASES {
        let seed = case;
        let mut rng = Rng::new(seed);
        let x = input(2, 3, 8, 8, seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, &mut rng)),
            Box::new(DepthwiseConv2d::new(3, 3, 1, 1, &mut rng)),
            Box::new(BatchNorm2d::new(3)),
            Box::new(Activation::new(ActKind::Silu)),
            Box::new(MaxPool2d::new(2)),
            Box::new(GlobalAvgPool::new()),
        ];
        for mut layer in layers {
            let y = layer.forward(&x, Mode::Train);
            let dx = layer.backward(&Tensor::ones(y.shape().clone()));
            assert_eq!(dx.dims(), x.dims(), "case {case}: {}", layer.name());
        }
    }
}

/// ReLU-family activations are idempotent (f(f(x)) == f(x)).
#[test]
fn relu_family_idempotent() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x30_0000 + case);
        let n = 1 + rng.below(31);
        let vals: Vec<f32> = (0..n).map(|_| rng.uniform_in(-10.0, 10.0)).collect();
        for kind in [ActKind::Relu, ActKind::Relu6] {
            let mut act = Activation::new(kind);
            let x = Tensor::from_slice(&vals);
            let once = act.forward(&x, Mode::Eval);
            let twice = act.forward(&once, Mode::Eval);
            assert_eq!(once, twice, "case {case}");
        }
    }
}

/// Linear layers preserve batch independence: permuting the batch
/// permutes the outputs.
#[test]
fn linear_is_batch_independent() {
    for case in 0..CASES {
        let seed = case;
        let mut fc = Linear::new(6, 4, &mut Rng::new(seed));
        let a = input(1, 1, 1, 6, seed + 1).reshaped([1, 6]).unwrap();
        let b = input(1, 1, 1, 6, seed + 2).reshaped([1, 6]).unwrap();
        let ab = Tensor::stack(&[a.batch_item(0), b.batch_item(0)]).unwrap();
        let ba = Tensor::stack(&[b.batch_item(0), a.batch_item(0)]).unwrap();
        let y_ab = fc.forward(&ab, Mode::Eval);
        let y_ba = fc.forward(&ba, Mode::Eval);
        assert_eq!(y_ab.batch_item(0), y_ba.batch_item(1), "case {case}");
        assert_eq!(y_ab.batch_item(1), y_ba.batch_item(0), "case {case}");
    }
}

/// Cross-entropy is non-negative and zero only at a perfect
/// prediction.
#[test]
fn cross_entropy_nonnegative() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40_0000 + case);
        let logits: Vec<f32> = (0..3).map(|_| rng.uniform_in(-8.0, 8.0)).collect();
        let label = rng.below(3);
        let t = Tensor::from_vec(logits, [1, 3]).unwrap();
        let out = cross_entropy(&t, &[label]);
        assert!(out.loss >= 0.0, "case {case}");
        assert!(out.loss.is_finite(), "case {case}");
        // Gradient rows sum to ~0.
        let s: f32 = out.grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-5, "case {case}: {s}");
    }
}

/// MaxPool never increases the maximum and never decreases the
/// per-window maximum.
#[test]
fn maxpool_bounds() {
    for case in 0..CASES {
        let seed = case;
        let mut mp = MaxPool2d::new(2);
        let x = input(1, 2, 6, 6, seed);
        let y = mp.forward(&x, Mode::Eval);
        assert!(y.max().unwrap() <= x.max().unwrap() + 1e-6, "case {case}");
        assert!(y.min().unwrap() >= x.min().unwrap() - 1e-6, "case {case}");
    }
}
