//! Property-based tests for the CNN substrate.

use nshd_nn::{
    cross_entropy, ActKind, Activation, BatchNorm2d, Conv2d, DepthwiseConv2d, GlobalAvgPool,
    Layer, Linear, MaxPool2d, Mode,
};
use nshd_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn input(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor {
    let mut rng = Rng::new(seed);
    Tensor::from_fn([n, c, h, w], |_| rng.normal())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv output shape follows the padding formula for any geometry.
    #[test]
    fn conv_shapes_follow_formula(
        cin in 1usize..4, cout in 1usize..5, k in 1usize..4,
        s in 1usize..3, h in 4usize..10, w in 4usize..10, seed in 0u64..100,
    ) {
        let p = k / 2;
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let mut conv = Conv2d::new(cin, cout, k, s, p, &mut Rng::new(seed));
        let x = input(2, cin, h, w, seed);
        let y = conv.forward(&x, Mode::Eval);
        let oh = (h + 2 * p - k) / s + 1;
        let ow = (w + 2 * p - k) / s + 1;
        prop_assert_eq!(y.dims(), &[2, cout, oh, ow]);
        prop_assert_eq!(conv.out_shape(&[cin, h, w]), vec![cout, oh, ow]);
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Convolution is linear: conv(a·x) == a·conv(x) + (1−a)·bias-term.
    /// With zero bias it is exactly homogeneous.
    #[test]
    fn conv_is_homogeneous_with_zero_bias(seed in 0u64..50, scale in 0.1f32..3.0) {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut Rng::new(seed));
        for p in conv.params_mut() {
            if p.value.dims() == [3] {
                for v in p.value.as_mut_slice() { *v = 0.0; }
            }
        }
        let x = input(1, 2, 5, 5, seed + 1);
        let y1 = conv.forward(&x.scale(scale), Mode::Eval);
        let y2 = conv.forward(&x, Mode::Eval).scale(scale);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * b.abs().max(1.0));
        }
    }

    /// Backward shape always matches the forward input shape.
    #[test]
    fn backward_shapes_match_input(seed in 0u64..50) {
        let mut rng = Rng::new(seed);
        let x = input(2, 3, 8, 8, seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, &mut rng)),
            Box::new(DepthwiseConv2d::new(3, 3, 1, 1, &mut rng)),
            Box::new(BatchNorm2d::new(3)),
            Box::new(Activation::new(ActKind::Silu)),
            Box::new(MaxPool2d::new(2)),
            Box::new(GlobalAvgPool::new()),
        ];
        for mut layer in layers {
            let y = layer.forward(&x, Mode::Train);
            let dx = layer.backward(&Tensor::ones(y.shape().clone()));
            prop_assert_eq!(dx.dims(), x.dims(), "{}", layer.name());
        }
    }

    /// ReLU-family activations are idempotent (f(f(x)) == f(x)).
    #[test]
    fn relu_family_idempotent(vals in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
        for kind in [ActKind::Relu, ActKind::Relu6] {
            let mut act = Activation::new(kind);
            let x = Tensor::from_slice(&vals);
            let once = act.forward(&x, Mode::Eval);
            let twice = act.forward(&once, Mode::Eval);
            prop_assert_eq!(once, twice);
        }
    }

    /// Linear layers preserve batch independence: permuting the batch
    /// permutes the outputs.
    #[test]
    fn linear_is_batch_independent(seed in 0u64..50) {
        let mut fc = Linear::new(6, 4, &mut Rng::new(seed));
        let a = input(1, 1, 1, 6, seed + 1).reshaped([1, 6]).unwrap();
        let b = input(1, 1, 1, 6, seed + 2).reshaped([1, 6]).unwrap();
        let ab = Tensor::stack(&[a.batch_item(0), b.batch_item(0)]).unwrap();
        let ba = Tensor::stack(&[b.batch_item(0), a.batch_item(0)]).unwrap();
        let y_ab = fc.forward(&ab, Mode::Eval);
        let y_ba = fc.forward(&ba, Mode::Eval);
        prop_assert_eq!(y_ab.batch_item(0), y_ba.batch_item(1));
        prop_assert_eq!(y_ab.batch_item(1), y_ba.batch_item(0));
    }

    /// Cross-entropy is non-negative and zero only at a perfect
    /// prediction.
    #[test]
    fn cross_entropy_nonnegative(
        logits in proptest::collection::vec(-8.0f32..8.0, 3),
        label in 0usize..3,
    ) {
        let t = Tensor::from_vec(logits, [1, 3]).unwrap();
        let out = cross_entropy(&t, &[label]);
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
        // Gradient rows sum to ~0.
        let s: f32 = out.grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-5);
    }

    /// MaxPool never increases the maximum and never decreases the
    /// per-window maximum.
    #[test]
    fn maxpool_bounds(seed in 0u64..50) {
        let mut mp = MaxPool2d::new(2);
        let x = input(1, 2, 6, 6, seed);
        let y = mp.forward(&x, Mode::Eval);
        prop_assert!(y.max().unwrap() <= x.max().unwrap() + 1e-6);
        prop_assert!(y.min().unwrap() >= x.min().unwrap() - 1e-6);
    }
}
