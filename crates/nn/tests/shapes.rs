//! Static shape inference versus reality: for every zoo architecture and
//! a grid of input sizes, `infer_shapes` must predict exactly the shapes
//! the network actually produces, and its MAC/param accounting must match
//! the existing `stats` counters. Plus one negative test per
//! [`ShapeError`] variant.

use nshd_nn::stats::{model_stats, sequential_stats};
use nshd_nn::{
    ActKind, Activation, Architecture, Conv2d, Flatten, Linear, MaxPool2d, Mode, Residual,
    Sequential, ShapeError,
};
use nshd_tensor::{Rng, Tensor};

/// Spatial sizes the paper's pipelines see (CIFAR-scale) plus larger
/// odd-reduction grids that exercise floor divisions in pooling/strides.
const GRID: [[usize; 3]; 3] = [[3, 32, 32], [3, 48, 48], [3, 64, 64]];

#[test]
fn zoo_feature_traces_match_actual_forward_shapes() {
    for arch in Architecture::ALL {
        let mut rng = Rng::new(11);
        let mut model = arch.build(10, &mut rng);
        for in_shape in GRID {
            let trace = model
                .features
                .infer_shapes(&in_shape)
                .unwrap_or_else(|e| panic!("{arch}: static trace rejected {in_shape:?}: {e}"));
            assert_eq!(trace.steps.len(), model.features.len(), "{arch}");

            // The static prediction must match what the network does.
            let batch = Tensor::zeros([1, in_shape[0], in_shape[1], in_shape[2]]);
            let out = model.features.forward_all(&batch, Mode::Eval);
            assert_eq!(
                &out.dims()[1..],
                trace.output(),
                "{arch} at {in_shape:?}: forward disagrees with static trace"
            );

            // Every intermediate shape too, via forward_to.
            for end in [1, model.features.len() / 2, model.features.len()] {
                let partial = model.features.forward_to(&batch, end, Mode::Eval);
                assert_eq!(
                    &partial.dims()[1..],
                    trace.shape_at(end),
                    "{arch} at {in_shape:?}: layer {end} shape diverged"
                );
            }

            // MAC/param accounting must agree with the stats counters.
            let stats = sequential_stats(&model.features, &in_shape);
            assert_eq!(
                trace.total_macs(),
                stats.iter().map(|s| s.macs).sum::<u64>(),
                "{arch} at {in_shape:?}: MAC totals diverged"
            );
            assert_eq!(
                trace.total_params(),
                stats.iter().map(|s| s.params).sum::<usize>(),
                "{arch} at {in_shape:?}: param totals diverged"
            );
            for (step, stat) in trace.steps.iter().zip(&stats) {
                assert_eq!(step.out_shape, stat.out_shape, "{arch}: step {}", step.index);
                assert_eq!(step.macs, stat.macs, "{arch}: step {}", step.index);
                assert_eq!(step.params, stat.params, "{arch}: step {}", step.index);
            }
        }
    }
}

#[test]
fn zoo_full_model_traces_match_model_stats() {
    for arch in Architecture::ALL {
        let mut rng = Rng::new(12);
        let model = arch.build(10, &mut rng);
        let (features, classifier) = model.infer_shapes().unwrap_or_else(|e| panic!("{arch}: {e}"));
        let stats = model_stats(&model);
        assert_eq!(
            features.total_macs() + classifier.total_macs(),
            stats.total_macs,
            "{arch}: whole-model MACs"
        );
        assert_eq!(
            features.total_params() + classifier.total_params(),
            stats.total_params,
            "{arch}: whole-model params"
        );
        // The classifier ends in the class distribution.
        assert_eq!(classifier.output(), &[model.num_classes], "{arch}");
        // Cut-point accounting matches the paper's per-cut counters.
        for &cut in arch.paper_cuts() {
            assert_eq!(features.macs_to(cut), stats.feature_macs_to(cut), "{arch} cut {cut}");
            assert_eq!(features.params_to(cut), stats.feature_params_to(cut), "{arch} cut {cut}");
            assert_eq!(
                features.shape_at(cut).iter().product::<usize>(),
                stats.feature_len_at(cut),
                "{arch} cut {cut}: flattened feature width"
            );
        }
    }
}

#[test]
fn wrong_rank_is_rejected() {
    let mut rng = Rng::new(1);
    let conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
    let seq = Sequential::new().with(conv);
    let err = seq.infer_shapes(&[27]).unwrap_err();
    assert!(matches!(err.root_cause(), ShapeError::WrongRank { expected: 3, .. }), "got {err:?}");
}

#[test]
fn channel_mismatch_is_rejected() {
    let mut rng = Rng::new(2);
    let seq = Sequential::new().with(Conv2d::new(3, 4, 3, 1, 1, &mut rng));
    let err = seq.infer_shapes(&[5, 8, 8]).unwrap_err();
    assert!(
        matches!(err.root_cause(), ShapeError::ChannelMismatch { expected: 3, actual: 5, .. }),
        "got {err:?}"
    );
}

#[test]
fn feature_mismatch_is_rejected() {
    let mut rng = Rng::new(3);
    let seq = Sequential::new().with(Flatten::new()).with(Linear::new(64, 10, &mut rng));
    let err = seq.infer_shapes(&[4, 5, 5]).unwrap_err();
    assert!(
        matches!(err.root_cause(), ShapeError::FeatureMismatch { expected: 64, actual: 100, .. }),
        "got {err:?}"
    );
}

#[test]
fn window_too_large_is_rejected() {
    let seq = Sequential::new().with(MaxPool2d::new(5));
    let err = seq.infer_shapes(&[4, 3, 3]).unwrap_err();
    assert!(
        matches!(err.root_cause(), ShapeError::WindowTooLarge { window: 5, input: (3, 3), .. }),
        "got {err:?}"
    );
}

#[test]
fn non_shape_preserving_residual_is_rejected() {
    let mut rng = Rng::new(4);
    // The body widens 4→8 channels, so the skip connection cannot add.
    let body = Sequential::new().with(Conv2d::new(4, 8, 3, 1, 1, &mut rng));
    let seq = Sequential::new().with(Residual::new(body));
    let err = seq.infer_shapes(&[4, 8, 8]).unwrap_err();
    assert!(matches!(err.root_cause(), ShapeError::NotShapePreserving { .. }), "got {err:?}");
}

#[test]
fn in_layer_context_names_the_failing_index() {
    let mut rng = Rng::new(5);
    let seq = Sequential::new()
        .with(Conv2d::new(3, 4, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(Conv2d::new(9, 4, 3, 1, 1, &mut rng)); // wrong in-channels
    let err = seq.infer_shapes(&[3, 8, 8]).unwrap_err();
    assert_eq!(err.layer_index(), Some(2), "got {err:?}");
    assert!(
        matches!(err.root_cause(), ShapeError::ChannelMismatch { expected: 9, actual: 4, .. }),
        "got {err:?}"
    );
    let text = err.to_string();
    assert!(text.contains("layer 2"), "{text}");
}
