//! Cross-crate smoke test: the CNN analogs must genuinely learn the
//! synthetic datasets, since they serve as NSHD's pretrained teachers.

use nshd_data::{normalize_pair, SynthSpec};
use nshd_nn::{evaluate, fit, Adam, Architecture, TrainConfig};
use nshd_tensor::Rng;

#[test]
fn vgg_analog_learns_synth10_above_chance() {
    let (mut train, mut test) = SynthSpec::synth10(11).with_sizes(500, 100).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(1);
    let mut model = Architecture::Vgg16.build(10, &mut rng);
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut model,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 10, batch_size: 32, seed: 2, ..TrainConfig::default() },
    );
    let acc = evaluate(&mut model, test.images(), test.labels(), 50);
    assert!(acc > 0.5, "VGG16 analog reached only {acc} on Synth10");
}
