//! The single monotonic time source for the workspace.
//!
//! Every instrumented crate takes timestamps through [`now`] instead of
//! calling `std::time::Instant::now()` directly (the workspace lint enforces
//! this outside `nshd-obs`). Routing all timing through one function keeps
//! span math and runtime bookkeeping on the same clock and gives one place
//! to swap in a virtual clock later if deterministic replay ever needs it.

use std::time::Instant;

/// Current instant on the monotonic clock.
#[must_use]
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }
}
