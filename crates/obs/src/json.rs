//! A tiny hand-rolled JSON document builder (the workspace builds offline,
//! so there is deliberately no serde). Objects preserve insertion order,
//! which keeps emitted `BENCH_*.json` files diff-stable.

use std::fmt;

/// A JSON value. Build documents with [`Json::obj`] / [`Json::arr`] and the
/// `From` impls; `Display` renders compact valid JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A floating-point number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// Pre-rendered JSON spliced in verbatim — used by [`Json::fixed`] for
    /// fixed-decimal numbers. The caller must ensure it is valid JSON.
    Raw(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number rendered with exactly `decimals` fractional digits
    /// (non-finite values become `null`).
    #[must_use]
    pub fn fixed(value: f64, decimals: usize) -> Json {
        if value.is_finite() {
            Json::Raw(format!("{value:.decimals$}"))
        } else {
            Json::Null
        }
    }

    /// An object from `(key, value)` pairs, keys kept in the given order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a field to an object (no-op with a debug assertion on other
    /// variants).
    pub fn push_field(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            fields.push((key.to_string(), value));
        } else {
            debug_assert!(false, "push_field on non-object Json");
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Uint(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Uint(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Uint(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Raw(r) => f.write_str(r),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents_in_insertion_order() {
        let doc = Json::obj(vec![
            ("b", Json::from(2u64)),
            ("a", Json::arr([Json::from(1i64), Json::Null, Json::from(true)])),
            ("s", Json::str("hi")),
        ]);
        assert_eq!(doc.to_string(), r#"{"b":2,"a":[1,null,true],"s":"hi"}"#);
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn fixed_and_nonfinite_numbers() {
        assert_eq!(Json::fixed(1.23456, 2).to_string(), "1.23");
        assert_eq!(Json::fixed(f64::NAN, 2).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::from(3usize).to_string(), "3");
    }

    #[test]
    fn push_field_extends_objects() {
        let mut doc = Json::obj(vec![("a", Json::from(1u64))]);
        doc.push_field("b", Json::from(2u64));
        assert_eq!(doc.to_string(), r#"{"a":1,"b":2}"#);
    }
}
