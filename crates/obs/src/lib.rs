//! `nshd-obs`: unified tracing, metrics and profiling for the NSHD pipeline.
//!
//! The crate is `std`-only and dependency-free so every other crate in the
//! workspace (down to `nshd-tensor`) can depend on it. It provides:
//!
//! - **Spans** ([`span`], [`SpanGuard`]): RAII-timed regions with thread-local
//!   nesting. Each completed span is aggregated under its full path (e.g.
//!   `request/extract/l0.conv2d`), so memory stays bounded no matter how many
//!   spans run. Spans can carry FLOP and byte counts, which the report turns
//!   into achieved GFLOP/s per stage.
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]): a typed registry of
//!   monotonic counters, last-value gauges and fixed-bucket histograms with
//!   monotone, order-independent p50/p95/p99.
//! - **Serving accumulator** ([`ServingAccumulator`], [`ServingMetrics`]):
//!   request/batch bookkeeping for the inference runtime (queue wait vs.
//!   execute time, batch-size histogram, throughput).
//! - **Reports** ([`Report`]): a hierarchical text "flame" rendering and a
//!   stable JSON schema (`nshd-obs/v1`) for `BENCH_*.json` files.
//! - **Clock** ([`clock::now`]): the single monotonic time source; the
//!   workspace lint forbids direct `Instant::now()` elsewhere.
//!
//! # Zero cost when disabled
//!
//! All instrumentation goes through the free functions in this module, which
//! check one relaxed atomic load before touching anything else. With no
//! recorder installed ([`enabled`] is `false`), [`span`] returns an inert
//! guard and the metric handles are detached — hot kernels pay a branch.
//!
//! ```
//! let recorder = nshd_obs::Recorder::new();
//! let previous = nshd_obs::install(recorder.clone());
//! {
//!     let mut sp = nshd_obs::span("matmul");
//!     sp.add_flops(1_000_000);
//! }
//! nshd_obs::install(previous);
//! let report = recorder.report();
//! assert_eq!(report.find("matmul").map(|n| n.stats.count), Some(1));
//! ```

#![warn(missing_docs)]

pub mod clock;
mod json;
mod metrics;
mod report;
mod serving;
mod span;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use report::{Report, SpanNode};
pub use serving::{LatencySummary, ServingAccumulator, ServingMetrics};
pub use span::{ContextGuard, Recorder, SpanGuard, SpanStats};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fast-path flag mirroring whether the installed global recorder is enabled.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed global recorder (disabled by default).
static GLOBAL: Mutex<Recorder> = Mutex::new(Recorder::disabled());

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Observability state stays usable even after a poisoned panic elsewhere.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs `recorder` as the process-wide recorder and returns the previous
/// one (so callers can restore it, e.g. in tests).
pub fn install(recorder: Recorder) -> Recorder {
    let mut slot = lock(&GLOBAL);
    GLOBAL_ENABLED.store(recorder.is_enabled(), Ordering::SeqCst);
    std::mem::replace(&mut *slot, recorder)
}

/// Removes any installed recorder (instrumentation becomes free again) and
/// returns it.
pub fn uninstall() -> Recorder {
    install(Recorder::disabled())
}

/// Whether a live recorder is installed. One relaxed atomic load — cheap
/// enough to call in hot loops to skip label formatting entirely.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Returns a clone of the installed global recorder (disabled if none).
pub fn global() -> Recorder {
    lock(&GLOBAL).clone()
}

/// Opens a span named `name` on the global recorder, nested under the
/// innermost span already open on this thread. Inert when [`enabled`] is
/// `false`.
#[must_use = "bind the guard (`let _sp = ...`) or the span closes immediately"]
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        global().span(name)
    } else {
        SpanGuard::inert()
    }
}

/// Re-roots this thread's span stack at `path` until the guard drops, so
/// spans opened on a worker thread nest under a span captured on another
/// thread with [`current_path`]. Records nothing by itself.
#[must_use = "bind the guard (`let _ctx = ...`) or the context ends immediately"]
#[inline]
pub fn enter_context(path: &str) -> ContextGuard {
    if enabled() {
        span::enter_context(path)
    } else {
        ContextGuard::inert()
    }
}

/// Full path of the innermost span open on this thread, or `None` when no
/// span is open (or no recorder is installed).
pub fn current_path() -> Option<String> {
    if enabled() {
        span::current_path()
    } else {
        None
    }
}

/// Monotonic counter `name` on the global recorder (detached when disabled).
pub fn counter(name: &str) -> Counter {
    if enabled() {
        global().counter(name)
    } else {
        Counter::default()
    }
}

/// Last-value gauge `name` on the global recorder (detached when disabled).
pub fn gauge(name: &str) -> Gauge {
    if enabled() {
        global().gauge(name)
    } else {
        Gauge::default()
    }
}

/// Histogram `name` on the global recorder, with default exponential
/// microsecond-scale buckets (detached when disabled).
pub fn histogram(name: &str) -> Histogram {
    if enabled() {
        global().histogram(name)
    } else {
        Histogram::latency_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_handles_are_inert() {
        // Unit tests share the process; don't install anything here, just
        // exercise the disabled path of a fresh local recorder.
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        {
            let mut sp = r.span("x");
            sp.add_flops(10);
            sp.add_bytes(10);
        }
        assert!(r.span_stats().is_empty());
        let c = Counter::default();
        c.inc();
        assert_eq!(c.value(), 1); // detached but still functional locally
    }
}
