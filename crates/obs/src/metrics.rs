//! Typed metrics: counters, gauges and fixed-bucket histograms.
//!
//! Handles are cheap `Arc` clones; registering the same name twice returns
//! the same underlying metric. Histogram quantiles are computed from bucket
//! counts (never by sorting raw samples), which makes them monotone in `q`
//! and independent of observation order by construction.

use crate::json::Json;
use crate::lock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (stored as `f64` bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
struct HistCore {
    /// Strictly increasing finite upper bucket edges; a value `v` lands in
    /// the first bucket whose edge is `>= v`, or in the overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last entry is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A histogram over fixed bucket bounds chosen at construction time.
///
/// Quantiles come from the bucket counts: the reported `quantile(q)` is the
/// upper edge of the bucket containing the `ceil(q * n)`-th smallest sample,
/// clamped to the observed `[min, max]` range. That makes p50 ≤ p95 ≤ p99
/// hold unconditionally and the result independent of observation order,
/// at the cost of bucket-width resolution.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Mutex<HistCore>>,
}

impl Histogram {
    /// Builds a histogram with explicit upper bucket edges. Edges must be
    /// finite and strictly increasing; invalid input falls back to a single
    /// catch-all bucket rather than panicking.
    #[must_use]
    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        let ok = !bounds.is_empty()
            && bounds.iter().all(|b| b.is_finite())
            && bounds.windows(2).all(|w| w[0] < w[1]);
        let bounds = if ok { bounds } else { vec![f64::MAX / 2.0] };
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            inner: Arc::new(Mutex::new(HistCore {
                bounds,
                counts,
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
            })),
        }
    }

    /// Exponential bucket edges `first, first*factor, first*factor², ...`.
    #[must_use]
    pub fn exponential(first: f64, factor: f64, buckets: usize) -> Histogram {
        let mut bounds = Vec::with_capacity(buckets);
        let mut edge = first.max(f64::MIN_POSITIVE);
        let factor = if factor > 1.0 { factor } else { 2.0 };
        for _ in 0..buckets {
            if !edge.is_finite() {
                break;
            }
            bounds.push(edge);
            edge *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// Default buckets for microsecond-scale latencies: 1 µs to ~3 minutes
    /// with ~50% resolution steps.
    #[must_use]
    pub fn latency_us() -> Histogram {
        Histogram::exponential(1.0, 1.5, 48)
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut core = lock(&self.inner);
        let idx = core.bounds.partition_point(|b| *b < value);
        core.counts[idx] += 1;
        if core.count == 0 {
            core.min = value;
            core.max = value;
        } else {
            core.min = core.min.min(value);
            core.max = core.max.max(value);
        }
        core.count += 1;
        core.sum += value;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        lock(&self.inner).count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        lock(&self.inner).sum
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let core = lock(&self.inner);
        if core.count == 0 {
            0.0
        } else {
            core.sum / core.count as f64
        }
    }

    /// Smallest observation (0.0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        lock(&self.inner).min
    }

    /// Largest observation (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        lock(&self.inner).max
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`); 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let core = lock(&self.inner);
        Self::quantile_of(&core, q)
    }

    fn quantile_of(core: &HistCore, q: f64) -> f64 {
        if core.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * core.count as f64).ceil() as u64).clamp(1, core.count);
        let mut cumulative = 0u64;
        for (i, &c) in core.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let edge = core.bounds.get(i).copied().unwrap_or(core.max);
                return edge.clamp(core.min, core.max);
            }
        }
        core.max
    }

    /// Point-in-time snapshot (quantiles, non-empty buckets, overflow).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = lock(&self.inner);
        let buckets = core
            .bounds
            .iter()
            .zip(core.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&edge, &c)| (edge, c))
            .collect();
        HistogramSnapshot {
            count: core.count,
            sum: core.sum,
            mean: if core.count == 0 { 0.0 } else { core.sum / core.count as f64 },
            min: core.min,
            max: core.max,
            p50: Self::quantile_of(&core, 0.50),
            p95: Self::quantile_of(&core, 0.95),
            p99: Self::quantile_of(&core, 0.99),
            buckets,
            overflow: core.counts.last().copied().unwrap_or(0),
        }
    }

    fn reset(&self) {
        let mut core = lock(&self.inner);
        core.counts.iter_mut().for_each(|c| *c = 0);
        core.count = 0;
        core.sum = 0.0;
        core.min = 0.0;
        core.max = 0.0;
    }

    /// Folds every observation of `other` into `self` — the rollup
    /// primitive behind per-replica metric aggregation. Bucket-exact
    /// when both histograms share the same bounds (two
    /// [`Histogram::latency_us`] instances always do); with differing
    /// bounds each of `other`'s buckets is re-observed at its upper
    /// edge, preserving counts at the resolution of `self`'s buckets.
    /// `other`'s core is copied out before `self` is locked, so merging
    /// two histograms into each other concurrently cannot deadlock.
    pub fn merge_from(&self, other: &Histogram) {
        let theirs = lock(&other.inner).clone();
        if theirs.count == 0 {
            return;
        }
        let mut core = lock(&self.inner);
        if core.count == 0 {
            core.min = theirs.min;
            core.max = theirs.max;
        } else {
            core.min = core.min.min(theirs.min);
            core.max = core.max.max(theirs.max);
        }
        core.count += theirs.count;
        core.sum += theirs.sum;
        if core.bounds == theirs.bounds {
            for (mine, theirs) in core.counts.iter_mut().zip(&theirs.counts) {
                *mine += theirs;
            }
        } else {
            // Re-bucket at each foreign bucket's upper edge (overflow
            // lands past the last edge and stays overflow).
            for (i, &c) in theirs.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let value = theirs.bounds.get(i).copied().unwrap_or(f64::MAX);
                let idx = core.bounds.partition_point(|b| *b < value);
                core.counts[idx] += c;
            }
        }
    }
}

/// Frozen view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// 50th percentile (bucket upper edge, clamped to `[min, max]`).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Non-empty finite buckets as `(upper_edge, count)`.
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last bucket edge.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// JSON object with count/mean/min/max/p50/p95/p99 and the non-empty
    /// buckets as `[[upper_edge, count], ...]`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::from(self.count)),
            ("mean", Json::fixed(self.mean, 3)),
            ("min", Json::fixed(self.min, 3)),
            ("max", Json::fixed(self.max, 3)),
            ("p50", Json::fixed(self.p50, 3)),
            ("p95", Json::fixed(self.p95, 3)),
            ("p99", Json::fixed(self.p99, 3)),
            (
                "buckets",
                Json::arr(
                    self.buckets
                        .iter()
                        .map(|&(edge, c)| Json::arr([Json::fixed(edge, 3), Json::from(c)])),
                ),
            ),
            ("overflow", Json::from(self.overflow)),
        ])
    }
}

/// Registry of named metrics behind a [`crate::Recorder`].
#[derive(Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        lock(&self.counters).entry(name.to_string()).or_default().clone()
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        lock(&self.gauges).entry(name.to_string()).or_default().clone()
    }

    pub(crate) fn histogram(&self, name: &str, default: impl FnOnce() -> Histogram) -> Histogram {
        lock(&self.histograms).entry(name.to_string()).or_insert_with(default).clone()
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).iter().map(|(k, c)| (k.clone(), c.value())).collect(),
            gauges: lock(&self.gauges).iter().map(|(k, g)| (k.clone(), g.value())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    pub(crate) fn clear(&self) {
        lock(&self.counters).values().for_each(Counter::reset);
        lock(&self.gauges).values().for_each(Gauge::reset);
        lock(&self.histograms).values().for_each(Histogram::reset);
    }
}

/// Frozen view of every metric in a registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Whether no metric was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let reg = Registry::default();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("hits").value(), 3);
        let g = reg.gauge("acc");
        g.set(0.75);
        assert!((reg.gauge("acc").value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_order_independent() {
        // Satellite: regression for the old sort-per-call percentile math.
        // Feed the same 1000 samples in ascending, descending and
        // interleaved order; snapshots must be identical and monotone.
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let orders: Vec<Vec<f64>> =
            vec![samples.clone(), samples.iter().rev().copied().collect(), {
                // Deterministic shuffle: stride through the list coprime to
                // its length.
                let n = samples.len();
                (0..n).map(|i| samples[(i * 617) % n]).collect()
            }];
        let mut snaps = Vec::new();
        for order in &orders {
            let h = Histogram::latency_us();
            for &v in order {
                h.observe(v);
            }
            snaps.push(h.snapshot());
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[0], snaps[2]);
        let s = &snaps[0];
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{} {} {}", s.p50, s.p95, s.p99);
        assert!(s.p99 <= s.max && s.min <= s.p50);
        // Bucket resolution is ~1.5x, so p50 may overshoot the true median
        // by at most one bucket width.
        assert!(s.p50 >= 500.0 && s.p50 <= 500.0 * 1.5, "p50 = {}", s.p50);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::latency_us();
        assert_eq!(h.quantile(0.5), 0.0); // empty
        h.observe(42.0);
        // A single sample: every quantile is that sample (clamped to max).
        assert_eq!(h.quantile(0.0), 42.0);
        assert_eq!(h.quantile(0.5), 42.0);
        assert_eq!(h.quantile(1.0), 42.0);
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let h = Histogram::with_bounds(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(1e12);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.buckets, vec![(1.0, 1), (10.0, 1)]);
        // Quantiles above the last edge are reported as the observed max.
        assert_eq!(h.quantile(1.0), 1e12);
    }

    #[test]
    fn invalid_bounds_fall_back_to_catch_all() {
        let h = Histogram::with_bounds(vec![3.0, 2.0]);
        h.observe(123.0);
        assert_eq!(h.quantile(0.5), 123.0);
    }

    #[test]
    fn merge_with_equal_bounds_is_bucket_exact() {
        let a = Histogram::latency_us();
        let b = Histogram::latency_us();
        let reference = Histogram::latency_us();
        for v in [1.0, 5.0, 40.0, 900.0] {
            a.observe(v);
            reference.observe(v);
        }
        for v in [2.0, 7.0, 1e7] {
            b.observe(v);
            reference.observe(v);
        }
        a.merge_from(&b);
        let merged = a.snapshot();
        let expect = reference.snapshot();
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.buckets, expect.buckets);
        assert_eq!(merged.overflow, expect.overflow);
        assert_eq!(merged.min, expect.min);
        assert_eq!(merged.max, expect.max);
        assert_eq!(merged.p99, expect.p99);
        // Merging an empty histogram changes nothing.
        a.merge_from(&Histogram::latency_us());
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn merge_with_different_bounds_rebuckets_at_edges() {
        let coarse = Histogram::with_bounds(vec![10.0, 100.0]);
        let fine = Histogram::with_bounds(vec![1.0, 2.0, 50.0]);
        fine.observe(0.5); // fine bucket edge 1.0 → coarse bucket 10.0
        fine.observe(30.0); // fine bucket edge 50.0 → coarse bucket 100.0
        fine.observe(1e6); // fine overflow → coarse overflow
        coarse.merge_from(&fine);
        let s = coarse.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![(10.0, 1), (100.0, 1)]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1e6);
    }
}
