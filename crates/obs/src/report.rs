//! Report building: turns aggregated span paths into a tree and renders it
//! as a hierarchical text "flame" report or a stable JSON document
//! (schema `nshd-obs/v1`).

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node in the span tree (a full path plus its aggregated stats).
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Last path segment (the span's own name).
    pub name: String,
    /// Full `/`-separated path.
    pub path: String,
    /// Stats recorded directly under this path. A node that only appears as
    /// an intermediate path segment has `count == 0`.
    pub stats: SpanStats,
    /// FLOPs summed over this node and its whole subtree.
    pub cum_flops: u64,
    /// Bytes summed over this node and its whole subtree.
    pub cum_bytes: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Achieved GFLOP/s over this node's wall time, counting the whole
    /// subtree's FLOPs (`flops / nanos` is numerically GFLOP/s).
    #[must_use]
    pub fn gflops(&self) -> f64 {
        if self.stats.total_nanos == 0 {
            0.0
        } else {
            self.cum_flops as f64 / self.stats.total_nanos as f64
        }
    }

    fn fill_cumulative(&mut self) -> (u64, u64) {
        let mut flops = self.stats.flops;
        let mut bytes = self.stats.bytes;
        for child in &mut self.children {
            let (f, b) = child.fill_cumulative();
            flops += f;
            bytes += b;
        }
        self.cum_flops = flops;
        self.cum_bytes = bytes;
        (flops, bytes)
    }
}

/// A frozen, hierarchical view of everything a recorder captured.
#[derive(Debug, Clone)]
pub struct Report {
    /// Top-level spans (those whose path has no `/`), sorted by name.
    pub roots: Vec<SpanNode>,
    /// Snapshot of all registered metrics.
    pub metrics: MetricsSnapshot,
}

impl Report {
    /// Builds the tree from path-keyed stats plus a metrics snapshot.
    #[must_use]
    pub fn build(spans: BTreeMap<String, SpanStats>, metrics: MetricsSnapshot) -> Report {
        let mut roots: Vec<SpanNode> = Vec::new();
        for (path, stats) in spans {
            insert(&mut roots, &path, stats);
        }
        for root in &mut roots {
            root.fill_cumulative();
        }
        Report { roots, metrics }
    }

    /// Whether nothing was recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.metrics.is_empty()
    }

    /// Finds a node by full path, e.g. `"request/extract"`.
    #[must_use]
    pub fn find(&self, path: &str) -> Option<&SpanNode> {
        let mut segments = path.split('/');
        let first = segments.next()?;
        let mut node = self.roots.iter().find(|n| n.name == first)?;
        for segment in segments {
            node = node.children.iter().find(|n| n.name == segment)?;
        }
        Some(node)
    }

    /// Renders the hierarchical text "flame" report: one line per span with
    /// call count, total wall time, share of its root's time and achieved
    /// GFLOP/s where FLOPs were recorded.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "span tree (calls, total wall time, % of root, GFLOP/s):");
        for root in &self.roots {
            let root_nanos = root.stats.total_nanos.max(1);
            render_text(&mut out, root, 0, root_nanos);
        }
        if !self.metrics.counters.is_empty() || !self.metrics.gauges.is_empty() {
            let _ = writeln!(out, "metrics:");
            for (name, value) in &self.metrics.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
            for (name, value) in &self.metrics.gauges {
                let _ = writeln!(out, "  {name} = {value:.4}");
            }
            for (name, h) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
                    h.count, h.mean, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        out
    }

    /// Stable JSON document (schema `nshd-obs/v1`): a flat span array in
    /// depth-first order plus the metrics snapshot.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut spans = Vec::new();
        for root in &self.roots {
            flatten_json(&mut spans, root);
        }
        Json::obj(vec![
            ("schema", Json::str("nshd-obs/v1")),
            ("spans", Json::Arr(spans)),
            (
                "metrics",
                Json::obj(vec![
                    (
                        "counters",
                        Json::Obj(
                            self.metrics
                                .counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::from(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "gauges",
                        Json::Obj(
                            self.metrics
                                .gauges
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::fixed(*v, 6)))
                                .collect(),
                        ),
                    ),
                    (
                        "histograms",
                        Json::Obj(
                            self.metrics
                                .histograms
                                .iter()
                                .map(|(k, h)| (k.clone(), h.to_json()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

fn insert(nodes: &mut Vec<SpanNode>, path: &str, stats: SpanStats) {
    let mut current = nodes;
    let mut walked = String::new();
    let mut segments = path.split('/').peekable();
    while let Some(segment) = segments.next() {
        if !walked.is_empty() {
            walked.push('/');
        }
        walked.push_str(segment);
        let position = match current.iter().position(|n| n.name == segment) {
            Some(i) => i,
            None => {
                current.push(SpanNode {
                    name: segment.to_string(),
                    path: walked.clone(),
                    stats: SpanStats::default(),
                    cum_flops: 0,
                    cum_bytes: 0,
                    children: Vec::new(),
                });
                current.len() - 1
            }
        };
        if segments.peek().is_none() {
            current[position].stats = stats;
            return;
        }
        current = &mut current[position].children;
    }
}

fn format_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.2} s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2} ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1} us", n / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn render_text(out: &mut String, node: &SpanNode, depth: usize, root_nanos: u64) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let percent = 100.0 * node.stats.total_nanos as f64 / root_nanos as f64;
    let _ = write!(
        out,
        "{label:<38} {:>8} calls {:>12} {percent:>6.1}%",
        node.stats.count,
        format_nanos(node.stats.total_nanos),
    );
    if node.cum_flops > 0 {
        let _ = write!(out, "  {:>8.2} GFLOP/s", node.gflops());
    }
    out.push('\n');
    for child in &node.children {
        render_text(out, child, depth + 1, root_nanos);
    }
}

fn flatten_json(out: &mut Vec<Json>, node: &SpanNode) {
    let mean_us = if node.stats.count == 0 {
        0.0
    } else {
        node.stats.total_nanos as f64 / 1e3 / node.stats.count as f64
    };
    out.push(Json::obj(vec![
        ("path", Json::str(node.path.clone())),
        ("name", Json::str(node.name.clone())),
        ("count", Json::from(node.stats.count)),
        ("total_us", Json::fixed(node.stats.total_nanos as f64 / 1e3, 3)),
        ("mean_us", Json::fixed(mean_us, 3)),
        ("min_us", Json::fixed(node.stats.min_nanos as f64 / 1e3, 3)),
        ("max_us", Json::fixed(node.stats.max_nanos as f64 / 1e3, 3)),
        ("flops", Json::from(node.cum_flops)),
        ("self_flops", Json::from(node.stats.flops)),
        ("bytes", Json::from(node.cum_bytes)),
        ("self_bytes", Json::from(node.stats.bytes)),
        ("gflops", Json::fixed(node.gflops(), 4)),
    ]));
    for child in &node.children {
        flatten_json(out, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(count: u64, nanos: u64, flops: u64) -> SpanStats {
        SpanStats {
            count,
            total_nanos: nanos,
            min_nanos: nanos / count.max(1),
            max_nanos: nanos / count.max(1),
            flops,
            bytes: 0,
        }
    }

    fn sample_report() -> Report {
        let mut spans = BTreeMap::new();
        spans.insert("request".to_string(), stats(4, 4_000_000, 0));
        spans.insert("request/extract".to_string(), stats(4, 3_000_000, 0));
        spans.insert("request/extract/matmul".to_string(), stats(8, 2_000_000, 2_000_000));
        spans.insert("request/score".to_string(), stats(4, 500_000, 100_000));
        Report::build(spans, MetricsSnapshot::default())
    }

    #[test]
    fn builds_tree_with_cumulative_flops() {
        let report = sample_report();
        assert_eq!(report.roots.len(), 1);
        let request = report.find("request").unwrap();
        assert_eq!(request.children.len(), 2);
        assert_eq!(request.cum_flops, 2_100_000);
        let extract = report.find("request/extract").unwrap();
        assert_eq!(extract.cum_flops, 2_000_000);
        // flops/nanos is GFLOP/s: 2e6 flops over 3e6 ns = 0.667 GFLOP/s.
        assert!((extract.gflops() - 2.0 / 3.0).abs() < 1e-9);
        assert!(report.find("request/missing").is_none());
        assert!(report.find("request/extract/matmul").is_some());
    }

    #[test]
    fn text_report_nests_children_under_parents() {
        let report = sample_report();
        let text = report.text();
        let lines: Vec<&str> = text.lines().collect();
        let request = lines.iter().position(|l| l.starts_with("request")).unwrap();
        let extract = lines.iter().position(|l| l.starts_with("  extract")).unwrap();
        let matmul = lines.iter().position(|l| l.starts_with("    matmul")).unwrap();
        assert!(request < extract && extract < matmul, "{text}");
        assert!(text.contains("GFLOP/s"), "{text}");
    }

    #[test]
    fn json_schema_is_stable() {
        let report = sample_report();
        let doc = report.to_json().to_string();
        assert!(doc.starts_with(r#"{"schema":"nshd-obs/v1","spans":["#), "{doc}");
        assert!(doc.contains(r#""path":"request/extract/matmul""#), "{doc}");
        assert!(doc.contains(r#""gflops":"#), "{doc}");
        assert!(doc.contains(r#""metrics":{"counters":{}"#), "{doc}");
    }

    #[test]
    fn empty_report() {
        let report = Report::build(BTreeMap::new(), MetricsSnapshot::default());
        assert!(report.is_empty());
        assert!(report.find("x").is_none());
    }
}
