//! Serving-side bookkeeping: per-request latency, queue-wait and execute
//! histograms plus batch-size accounting for the inference runtime.
//!
//! This subsumes the metrics type that used to live inside `nshd-runtime`.
//! Unlike its predecessor, quantiles come from fixed-bucket [`Histogram`]s
//! instead of sorting every raw sample on each snapshot call, so p50 ≤ p95
//! ≤ p99 holds unconditionally and snapshots are O(buckets).

use crate::json::Json;
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulates serving statistics; the runtime keeps one behind a mutex and
/// feeds it from `submit` / batch-completion events. The replicated serving
/// tier additionally counts shed (admission-rejected) requests and retry
/// attempts, and rolls several per-replica accumulators into one cluster
/// view via [`ServingAccumulator::merge_from`].
#[derive(Debug)]
pub struct ServingAccumulator {
    latency: Histogram,
    queue_wait: Histogram,
    execute: Histogram,
    batch_sizes: BTreeMap<usize, u64>,
    requests: u64,
    batches: u64,
    shed: u64,
    retries: u64,
    first_submit: Option<Instant>,
    last_complete: Option<Instant>,
}

impl Default for ServingAccumulator {
    fn default() -> Self {
        ServingAccumulator::new()
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

impl ServingAccumulator {
    /// An empty accumulator with microsecond-scale latency buckets.
    #[must_use]
    pub fn new() -> ServingAccumulator {
        ServingAccumulator {
            latency: Histogram::latency_us(),
            queue_wait: Histogram::latency_us(),
            execute: Histogram::latency_us(),
            batch_sizes: BTreeMap::new(),
            requests: 0,
            batches: 0,
            shed: 0,
            retries: 0,
            first_submit: None,
            last_complete: None,
        }
    }

    /// Records a request submission at `now` (start of the throughput
    /// window).
    pub fn note_submit(&mut self, now: Instant) {
        if self.first_submit.is_none() {
            self.first_submit = Some(now);
        }
    }

    /// Records one completed batch: its size, per-request `(queue_wait,
    /// total_latency)` durations, the batch's execute duration and the
    /// completion instant.
    pub fn note_batch(
        &mut self,
        size: usize,
        request_times: impl IntoIterator<Item = (Duration, Duration)>,
        execute: Duration,
        completed: Instant,
    ) {
        let mut n = 0u64;
        for (wait, latency) in request_times {
            self.queue_wait.observe(us(wait));
            self.latency.observe(us(latency));
            n += 1;
        }
        self.requests += n;
        self.batches += 1;
        *self.batch_sizes.entry(size).or_insert(0) += 1;
        self.execute.observe(us(execute));
        self.last_complete = Some(completed);
    }

    /// Records one request shed by admission control (it never reached a
    /// batcher queue and contributes to no latency histogram).
    pub fn note_shed(&mut self) {
        self.shed += 1;
    }

    /// Records one retry attempt — a request re-dispatched to another
    /// replica after a failure or timeout.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Folds `other`'s complete history into `self`: histograms merge
    /// bucket-exactly (see [`Histogram::merge_from`]), counters add, and
    /// the throughput window widens to span both accumulators. This is
    /// how per-replica accumulators roll up into one cluster view.
    pub fn merge_from(&mut self, other: &ServingAccumulator) {
        self.latency.merge_from(&other.latency);
        self.queue_wait.merge_from(&other.queue_wait);
        self.execute.merge_from(&other.execute);
        for (&size, &count) in &other.batch_sizes {
            *self.batch_sizes.entry(size).or_insert(0) += count;
        }
        self.requests += other.requests;
        self.batches += other.batches;
        self.shed += other.shed;
        self.retries += other.retries;
        self.first_submit = match (self.first_submit, other.first_submit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_complete = match (self.last_complete, other.last_complete) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Handle to the per-request latency histogram (microseconds).
    #[must_use]
    pub fn latency_histogram(&self) -> Histogram {
        self.latency.clone()
    }

    /// Handle to the queue-wait histogram (microseconds).
    #[must_use]
    pub fn queue_wait_histogram(&self) -> Histogram {
        self.queue_wait.clone()
    }

    /// Handle to the batch-execute histogram (microseconds).
    #[must_use]
    pub fn execute_histogram(&self) -> Histogram {
        self.execute.clone()
    }

    /// Frozen summary of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> ServingMetrics {
        let elapsed = match (self.first_submit, self.last_complete) {
            (Some(a), Some(b)) => b.saturating_duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let lat = self.latency.snapshot();
        ServingMetrics {
            requests: self.requests,
            batches: self.batches,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.requests as f64 / self.batches as f64
            },
            batch_histogram: self.batch_sizes.iter().map(|(&s, &c)| (s, c)).collect(),
            p50_us: lat.p50,
            p95_us: lat.p95,
            p99_us: lat.p99,
            requests_per_sec: if elapsed > 0.0 { self.requests as f64 / elapsed } else { 0.0 },
            shed: self.shed,
            retries: self.retries,
            queue_wait: LatencySummary::from(&self.queue_wait),
            execute: LatencySummary::from(&self.execute),
        }
    }
}

/// Quantile summary of one duration histogram, in microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySummary {
    /// 50th percentile.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl From<&Histogram> for LatencySummary {
    fn from(h: &Histogram) -> LatencySummary {
        let s = h.snapshot();
        LatencySummary {
            p50_us: s.p50,
            p95_us: s.p95,
            p99_us: s.p99,
            mean_us: s.mean,
            max_us: s.max,
        }
    }
}

impl LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("p50", Json::fixed(self.p50_us, 1)),
            ("p95", Json::fixed(self.p95_us, 1)),
            ("p99", Json::fixed(self.p99_us, 1)),
            ("mean", Json::fixed(self.mean_us, 1)),
            ("max", Json::fixed(self.max_us, 1)),
        ])
    }
}

/// Frozen serving metrics. Field names mirror the old `RuntimeMetrics` (the
/// runtime re-exports this type under that name), with queue-wait and
/// execute-time summaries added.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingMetrics {
    /// Total requests completed.
    pub requests: u64,
    /// Total batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// `(batch_size, count)` pairs, ascending by size.
    pub batch_histogram: Vec<(usize, u64)>,
    /// p50 end-to-end request latency, microseconds.
    pub p50_us: f64,
    /// p95 end-to-end request latency, microseconds.
    pub p95_us: f64,
    /// p99 end-to-end request latency, microseconds.
    pub p99_us: f64,
    /// Completed requests per second over the submit→complete window.
    pub requests_per_sec: f64,
    /// Requests shed by admission control (fail-fast, never queued).
    pub shed: u64,
    /// Retry attempts — requests re-dispatched after a failure/timeout.
    pub retries: u64,
    /// Time requests spent queued before their batch started executing.
    pub queue_wait: LatencySummary,
    /// Per-batch execute (extract + finish) time.
    pub execute: LatencySummary,
}

impl ServingMetrics {
    /// Compact JSON rendering. Keys are stable: the historical
    /// `requests` / `batches` / `mean_batch` / `batch_histogram` /
    /// `latency_us{p50,p95,p99}` / `requests_per_sec` set plus
    /// `queue_wait_us` / `execute_us` summaries and the serving-tier
    /// `shed` / `retries` counters.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("requests", Json::from(self.requests)),
            ("batches", Json::from(self.batches)),
            ("mean_batch", Json::fixed(self.mean_batch, 2)),
            (
                "batch_histogram",
                Json::arr(
                    self.batch_histogram
                        .iter()
                        .map(|&(s, c)| Json::arr([Json::from(s), Json::from(c)])),
                ),
            ),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::fixed(self.p50_us, 1)),
                    ("p95", Json::fixed(self.p95_us, 1)),
                    ("p99", Json::fixed(self.p99_us, 1)),
                ]),
            ),
            ("queue_wait_us", self.queue_wait.to_json()),
            ("execute_us", self.execute.to_json()),
            ("requests_per_sec", Json::fixed(self.requests_per_sec, 1)),
            ("shed", Json::from(self.shed)),
            ("retries", Json::from(self.retries)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock;

    #[test]
    fn accumulates_requests_batches_and_quantiles() {
        let mut acc = ServingAccumulator::new();
        let t0 = clock::now();
        acc.note_submit(t0);
        acc.note_submit(t0); // only the first submit opens the window
        let ms = Duration::from_millis;
        acc.note_batch(3, vec![(ms(1), ms(5)), (ms(2), ms(6)), (ms(2), ms(7))], ms(4), t0 + ms(10));
        acc.note_batch(1, vec![(ms(0), ms(3))], ms(3), t0 + ms(20));
        let m = acc.snapshot();
        assert_eq!(m.requests, 4);
        assert_eq!(m.batches, 2);
        assert!((m.mean_batch - 2.0).abs() < 1e-12);
        assert_eq!(m.batch_histogram, vec![(1, 1), (3, 1)]);
        assert!(m.p50_us <= m.p95_us && m.p95_us <= m.p99_us);
        // 4 requests over a 20 ms window = 200 req/s.
        assert!((m.requests_per_sec - 200.0).abs() < 20.0, "{}", m.requests_per_sec);
        assert!(m.queue_wait.p99_us <= m.p99_us); // waits are part of latency
        assert!(m.execute.max_us > 0.0);
    }

    #[test]
    fn empty_accumulator_snapshots_to_zeroes() {
        let m = ServingAccumulator::new().snapshot();
        assert_eq!(m, ServingMetrics::default());
        assert_eq!(
            m.to_json(),
            "{\"requests\":0,\"batches\":0,\"mean_batch\":0.00,\"batch_histogram\":[],\
             \"latency_us\":{\"p50\":0.0,\"p95\":0.0,\"p99\":0.0},\
             \"queue_wait_us\":{\"p50\":0.0,\"p95\":0.0,\"p99\":0.0,\"mean\":0.0,\"max\":0.0},\
             \"execute_us\":{\"p50\":0.0,\"p95\":0.0,\"p99\":0.0,\"mean\":0.0,\"max\":0.0},\
             \"requests_per_sec\":0.0,\"shed\":0,\"retries\":0}"
        );
    }

    #[test]
    fn json_has_stable_keys() {
        let mut acc = ServingAccumulator::new();
        let t0 = clock::now();
        acc.note_submit(t0);
        acc.note_batch(
            2,
            vec![
                (Duration::from_micros(10), Duration::from_micros(100)),
                (Duration::from_micros(20), Duration::from_micros(150)),
            ],
            Duration::from_micros(90),
            t0 + Duration::from_micros(200),
        );
        let json = acc.snapshot().to_json();
        for key in [
            "\"requests\":2",
            "\"batches\":1",
            "\"mean_batch\":2.00",
            "\"batch_histogram\":[[2,1]]",
            "\"latency_us\":{\"p50\":",
            "\"queue_wait_us\":{\"p50\":",
            "\"execute_us\":{\"p50\":",
            "\"requests_per_sec\":",
            "\"shed\":0",
            "\"retries\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn shed_and_retry_counters_accumulate_and_render() {
        let mut acc = ServingAccumulator::new();
        acc.note_shed();
        acc.note_shed();
        acc.note_retry();
        let m = acc.snapshot();
        assert_eq!(m.shed, 2);
        assert_eq!(m.retries, 1);
        let json = m.to_json();
        assert!(json.contains("\"shed\":2"), "{json}");
        assert!(json.contains("\"retries\":1"), "{json}");
    }

    #[test]
    fn merge_rolls_per_replica_accumulators_into_one_view() {
        let ms = Duration::from_millis;
        let t0 = clock::now();
        let mut a = ServingAccumulator::new();
        a.note_submit(t0);
        a.note_batch(2, vec![(ms(1), ms(4)), (ms(1), ms(5))], ms(3), t0 + ms(10));
        a.note_retry();
        let mut b = ServingAccumulator::new();
        b.note_submit(t0 + ms(5));
        b.note_batch(1, vec![(ms(2), ms(9))], ms(7), t0 + ms(30));
        b.note_shed();

        let mut rollup = ServingAccumulator::new();
        rollup.merge_from(&a);
        rollup.merge_from(&b);
        let m = rollup.snapshot();
        assert_eq!(m.requests, 3);
        assert_eq!(m.batches, 2);
        assert_eq!(m.batch_histogram, vec![(1, 1), (2, 1)]);
        assert_eq!(m.shed, 1);
        assert_eq!(m.retries, 1);
        // The throughput window spans the earliest submit to the latest
        // completion: 3 requests over 30 ms = 100 req/s.
        assert!((m.requests_per_sec - 100.0).abs() < 10.0, "{}", m.requests_per_sec);
        // The merged latency histogram holds all three samples; its max
        // quantile sits at the slowest replica's sample.
        assert!(m.p99_us >= 8_000.0, "p99 {} lost the slow sample", m.p99_us);
        // Merging an empty accumulator is a no-op.
        let before = rollup.snapshot();
        rollup.merge_from(&ServingAccumulator::new());
        assert_eq!(rollup.snapshot(), before);
    }
}
