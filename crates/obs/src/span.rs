//! Span tracing: the [`Recorder`] handle, RAII [`SpanGuard`]s and the
//! thread-local span stack that gives spans their nesting.
//!
//! Completed spans are aggregated per full path (`parent/child/...`) into
//! [`SpanStats`], so a long-running server accumulates a bounded map keyed by
//! the set of distinct paths, not an unbounded list of events.

use crate::lock;
use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::report::Report;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Full paths of the spans (and contexts) open on this thread,
    /// innermost last. Guards restore the stack by truncating to the depth
    /// they saw on entry, so early `?` returns unwind correctly.
    static PATH_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for all completed spans sharing one full path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time across all of them, in nanoseconds.
    pub total_nanos: u64,
    /// Fastest single span, in nanoseconds.
    pub min_nanos: u64,
    /// Slowest single span, in nanoseconds.
    pub max_nanos: u64,
    /// Floating-point operations attributed directly to these spans (not
    /// including instrumented children — the report sums subtrees).
    pub flops: u64,
    /// Bytes touched, attributed directly like `flops`.
    pub bytes: u64,
}

impl SpanStats {
    /// Mean wall time per completed span, in nanoseconds (0 when never
    /// entered).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// Shared state behind an enabled [`Recorder`].
pub(crate) struct RecorderInner {
    spans: Mutex<BTreeMap<String, SpanStats>>,
    registry: Registry,
}

impl RecorderInner {
    fn record_span(&self, path: &str, nanos: u64, flops: u64, bytes: u64) {
        let mut spans = lock(&self.spans);
        let stats = spans.entry(path.to_string()).or_default();
        stats.count += 1;
        stats.total_nanos += nanos;
        stats.min_nanos = if stats.count == 1 { nanos } else { stats.min_nanos.min(nanos) };
        stats.max_nanos = stats.max_nanos.max(nanos);
        stats.flops += flops;
        stats.bytes += bytes;
    }
}

/// Handle to a recording session. Cloning is cheap (an `Arc`); all clones
/// share the same aggregated state. A disabled recorder carries no state and
/// makes every operation a no-op.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Default for Recorder {
    /// Same as [`Recorder::new`]: an enabled, empty recorder.
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an enabled recorder with empty span and metric state.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                spans: Mutex::new(BTreeMap::new()),
                registry: Registry::default(),
            })),
        }
    }

    /// A recorder that records nothing. This is the global default.
    #[must_use]
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name`, nested under the innermost span already
    /// open on this thread. The span closes (and records) when the returned
    /// guard drops.
    #[must_use = "bind the guard (`let _sp = ...`) or the span closes immediately"]
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        let (path, depth) = PATH_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            let depth = stack.len();
            stack.push(path.clone());
            (path, depth)
        });
        SpanGuard {
            active: Some(ActiveSpan {
                inner: inner.clone(),
                path,
                depth,
                start: Instant::now(),
                flops: 0,
                bytes: 0,
            }),
        }
    }

    /// Monotonic counter registered under `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Last-value gauge registered under `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Histogram registered under `name` with the default exponential
    /// microsecond-scale buckets.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, Histogram::latency_us),
            None => Histogram::latency_us(),
        }
    }

    /// Histogram registered under `name`; `bounds` builds it on first use
    /// (later calls reuse the registered instance and ignore `bounds`).
    #[must_use]
    pub fn histogram_with(&self, name: &str, bounds: impl FnOnce() -> Histogram) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, bounds),
            None => bounds(),
        }
    }

    /// Snapshot of the aggregated span statistics, keyed by full path.
    #[must_use]
    pub fn span_stats(&self) -> BTreeMap<String, SpanStats> {
        match &self.inner {
            Some(inner) => lock(&inner.spans).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Snapshot of every registered metric.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Builds a hierarchical [`Report`] from the current span and metric
    /// state (the recorder keeps accumulating afterwards).
    #[must_use]
    pub fn report(&self) -> Report {
        Report::build(self.span_stats(), self.metrics())
    }

    /// Clears all recorded spans and metric values (registered handles stay
    /// valid; counters/gauges/histograms are reset in place).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            lock(&inner.spans).clear();
            inner.registry.clear();
        }
    }
}

struct ActiveSpan {
    inner: Arc<RecorderInner>,
    path: String,
    depth: usize,
    start: Instant,
    flops: u64,
    bytes: u64,
}

/// RAII guard for an open span. Dropping it closes the span: the thread's
/// span stack is truncated back to the depth captured at entry (so a guard
/// dropped by an early `?` return also unwinds any nested spans that leaked
/// past their own scope) and the elapsed time is recorded.
#[must_use = "bind the guard (`let _sp = ...`) or the span closes immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that does nothing (disabled recorder).
    pub(crate) const fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Attributes `flops` floating-point operations to this span. No-op on
    /// an inert guard.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        if let Some(active) = &mut self.active {
            active.flops += flops;
        }
    }

    /// Attributes `bytes` bytes of traffic to this span. No-op on an inert
    /// guard.
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        if let Some(active) = &mut self.active {
            active.bytes += bytes;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let nanos = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        PATH_STACK.with(|stack| stack.borrow_mut().truncate(active.depth));
        active.inner.record_span(&active.path, nanos, active.flops, active.bytes);
    }
}

/// Re-roots this thread's span stack at `path` until the guard drops.
/// Records nothing by itself; see [`crate::enter_context`].
#[must_use = "bind the guard (`let _ctx = ...`) or the context ends immediately"]
pub struct ContextGuard {
    depth: Option<usize>,
}

impl ContextGuard {
    pub(crate) const fn inert() -> ContextGuard {
        ContextGuard { depth: None }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(depth) = self.depth.take() {
            PATH_STACK.with(|stack| stack.borrow_mut().truncate(depth));
        }
    }
}

/// Pushes `path` as the innermost context on this thread's span stack.
pub(crate) fn enter_context(path: &str) -> ContextGuard {
    let depth = PATH_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let depth = stack.len();
        stack.push(path.to_string());
        depth
    });
    ContextGuard { depth: Some(depth) }
}

/// Full path of the innermost open span on this thread, if any.
pub(crate) fn current_path() -> Option<String> {
    PATH_STACK.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_thread_local_path() {
        let r = Recorder::new();
        {
            let _a = r.span("a");
            {
                let _b = r.span("b");
                let _c = r.span("c");
            }
            let _d = r.span("d");
        }
        let stats = r.span_stats();
        let paths: Vec<&str> = stats.keys().map(String::as_str).collect();
        assert_eq!(paths, vec!["a", "a/b", "a/b/c", "a/d"]);
        assert!(stats.values().all(|s| s.count == 1));
    }

    #[test]
    fn repeated_spans_aggregate_under_one_path() {
        let r = Recorder::new();
        for _ in 0..5 {
            let mut sp = r.span("k");
            sp.add_flops(100);
            sp.add_bytes(7);
        }
        let stats = r.span_stats();
        assert_eq!(stats.len(), 1);
        let s = &stats["k"];
        assert_eq!(s.count, 5);
        assert_eq!(s.flops, 500);
        assert_eq!(s.bytes, 35);
        assert!(s.min_nanos <= s.max_nanos);
        assert!(s.total_nanos >= s.max_nanos);
    }

    #[test]
    fn context_guard_reroots_and_unwinds() {
        let r = Recorder::new();
        {
            let _ctx = enter_context("remote/request");
            let _sp = r.span("work");
        }
        assert_eq!(current_path(), None);
        let stats = r.span_stats();
        assert!(stats.contains_key("remote/request/work"), "{:?}", stats.keys());
        // The context itself records nothing.
        assert!(!stats.contains_key("remote/request"));
    }

    #[test]
    fn clear_resets_spans_and_metrics() {
        let r = Recorder::new();
        let c = r.counter("n");
        c.inc();
        {
            let _sp = r.span("s");
        }
        r.clear();
        assert!(r.span_stats().is_empty());
        assert_eq!(c.value(), 0);
    }
}
