//! Span-nesting coverage against the *global* recorder: nested
//! extract→encode→score traces, guard unwinding on early `?` returns,
//! cross-thread context propagation and the disabled recorder.
//!
//! These tests install/uninstall the process-wide recorder, so they
//! serialize on one mutex (Rust runs tests in one process).

use nshd_obs::{self as obs, Recorder};
use std::sync::Mutex;
use std::time::Duration;

static GLOBAL_RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn with_recorder(f: impl FnOnce(&Recorder)) {
    let _serial = GLOBAL_RECORDER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let recorder = Recorder::new();
    let previous = obs::install(recorder.clone());
    f(&recorder);
    obs::install(previous);
}

#[test]
fn nested_pipeline_trace_children_sum_within_parent() {
    with_recorder(|recorder| {
        {
            let _request = obs::span("request");
            for _ in 0..3 {
                let _extract = obs::span("extract");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _encode = obs::span("encode");
                std::thread::sleep(Duration::from_millis(1));
            }
            let _score = obs::span("score");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = recorder.span_stats();
        let paths: Vec<&str> = stats.keys().map(String::as_str).collect();
        assert_eq!(paths, vec!["request", "request/encode", "request/extract", "request/score"]);
        assert_eq!(stats["request/extract"].count, 3);
        let parent = stats["request"].total_nanos;
        let children: u64 = ["request/extract", "request/encode", "request/score"]
            .iter()
            .map(|p| stats[*p].total_nanos)
            .sum();
        assert!(children <= parent, "children {children} ns > parent {parent} ns");
        // The report nests the same spans under the request root.
        let report = recorder.report();
        assert!(report.find("request/extract").is_some());
        let text = report.text();
        assert!(text.lines().any(|l| l.starts_with("request")), "missing root line in:\n{text}");
        assert!(text.lines().any(|l| l.starts_with("  extract")), "extract not nested in:\n{text}");
    });
}

#[test]
fn guards_unwind_on_early_question_mark_return() {
    fn stage(fail: bool) -> Result<(), String> {
        let _outer = obs::span("outer");
        let _inner = obs::span("inner");
        if fail {
            return Err("boom".into());
        }
        Ok(())
    }

    with_recorder(|recorder| {
        fn pipeline(fail: bool) -> Result<(), String> {
            let _root = obs::span("pipeline");
            stage(fail)?;
            Ok(())
        }
        assert!(pipeline(true).is_err());
        // Every guard dropped during unwinding: the thread-local stack must
        // be empty again, or later spans would nest under a dead parent.
        assert_eq!(obs::current_path(), None);
        {
            let _next = obs::span("next");
            assert_eq!(obs::current_path().as_deref(), Some("next"));
        }
        let stats = recorder.span_stats();
        assert!(stats.contains_key("pipeline/outer/inner"), "{:?}", stats.keys());
        assert!(stats.contains_key("next"), "\"next\" nested under a stale parent");
    });
}

#[test]
fn disabled_recorder_records_nothing() {
    let _serial = GLOBAL_RECORDER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let previous = obs::install(Recorder::disabled());
    assert!(!obs::enabled());
    {
        let mut sp = obs::span("ghost");
        sp.add_flops(1);
        assert_eq!(obs::current_path(), None); // inert guards leave no trace
    }
    obs::counter("ghost.count").inc();
    obs::gauge("ghost.gauge").set(1.0);
    obs::histogram("ghost.hist").observe(1.0);
    let recorder = obs::global();
    assert!(recorder.span_stats().is_empty());
    assert!(recorder.metrics().is_empty());
    assert!(recorder.report().is_empty());
    obs::install(previous);
}

#[test]
fn context_propagates_spans_across_threads() {
    with_recorder(|recorder| {
        let request = obs::span("request");
        let ctx = obs::current_path().expect("request span open");
        let handle = std::thread::spawn(move || {
            let _ctx = obs::enter_context(&ctx);
            let _work = obs::span("extract");
            std::thread::sleep(Duration::from_millis(1));
        });
        handle.join().expect("worker thread");
        drop(request);
        assert_eq!(obs::current_path(), None);
        let stats = recorder.span_stats();
        assert!(stats.contains_key("request/extract"), "{:?}", stats.keys());
        // The context itself recorded nothing on the worker.
        assert_eq!(stats["request/extract"].count, 1);
    });
}

#[test]
fn install_returns_previous_recorder() {
    let _serial = GLOBAL_RECORDER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let first = Recorder::new();
    let original = obs::install(first.clone());
    let second = Recorder::new();
    let returned = obs::install(second);
    // The handle we got back shares state with `first`.
    {
        let _sp = returned.span("probe");
    }
    assert_eq!(first.span_stats().len(), 1);
    obs::install(original);
}
