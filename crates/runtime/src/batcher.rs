//! The micro-batching request queue and its collector thread.

use crate::engine::BatchEngine;
use crate::metrics::{MetricsInner, RuntimeMetrics};
use crate::pool::WorkerPool;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-runtime knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads for the data-parallel extract stage. With one
    /// worker the stage runs on the collector thread itself.
    pub workers: usize,
    /// Largest batch the collector will assemble before executing.
    pub max_batch: usize,
    /// How long the collector waits for more requests after the first
    /// of a batch arrives; a shorter wait trades throughput for
    /// latency. Tail batches flush when this deadline expires.
    pub max_wait: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { workers: 1, max_batch: 16, max_wait: Duration::from_millis(2) }
    }
}

/// One queued inference request.
struct Request<E: BatchEngine> {
    input: E::Input,
    enqueued: Instant,
    reply: Sender<E::Output>,
}

/// One data-parallel slice of a batch, dispatched to a worker.
struct Chunk<E: BatchEngine> {
    index: usize,
    inputs: Vec<E::Input>,
    done: Sender<(usize, Vec<E::Partial>)>,
}

/// The completion handle returned by
/// [`InferenceRuntime::submit`]: resolves to the request's output once
/// its batch has executed.
pub struct PredictionHandle<T> {
    rx: Receiver<T>,
}

impl<T> PredictionHandle<T> {
    /// Blocks until the result is ready.
    ///
    /// # Panics
    ///
    /// Panics if the runtime was torn down without answering (an engine
    /// panic) — a drained shutdown always answers first.
    pub fn wait(self) -> T {
        self.rx.recv().expect("runtime dropped the request without replying")
    }

    /// Waits up to `timeout`; `None` if the result isn't ready yet.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A batched, multi-threaded inference server around a [`BatchEngine`].
///
/// Requests submitted from any thread are collected by a dedicated
/// batcher thread into batches of up to `max_batch`, waiting at most
/// `max_wait` after the first request of a batch arrives (tail batches
/// flush on the deadline). Each batch's extract stage is sliced across
/// the worker pool; the finish stage then runs once over the whole
/// batch, and every request's result is delivered through its
/// [`PredictionHandle`] — results always line up with the submitting
/// request, regardless of worker completion order.
///
/// # Examples
///
/// ```no_run
/// use nshd_core::NshdEngine;
/// use nshd_runtime::{InferenceRuntime, RuntimeConfig};
/// use std::sync::Arc;
/// # let engine: Arc<NshdEngine> = unimplemented!();
/// # let images: Vec<nshd_tensor::Tensor> = vec![];
/// let runtime = InferenceRuntime::new(engine, RuntimeConfig::default());
/// let handles: Vec<_> = images.into_iter().map(|img| runtime.submit(img)).collect();
/// let predictions: Vec<usize> = handles.into_iter().map(|h| h.wait()).collect();
/// println!("{}", runtime.shutdown().to_json());
/// ```
pub struct InferenceRuntime<E: BatchEngine> {
    submit_tx: Option<Sender<Request<E>>>,
    collector: Option<JoinHandle<()>>,
    metrics: Arc<Mutex<MetricsInner>>,
}

impl<E: BatchEngine> InferenceRuntime<E> {
    /// Starts the batcher thread and worker pool around a shared engine.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.max_batch == 0`.
    pub fn new(engine: Arc<E>, config: RuntimeConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "need a positive batch bound");
        let metrics = Arc::new(Mutex::new(MetricsInner::default()));
        let (submit_tx, submit_rx) = channel();
        let thread_metrics = metrics.clone();
        let collector = std::thread::Builder::new()
            .name("nshd-batcher".into())
            .spawn(move || collector_loop(engine, config, submit_rx, thread_metrics))
            .expect("failed to spawn batcher thread");
        InferenceRuntime { submit_tx: Some(submit_tx), collector: Some(collector), metrics }
    }

    /// Enqueues one request; the returned handle resolves when its
    /// batch completes.
    ///
    /// # Panics
    ///
    /// Panics if the batcher thread has terminated (engine panic).
    pub fn submit(&self, input: E::Input) -> PredictionHandle<E::Output> {
        let (reply, rx) = channel();
        let now = Instant::now();
        self.metrics.lock().expect("metrics lock").note_submit(now);
        self.submit_tx
            .as_ref()
            .expect("runtime already shut down")
            .send(Request { input, enqueued: now, reply })
            .expect("batcher thread terminated");
        PredictionHandle { rx }
    }

    /// A snapshot of the serving statistics so far.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.metrics.lock().expect("metrics lock").snapshot()
    }

    /// Graceful shutdown: closes the queue, lets the batcher execute
    /// every request already submitted (all handles still resolve),
    /// joins every thread, and returns the final statistics.
    pub fn shutdown(mut self) -> RuntimeMetrics {
        self.teardown();
        let snapshot = self.metrics.lock().expect("metrics lock").snapshot();
        snapshot
    }

    fn teardown(&mut self) {
        // Dropping the sender disconnects the queue; the collector
        // drains buffered requests (mpsc delivers them before
        // reporting disconnection), then exits and joins its workers.
        self.submit_tx.take();
        if let Some(handle) = self.collector.take() {
            let _ = handle.join();
        }
    }
}

impl<E: BatchEngine> Drop for InferenceRuntime<E> {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn collector_loop<E: BatchEngine>(
    engine: Arc<E>,
    config: RuntimeConfig,
    rx: Receiver<Request<E>>,
    metrics: Arc<Mutex<MetricsInner>>,
) {
    // The pool is owned here so its Drop (join) runs when serving ends.
    let pool = if config.workers > 1 {
        let worker_engine = engine.clone();
        Some(WorkerPool::new(config.workers, move |chunk: Chunk<E>| {
            let partials = worker_engine.extract(&chunk.inputs);
            // The collector hanging up mid-batch only happens on panic;
            // nothing useful to do with the error.
            let _ = chunk.done.send((chunk.index, partials));
        }))
    } else {
        None
    };

    loop {
        // Block for the first request of the next batch. `recv` only
        // errs once the queue is disconnected AND empty, so every
        // submitted request is still served before shutdown.
        let first = match rx.recv() {
            Ok(request) => request,
            Err(_) => break,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + config.max_wait;
        while batch.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                // Timeout → flush the tail batch; Disconnected implies
                // the queue is also empty, so flush and let the outer
                // `recv` terminate the loop.
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        run_batch(&*engine, pool.as_ref(), batch, &metrics);
    }
}

fn run_batch<E: BatchEngine>(
    engine: &E,
    pool: Option<&WorkerPool<Chunk<E>>>,
    batch: Vec<Request<E>>,
    metrics: &Mutex<MetricsInner>,
) {
    let n = batch.len();
    let mut inputs = Vec::with_capacity(n);
    let mut enqueued = Vec::with_capacity(n);
    let mut replies = Vec::with_capacity(n);
    for request in batch {
        inputs.push(request.input);
        enqueued.push(request.enqueued);
        replies.push(request.reply);
    }

    let partials = match pool {
        Some(pool) if n > 1 => {
            // Contiguous chunks, one per worker, front-loading the
            // remainder; reassembled by index so partials stay in
            // submission order no matter which worker finishes first.
            let chunks = pool.len().min(n);
            let base = n / chunks;
            let extra = n % chunks;
            let (done_tx, done_rx) = channel();
            let mut iter = inputs.into_iter();
            for index in 0..chunks {
                let size = base + usize::from(index < extra);
                let chunk_inputs: Vec<E::Input> = iter.by_ref().take(size).collect();
                pool.send(index, Chunk { index, inputs: chunk_inputs, done: done_tx.clone() });
            }
            drop(done_tx);
            let mut parts: Vec<Option<Vec<E::Partial>>> = (0..chunks).map(|_| None).collect();
            for _ in 0..chunks {
                let (index, chunk_partials) = done_rx.recv().expect("worker thread died mid-batch");
                parts[index] = Some(chunk_partials);
            }
            parts.into_iter().flat_map(|p| p.expect("every chunk index reports once")).collect()
        }
        _ => engine.extract(&inputs),
    };

    let outputs = engine.finish(partials);
    assert_eq!(outputs.len(), n, "engine must return one output per request");
    let done = Instant::now();
    metrics
        .lock()
        .expect("metrics lock")
        .note_batch(n, enqueued.iter().map(|&t| done.duration_since(t)));
    for (reply, output) in replies.into_iter().zip(outputs) {
        // The caller may have dropped its handle; that's its business.
        let _ = reply.send(output);
    }
}
