//! The micro-batching request queue and its collector thread.

use crate::engine::BatchEngine;
use crate::pool::WorkerPool;
use nshd_core::PipelineError;
use nshd_obs::{clock, ServingAccumulator, ServingMetrics};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-runtime knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads for the data-parallel extract stage. With one
    /// worker the stage runs on the collector thread itself. When the
    /// tensor kernels are themselves parallel (`nshd_tensor::par`
    /// reports more than one thread), the inner pool is skipped — the
    /// kernels already use the cores, and stacking a request-level pool
    /// on top would oversubscribe them.
    pub workers: usize,
    /// Largest batch the collector will assemble before executing.
    pub max_batch: usize,
    /// How long the collector waits for more requests after the first
    /// of a batch arrives; a shorter wait trades throughput for
    /// latency. Tail batches flush when this deadline expires.
    pub max_wait: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { workers: 1, max_batch: 16, max_wait: Duration::from_millis(2) }
    }
}

impl RuntimeConfig {
    /// Checks that the configuration can serve at all.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `workers` or `max_batch`
    /// is zero.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.workers == 0 {
            return Err(PipelineError::Runtime {
                stage: "config",
                detail: "need at least one worker".into(),
            });
        }
        if self.max_batch == 0 {
            return Err(PipelineError::Runtime {
                stage: "config",
                detail: "need a positive batch bound".into(),
            });
        }
        Ok(())
    }
}

/// Locks a metrics mutex, recovering the data from a poisoned lock (the
/// accounting state stays usable even if a panic ever crossed it).
pub(crate) fn lock_metrics(
    metrics: &Mutex<ServingAccumulator>,
) -> MutexGuard<'_, ServingAccumulator> {
    metrics.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One queued inference request.
struct Request<E: BatchEngine> {
    input: E::Input,
    enqueued: Instant,
    reply: Sender<Result<E::Output, PipelineError>>,
}

/// What a worker reports back for one chunk: its index plus the
/// extract-stage result.
type ChunkResult<E> = (usize, Result<Vec<<E as BatchEngine>::Partial>, PipelineError>);

/// One data-parallel slice of a batch, dispatched to a worker. `ctx`
/// carries the batcher thread's span path so the worker's extract spans
/// nest under the batch's `request` span in traces; `snapshot` is the
/// batch's pinned engine state, shared by every chunk of the batch so a
/// concurrent hot-swap cannot tear a batch across two snapshots.
struct Chunk<E: BatchEngine> {
    index: usize,
    inputs: Vec<E::Input>,
    snapshot: Arc<E::Snapshot>,
    ctx: Option<String>,
    done: Sender<ChunkResult<E>>,
}

/// The completion handle returned by
/// [`InferenceRuntime::submit`]: resolves to the request's output once
/// its batch has executed.
pub struct PredictionHandle<T> {
    rx: Receiver<Result<T, PipelineError>>,
}

/// Outcome of a bounded wait on a [`PredictionHandle`].
///
/// A timed-out wait and a dead runtime are different situations with
/// different correct reactions — waiting longer can still succeed after
/// [`Timeout`](WaitOutcome::Timeout), while after
/// [`WorkerGone`](WaitOutcome::WorkerGone) the result will never arrive
/// and the caller should retry on another replica — so
/// [`PredictionHandle::wait_timeout`] reports them as distinct variants
/// instead of collapsing both to `None`.
#[derive(Debug)]
#[must_use = "a timed-out or abandoned request must be handled, not dropped"]
pub enum WaitOutcome<T> {
    /// The batch executed; this is the request's result (which may
    /// itself be the batch's typed failure).
    Ready(Result<T, PipelineError>),
    /// The timeout elapsed with the request still in flight. Waiting
    /// again on the same handle can still observe the result.
    Timeout,
    /// The runtime dropped the request without replying — the collector
    /// died or the handle outlived a torn-down runtime. The result will
    /// never arrive; retry elsewhere.
    WorkerGone(PipelineError),
}

impl<T> WaitOutcome<T> {
    /// The result, if the wait produced one.
    pub fn ready(self) -> Option<Result<T, PipelineError>> {
        match self {
            WaitOutcome::Ready(result) => Some(result),
            WaitOutcome::Timeout | WaitOutcome::WorkerGone(_) => None,
        }
    }
}

impl<T> PredictionHandle<T> {
    /// Blocks until the result is ready.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`PipelineError`] when the request's batch
    /// failed, or [`PipelineError::Runtime`] when the runtime was torn
    /// down without answering (a drained shutdown always answers
    /// first).
    #[must_use = "the prediction may have failed; check the result"]
    pub fn wait(self) -> Result<T, PipelineError> {
        self.rx.recv().unwrap_or_else(|_| Err(worker_gone_error()))
    }

    /// Waits up to `timeout`, distinguishing a still-pending result
    /// ([`WaitOutcome::Timeout`]) from a runtime that abandoned the
    /// request ([`WaitOutcome::WorkerGone`]).
    pub fn wait_timeout(&self, timeout: Duration) -> WaitOutcome<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => WaitOutcome::Ready(result),
            Err(RecvTimeoutError::Timeout) => WaitOutcome::Timeout,
            Err(RecvTimeoutError::Disconnected) => WaitOutcome::WorkerGone(worker_gone_error()),
        }
    }
}

/// The typed report for a runtime that dropped a request without
/// replying (shared by `wait` and `wait_timeout`).
fn worker_gone_error() -> PipelineError {
    PipelineError::Runtime {
        stage: "wait",
        detail: "runtime dropped the request without replying".into(),
    }
}

/// A batched, multi-threaded inference server around a [`BatchEngine`].
///
/// Requests submitted from any thread are collected by a dedicated
/// batcher thread into batches of up to `max_batch`, waiting at most
/// `max_wait` after the first request of a batch arrives (tail batches
/// flush on the deadline). Each batch's extract stage is sliced across
/// the worker pool; the finish stage then runs once over the whole
/// batch, and every request's result is delivered through its
/// [`PredictionHandle`] — results always line up with the submitting
/// request, regardless of worker completion order.
///
/// Construction statically verifies the engine
/// ([`BatchEngine::verify`]) and the configuration before any thread is
/// spawned; a batch the engine rejects fails only that batch's handles,
/// never a thread.
///
/// # Examples
///
/// ```no_run
/// use nshd_core::NshdEngine;
/// use nshd_runtime::{InferenceRuntime, RuntimeConfig};
/// use std::sync::Arc;
/// # let engine: Arc<NshdEngine> = unimplemented!();
/// # let images: Vec<nshd_tensor::Tensor> = vec![];
/// let runtime = InferenceRuntime::new(engine, RuntimeConfig::default()).unwrap();
/// let handles: Vec<_> = images.into_iter().map(|img| runtime.submit(img).unwrap()).collect();
/// let predictions: Vec<usize> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
/// println!("{}", runtime.shutdown().to_json());
/// ```
pub struct InferenceRuntime<E: BatchEngine> {
    submit_tx: Option<Sender<Request<E>>>,
    collector: Option<JoinHandle<()>>,
    metrics: Arc<Mutex<ServingAccumulator>>,
}

impl<E: BatchEngine> InferenceRuntime<E> {
    /// Starts the batcher thread and worker pool around a shared
    /// engine, after validating the configuration and statically
    /// verifying the engine ([`BatchEngine::verify`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] for an unusable configuration
    /// or an unspawnable batcher thread, and the engine's own
    /// [`PipelineError`] when verification rejects it — in every case
    /// before any thread is spawned.
    #[must_use = "the runtime only serves when construction succeeds"]
    pub fn new(engine: Arc<E>, config: RuntimeConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        engine.verify()?;
        // Probed on the constructing thread so a `par::with_threads`
        // override active there (tests, benchmarks) is honored.
        let kernel_parallel = nshd_tensor::par::threads() > 1;
        let metrics = Arc::new(Mutex::new(ServingAccumulator::new()));
        let (submit_tx, submit_rx) = channel();
        let thread_metrics = metrics.clone();
        let collector = std::thread::Builder::new()
            .name("nshd-batcher".into())
            .spawn(move || {
                collector_loop(engine, config, kernel_parallel, submit_rx, thread_metrics)
            })
            .map_err(|e| PipelineError::Runtime {
                stage: "spawn",
                detail: format!("failed to spawn batcher thread: {e}"),
            })?;
        Ok(InferenceRuntime { submit_tx: Some(submit_tx), collector: Some(collector), metrics })
    }

    /// Enqueues one request; the returned handle resolves when its
    /// batch completes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when the batcher thread has
    /// terminated (it panicked, or the runtime is shutting down).
    #[must_use = "dropping the handle discards the prediction"]
    pub fn submit(&self, input: E::Input) -> Result<PredictionHandle<E::Output>, PipelineError> {
        let (reply, rx) = channel();
        let now = clock::now();
        let sender = self.submit_tx.as_ref().ok_or_else(|| PipelineError::Runtime {
            stage: "submit",
            detail: "runtime already shut down".into(),
        })?;
        lock_metrics(&self.metrics).note_submit(now);
        sender.send(Request { input, enqueued: now, reply }).map_err(|_| {
            PipelineError::Runtime { stage: "submit", detail: "batcher thread terminated".into() }
        })?;
        Ok(PredictionHandle { rx })
    }

    /// A snapshot of the serving statistics so far.
    pub fn metrics(&self) -> ServingMetrics {
        lock_metrics(&self.metrics).snapshot()
    }

    /// Folds this runtime's accumulated serving history into `target`
    /// (used by the replica set to roll per-replica statistics into one
    /// cluster view).
    pub fn merge_metrics_into(&self, target: &mut ServingAccumulator) {
        target.merge_from(&lock_metrics(&self.metrics));
    }

    /// Graceful shutdown: closes the queue, lets the batcher execute
    /// every request already submitted (all handles still resolve),
    /// joins every thread, and returns the final statistics.
    pub fn shutdown(mut self) -> ServingMetrics {
        self.teardown();
        let snapshot = lock_metrics(&self.metrics).snapshot();
        snapshot
    }

    fn teardown(&mut self) {
        // Dropping the sender disconnects the queue; the collector
        // drains buffered requests (mpsc delivers them before
        // reporting disconnection), then exits and joins its workers.
        self.submit_tx.take();
        if let Some(handle) = self.collector.take() {
            let _ = handle.join();
        }
    }
}

impl<E: BatchEngine> Drop for InferenceRuntime<E> {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn collector_loop<E: BatchEngine>(
    engine: Arc<E>,
    config: RuntimeConfig,
    kernel_parallel: bool,
    rx: Receiver<Request<E>>,
    metrics: Arc<Mutex<ServingAccumulator>>,
) {
    // The pool is owned here so its Drop (join) runs when serving ends.
    // If the OS refuses the extra threads, degrade to collector-thread
    // extraction instead of failing the whole runtime.
    // When the tensor kernels themselves run parallel, the inner pool is
    // redundant layering (both would compete for the same cores), so the
    // extract stage runs on the collector thread and lets the kernels
    // fan out instead.
    let pool = if config.workers > 1 && !kernel_parallel {
        let worker_engine = engine.clone();
        WorkerPool::new(config.workers, move |chunk: Chunk<E>| {
            // Re-root this worker's span stack under the batch's
            // `request` span (a no-op when no recorder is installed).
            let _ctx = chunk.ctx.as_deref().map(nshd_obs::enter_context);
            let partials = worker_engine.extract(&chunk.snapshot, &chunk.inputs);
            // The collector hanging up mid-batch only happens on panic;
            // nothing useful to do with the error.
            let _ = chunk.done.send((chunk.index, partials));
        })
        .ok()
    } else {
        None
    };

    loop {
        // Block for the first request of the next batch. `recv` only
        // errs once the queue is disconnected AND empty, so every
        // submitted request is still served before shutdown.
        let first = match rx.recv() {
            Ok(request) => request,
            Err(_) => break,
        };
        let mut batch = vec![first];
        let deadline = clock::now() + config.max_wait;
        while batch.len() < config.max_batch {
            let now = clock::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                // Timeout → flush the tail batch; Disconnected implies
                // the queue is also empty, so flush and let the outer
                // `recv` terminate the loop.
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        run_batch(&*engine, pool.as_ref(), batch, &metrics);
    }
}

/// Runs the extract stage, data-parallel across the pool when one is
/// available; partials are reassembled in submission order.
fn extract_batch<E: BatchEngine>(
    engine: &E,
    snapshot: &Arc<E::Snapshot>,
    pool: Option<&WorkerPool<Chunk<E>>>,
    inputs: Vec<E::Input>,
    ctx: Option<&str>,
) -> Result<Vec<E::Partial>, PipelineError> {
    let n = inputs.len();
    let pool = match pool {
        Some(pool) if n > 1 => pool,
        _ => return engine.extract(snapshot, &inputs),
    };
    // Contiguous chunks, one per worker, front-loading the remainder;
    // reassembled by index so partials stay in submission order no
    // matter which worker finishes first.
    let chunks = pool.len().min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let (done_tx, done_rx) = channel();
    let mut iter = inputs.into_iter();
    for index in 0..chunks {
        let size = base + usize::from(index < extra);
        let chunk_inputs: Vec<E::Input> = iter.by_ref().take(size).collect();
        let chunk = Chunk {
            index,
            inputs: chunk_inputs,
            snapshot: snapshot.clone(),
            ctx: ctx.map(str::to_owned),
            done: done_tx.clone(),
        };
        pool.send(index, chunk)?;
    }
    drop(done_tx);
    let mut parts: Vec<Option<Vec<E::Partial>>> = (0..chunks).map(|_| None).collect();
    for _ in 0..chunks {
        let (index, chunk_partials) = done_rx.recv().map_err(|_| PipelineError::Runtime {
            stage: "extract",
            detail: "worker thread died mid-batch".into(),
        })?;
        parts[index] = Some(chunk_partials?);
    }
    let mut partials = Vec::with_capacity(n);
    for part in parts {
        partials.extend(part.ok_or_else(|| PipelineError::Runtime {
            stage: "extract",
            detail: "a chunk never reported its partials".into(),
        })?);
    }
    Ok(partials)
}

fn run_batch<E: BatchEngine>(
    engine: &E,
    pool: Option<&WorkerPool<Chunk<E>>>,
    batch: Vec<Request<E>>,
    metrics: &Mutex<ServingAccumulator>,
) {
    let n = batch.len();
    let mut inputs = Vec::with_capacity(n);
    let mut enqueued = Vec::with_capacity(n);
    let mut replies = Vec::with_capacity(n);
    for request in batch {
        inputs.push(request.input);
        enqueued.push(request.enqueued);
        replies.push(request.reply);
    }

    // One `request` span per executed batch; the engine's stage spans
    // (extract/encode/score) nest under it, including extract work done
    // on pool workers (they re-enter `ctx`).
    let exec_start = clock::now();
    let span = nshd_obs::span("request");
    let ctx = nshd_obs::current_path();
    // Pin the engine state exactly once per batch: every chunk of the
    // extract stage and the finish stage see this one snapshot, so a
    // hot-swap that lands mid-batch only affects *later* batches.
    let snapshot = engine.snapshot();
    let outputs =
        extract_batch(engine, &snapshot, pool, inputs, ctx.as_deref()).and_then(|partials| {
            let outputs = engine.finish(&snapshot, partials)?;
            if outputs.len() == n {
                Ok(outputs)
            } else {
                Err(PipelineError::Runtime {
                    stage: "finish",
                    detail: format!("engine returned {} outputs for {n} requests", outputs.len()),
                })
            }
        });
    drop(span);

    let done = clock::now();
    lock_metrics(metrics).note_batch(
        n,
        enqueued
            .iter()
            .map(|&t| (exec_start.saturating_duration_since(t), done.saturating_duration_since(t))),
        done.saturating_duration_since(exec_start),
        done,
    );
    match outputs {
        Ok(outputs) => {
            for (reply, output) in replies.into_iter().zip(outputs) {
                // The caller may have dropped its handle; its business.
                let _ = reply.send(Ok(output));
            }
        }
        // A failed batch fails every handle in it with the same report;
        // the runtime itself keeps serving subsequent batches.
        Err(e) => {
            for reply in replies {
                let _ = reply.send(Err(e.clone()));
            }
        }
    }
}
