//! Deterministic fault injection for the serving tier.
//!
//! [`ChaosEngine`] wraps any [`BatchEngine`] and misbehaves on command:
//! a shared [`ChaosSwitch`] flips the wrapped replica between healthy
//! operation, injected extract-stage stalls, and hard failures — while
//! live traffic is in flight. Combined with `nshd_hdc::FaultScenario`
//! memory corruption (see `NshdEngine::degraded` in `nshd-core`), this
//! gives chaos tests and
//! the `cluster_bench` harness the full fault matrix: slow replicas,
//! failing replicas, and silently-degraded replicas, all injected
//! deterministically so the survivor invariant (healthy replicas'
//! predictions stay bit-identical to a fault-free run) is checkable.
//!
//! Thread-death faults (a panicking engine killing the collector) are
//! exercised from the integration tests instead: library code in this
//! crate is panic-free by construction, so the panicking engine lives
//! with the tests that need it.

use crate::engine::BatchEngine;
use nshd_core::PipelineError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a [`ChaosEngine`] does with the next extract call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Delegate untouched to the wrapped engine.
    Healthy,
    /// Sleep for the given duration, then delegate — a slow replica.
    /// Long stalls surface as deadline timeouts at the router.
    Stall(Duration),
    /// Fail the batch with a typed `chaos` error — a crashing replica
    /// that can later heal (flip the switch back to
    /// [`Healthy`](ChaosMode::Healthy) and half-open probes re-admit
    /// it).
    Fail,
    /// Fail every batch permanently — a dead replica that never heals.
    /// Behaviourally like [`Fail`](ChaosMode::Fail) at the router
    /// (errors feed the breaker), but chaos harnesses treat it as
    /// terminal and never flip the switch back.
    Kill,
}

#[derive(Debug)]
struct SwitchInner {
    mode: Mutex<ChaosMode>,
    injected: AtomicU64,
}

/// Shared control handle for one [`ChaosEngine`]. Clones share state:
/// the test (or bench driver) keeps one clone and flips the mode while
/// the wrapped replica serves traffic through the other.
#[derive(Debug, Clone)]
pub struct ChaosSwitch {
    inner: Arc<SwitchInner>,
}

impl Default for ChaosSwitch {
    fn default() -> Self {
        ChaosSwitch::new()
    }
}

impl ChaosSwitch {
    /// A switch starting in [`ChaosMode::Healthy`].
    #[must_use]
    pub fn new() -> ChaosSwitch {
        ChaosSwitch {
            inner: Arc::new(SwitchInner {
                mode: Mutex::new(ChaosMode::Healthy),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Flips the fault mode; takes effect on the next extract call.
    pub fn set(&self, mode: ChaosMode) {
        *lock_mode(&self.inner.mode) = mode;
    }

    /// The currently configured fault mode.
    pub fn mode(&self) -> ChaosMode {
        *lock_mode(&self.inner.mode)
    }

    /// How many faults (stalls and failures) have been injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Acquire)
    }

    fn note_injected(&self) {
        self.inner.injected.fetch_add(1, Ordering::AcqRel);
    }
}

/// Locks the mode mutex, recovering from poisoning (the switch stays
/// usable even if a panic ever crossed it).
fn lock_mode(mode: &Mutex<ChaosMode>) -> std::sync::MutexGuard<'_, ChaosMode> {
    mode.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A [`BatchEngine`] decorator that injects faults on command.
///
/// Faults hit the **extract** stage — the data-parallel stage the
/// runtime distributes — so an injected failure exercises exactly the
/// path a real malformed batch or resource failure would take: the
/// batch's handles all fail with a typed [`PipelineError`], the replica
/// process survives, and the router's circuit breaker sees the
/// failures.
///
/// # Examples
///
/// ```no_run
/// use nshd_core::NshdEngine;
/// use nshd_runtime::{ChaosEngine, ChaosMode, ClusterConfig, ReplicaSet};
/// use std::sync::Arc;
/// # let engine: NshdEngine = unimplemented!();
/// let (victim, switch) = ChaosEngine::new(Arc::new(engine.clone()));
/// let replicas = vec![Arc::new(ChaosEngine::passthrough(Arc::new(engine))), Arc::new(victim)];
/// let set = ReplicaSet::new(replicas, ClusterConfig::default()).unwrap();
/// switch.set(ChaosMode::Fail); // replica 1 starts failing mid-traffic
/// ```
pub struct ChaosEngine<E: BatchEngine> {
    inner: Arc<E>,
    switch: ChaosSwitch,
}

impl<E: BatchEngine> ChaosEngine<E> {
    /// Wraps `inner`, returning the engine and the switch that controls
    /// it (initially [`ChaosMode::Healthy`]).
    #[must_use]
    pub fn new(inner: Arc<E>) -> (ChaosEngine<E>, ChaosSwitch) {
        let switch = ChaosSwitch::new();
        let engine = ChaosEngine { inner, switch: switch.clone() };
        (engine, switch)
    }

    /// Wraps `inner` with a switch nobody else holds: a permanently
    /// healthy decorator, so homogeneous replica sets can mix faultable
    /// and non-faultable replicas of one engine type.
    #[must_use]
    pub fn passthrough(inner: Arc<E>) -> ChaosEngine<E> {
        ChaosEngine { inner, switch: ChaosSwitch::new() }
    }

    /// The switch controlling this engine.
    #[must_use]
    pub fn switch(&self) -> ChaosSwitch {
        self.switch.clone()
    }
}

impl<E: BatchEngine> BatchEngine for ChaosEngine<E> {
    type Input = E::Input;
    type Partial = E::Partial;
    type Output = E::Output;
    // Snapshot pinning passes straight through: a batch served through a
    // chaos decorator pins the *inner* engine's snapshot, so hot-swap
    // determinism is testable under injected stalls.
    type Snapshot = E::Snapshot;

    fn snapshot(&self) -> Arc<Self::Snapshot> {
        self.inner.snapshot()
    }

    fn extract(
        &self,
        snapshot: &Self::Snapshot,
        chunk: &[Self::Input],
    ) -> Result<Vec<Self::Partial>, PipelineError> {
        match self.switch.mode() {
            ChaosMode::Healthy => self.inner.extract(snapshot, chunk),
            ChaosMode::Stall(pause) => {
                self.switch.note_injected();
                std::thread::sleep(pause);
                self.inner.extract(snapshot, chunk)
            }
            ChaosMode::Fail => {
                self.switch.note_injected();
                Err(PipelineError::Runtime {
                    stage: "chaos",
                    detail: "injected transient fault".into(),
                })
            }
            ChaosMode::Kill => {
                self.switch.note_injected();
                Err(PipelineError::Runtime {
                    stage: "chaos",
                    detail: "injected permanent fault (replica killed)".into(),
                })
            }
        }
    }

    fn finish(
        &self,
        snapshot: &Self::Snapshot,
        partials: Vec<Self::Partial>,
    ) -> Result<Vec<Self::Output>, PipelineError> {
        self.inner.finish(snapshot, partials)
    }

    fn verify(&self) -> Result<(), PipelineError> {
        self.inner.verify()
    }
}
