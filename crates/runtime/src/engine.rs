//! The engine abstraction the runtime batches over, and its
//! implementation for the NSHD pipeline.

use nshd_core::{NshdEngine, PipelineError};
use nshd_tensor::Tensor;
use std::sync::Arc;

/// A two-stage batch-inference engine the serving runtime can drive.
///
/// The split mirrors how batched NSHD inference parallelises:
///
/// - [`extract`](BatchEngine::extract) is the **data-parallel** stage.
///   The runtime may slice one collected batch into chunks and run
///   `extract` concurrently on several workers; each chunk's partials
///   are independent of every other chunk.
/// - [`finish`](BatchEngine::finish) is the **batch-level** stage, run
///   once over the reassembled partials of the whole batch (in
///   submission order) — for NSHD this is where the single encode GEMM
///   and the single memory `matmul_bt` happen.
///
/// Both stages report failures as [`PipelineError`] instead of
/// panicking: a malformed request must fail *that request's* handle,
/// not kill a worker thread. [`verify`](BatchEngine::verify) runs once
/// at [`InferenceRuntime`](crate::InferenceRuntime) construction so a
/// misconfigured engine is rejected before any thread is spawned.
///
/// Implementations must be `Send + Sync`: one engine instance is shared
/// by reference across every worker thread.
pub trait BatchEngine: Send + Sync + 'static {
    /// One inference request's payload.
    type Input: Send + 'static;
    /// Per-sample intermediate produced by the data-parallel stage.
    type Partial: Send + 'static;
    /// Per-sample final answer.
    type Output: Send + 'static;
    /// The immutable state one batch is served against. Engines whose
    /// state never changes mid-traffic use `()`; hot-swappable engines
    /// (like `nshd-glue`'s ensemble) publish a copy-on-write snapshot
    /// here. The runtime pins **exactly one** snapshot per batch
    /// ([`snapshot`](BatchEngine::snapshot) is called once, before the
    /// extract stage) and threads it through both stages, so a
    /// concurrent swap never produces a torn batch: every request in a
    /// batch is answered by the snapshot current at batch start.
    type Snapshot: Send + Sync + 'static;

    /// Pins the engine state one batch will be served against. Called
    /// once per batch, before [`extract`](BatchEngine::extract); the
    /// same snapshot is handed to every chunk of the batch and to
    /// [`finish`](BatchEngine::finish).
    fn snapshot(&self) -> Arc<Self::Snapshot>;

    /// Processes a chunk of inputs into one partial per input, in
    /// order. Must be pure with respect to chunking: splitting a batch
    /// differently must not change any sample's partial.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the chunk cannot be processed
    /// (malformed inputs); the runtime fails every handle in the batch
    /// with a clone of the error.
    fn extract(
        &self,
        snapshot: &Self::Snapshot,
        chunk: &[Self::Input],
    ) -> Result<Vec<Self::Partial>, PipelineError>;

    /// Turns the whole batch's partials (submission order) into one
    /// output per partial, in the same order.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the batch cannot be completed;
    /// the runtime fails every handle in the batch with a clone of the
    /// error.
    fn finish(
        &self,
        snapshot: &Self::Snapshot,
        partials: Vec<Self::Partial>,
    ) -> Result<Vec<Self::Output>, PipelineError>;

    /// Static self-check run once before the runtime spawns any thread.
    /// The default accepts everything; engines with internal invariants
    /// (like [`NshdEngine`]'s stage dimensions) override it.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] describing why the engine must not
    /// be served.
    fn verify(&self) -> Result<(), PipelineError> {
        Ok(())
    }
}

/// NSHD serving: inputs are CHW image tensors, the data-parallel stage
/// is truncated-CNN feature extraction (+ scaling + manifold), and the
/// batch-level stage is the GEMM encode plus associative-memory scoring.
impl BatchEngine for NshdEngine {
    type Input = Tensor;
    type Partial = Vec<f32>;
    type Output = usize;
    // The NSHD pipeline's state is immutable once constructed.
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), chunk: &[Tensor]) -> Result<Vec<Vec<f32>>, PipelineError> {
        self.try_extract_values(chunk)
    }

    fn finish(&self, _snapshot: &(), partials: Vec<Vec<f32>>) -> Result<Vec<usize>, PipelineError> {
        self.try_finish_values(&partials)
    }

    fn verify(&self) -> Result<(), PipelineError> {
        NshdEngine::verify(self).map_err(PipelineError::from)
    }
}
