//! The engine abstraction the runtime batches over, and its
//! implementation for the NSHD pipeline.

use nshd_core::NshdEngine;
use nshd_tensor::Tensor;

/// A two-stage batch-inference engine the serving runtime can drive.
///
/// The split mirrors how batched NSHD inference parallelises:
///
/// - [`extract`](BatchEngine::extract) is the **data-parallel** stage.
///   The runtime may slice one collected batch into chunks and run
///   `extract` concurrently on several workers; each chunk's partials
///   are independent of every other chunk.
/// - [`finish`](BatchEngine::finish) is the **batch-level** stage, run
///   once over the reassembled partials of the whole batch (in
///   submission order) — for NSHD this is where the single encode GEMM
///   and the single memory `matmul_bt` happen.
///
/// Implementations must be `Send + Sync`: one engine instance is shared
/// by reference across every worker thread.
pub trait BatchEngine: Send + Sync + 'static {
    /// One inference request's payload.
    type Input: Send + 'static;
    /// Per-sample intermediate produced by the data-parallel stage.
    type Partial: Send + 'static;
    /// Per-sample final answer.
    type Output: Send + 'static;

    /// Processes a chunk of inputs into one partial per input, in
    /// order. Must be pure with respect to chunking: splitting a batch
    /// differently must not change any sample's partial.
    fn extract(&self, chunk: &[Self::Input]) -> Vec<Self::Partial>;

    /// Turns the whole batch's partials (submission order) into one
    /// output per partial, in the same order.
    fn finish(&self, partials: Vec<Self::Partial>) -> Vec<Self::Output>;
}

/// NSHD serving: inputs are CHW image tensors, the data-parallel stage
/// is truncated-CNN feature extraction (+ scaling + manifold), and the
/// batch-level stage is the GEMM encode plus associative-memory scoring.
impl BatchEngine for NshdEngine {
    type Input = Tensor;
    type Partial = Vec<f32>;
    type Output = usize;

    fn extract(&self, chunk: &[Tensor]) -> Vec<Vec<f32>> {
        self.extract_values(chunk)
    }

    fn finish(&self, partials: Vec<Vec<f32>>) -> Vec<usize> {
        self.finish_values(&partials)
    }
}
