//! # nshd-runtime
//!
//! A batched, multi-threaded inference **serving runtime** for NSHD
//! models, built entirely on `std` (threads + mpsc channels).
//!
//! Individual requests trickle in one image at a time, but the NSHD
//! pipeline is dramatically cheaper per sample when run batched: one
//! NCHW pass through the truncated teacher, one dense GEMM for HD
//! encoding, one `matmul_bt` against the class memory. The runtime
//! bridges that gap with **micro-batching**:
//!
//! 1. [`InferenceRuntime::submit`] enqueues a request and returns a
//!    [`PredictionHandle`] immediately.
//! 2. A collector thread assembles requests into batches of up to
//!    `max_batch`, waiting at most `max_wait` after a batch opens
//!    (tail batches flush on the deadline).
//! 3. The data-parallel extract stage is sliced across a
//!    [`WorkerPool`]; the batch-level finish stage runs once for the
//!    whole batch; every handle then resolves in submission order.
//!
//! Serving statistics (requests/s, batch-size histogram, p50/p95/p99
//! latency, queue-wait vs. execute time) are accounted through
//! [`nshd_obs::ServingAccumulator`] and exported as JSON via
//! [`RuntimeMetrics::to_json`]. When a global [`nshd_obs`] recorder is
//! installed, every executed batch additionally opens a `request` span
//! under which the engine's extract/encode/score stage spans nest —
//! including extract work sliced across pool workers.
//!
//! The engine abstraction is [`BatchEngine`]; the NSHD implementation
//! is [`nshd_core::NshdEngine`], whose batched predictions are
//! bit-identical (at the argmax level) to per-sample
//! [`nshd_core::NshdModel::predict`] — see `tests/determinism.rs`.
//!
//! Every failure mode is reported, never panicked: construction
//! statically verifies the engine and configuration (rejecting a
//! misconfigured pipeline before any thread is spawned), and a batch
//! the engine rejects fails only that batch's [`PredictionHandle`]s
//! with a [`nshd_core::PipelineError`].
//!
//! On top of the single-replica runtime sits the **fault-tolerant
//! serving tier**: a [`ReplicaSet`] holds N independent engine
//! snapshots, each behind its own [`InferenceRuntime`], and adds
//! health-checked routing (per-replica circuit breakers with half-open
//! probes), per-request deadlines with bounded retry and exponential
//! backoff ([`RetryPolicy`]), admission control that sheds load with a
//! typed `Overloaded` error instead of queueing to death, and graceful
//! per-replica drain. [`ChaosEngine`] injects deterministic stalls and
//! failures into any replica for chaos testing — see `tests/chaos.rs`
//! and the `cluster_bench` harness in `nshd-bench`.
//!
//! # Examples
//!
//! ```no_run
//! use nshd_core::{NshdEngine, NshdModel};
//! use nshd_runtime::{InferenceRuntime, RuntimeConfig};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! # let model: NshdModel = unimplemented!();
//! # let images: Vec<nshd_tensor::Tensor> = vec![];
//! let engine = Arc::new(NshdEngine::new(&model)?);
//! let runtime = InferenceRuntime::new(
//!     engine,
//!     RuntimeConfig { workers: 4, max_batch: 32, max_wait: Duration::from_millis(1) },
//! )?;
//! let handles: Vec<_> = images
//!     .into_iter()
//!     .map(|img| runtime.submit(img))
//!     .collect::<Result<_, _>>()?;
//! let predictions: Vec<usize> = handles
//!     .into_iter()
//!     .map(|h| h.wait())
//!     .collect::<Result<_, _>>()?;
//! println!("{}", runtime.shutdown().to_json());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod batcher;
mod chaos;
mod engine;
mod pool;
mod replica;
mod retry;

pub use batcher::{InferenceRuntime, PredictionHandle, RuntimeConfig, WaitOutcome};
pub use chaos::{ChaosEngine, ChaosMode, ChaosSwitch};
pub use engine::BatchEngine;
/// Serving statistics, kept under the historical `RuntimeMetrics` name.
/// The type itself now lives in [`nshd_obs`] (as
/// [`ServingMetrics`](nshd_obs::ServingMetrics)) so the bench harness
/// and the runtime share one schema.
pub use nshd_obs::ServingMetrics as RuntimeMetrics;
pub use pool::WorkerPool;
pub use replica::{ClusterConfig, ClusterMetrics, ClusterReply, ReplicaMetrics, ReplicaSet};
pub use retry::{BreakerConfig, ReplicaState, RetryPolicy};
