//! Built-in throughput and latency accounting for the serving runtime.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Mutable accounting state updated by the batcher thread.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    /// Completed-request latencies (submit → reply), microseconds.
    latencies_us: Vec<f64>,
    /// Executed batch sizes.
    batch_sizes: Vec<usize>,
    /// First request submission, set once.
    first_submit: Option<Instant>,
    /// Most recent batch completion.
    last_complete: Option<Instant>,
}

impl MetricsInner {
    pub(crate) fn note_submit(&mut self, now: Instant) {
        self.first_submit.get_or_insert(now);
    }

    pub(crate) fn note_batch(&mut self, size: usize, latencies: impl Iterator<Item = Duration>) {
        self.batch_sizes.push(size);
        self.latencies_us.extend(latencies.map(|d| d.as_secs_f64() * 1e6));
        self.last_complete = Some(Instant::now());
    }

    pub(crate) fn snapshot(&self) -> RuntimeMetrics {
        let mut sorted = self.latencies_us.clone();
        // `total_cmp` gives a total order even if a latency were ever
        // non-finite, so the snapshot path cannot panic.
        sorted.sort_by(f64::total_cmp);
        let mut histogram = BTreeMap::new();
        for &s in &self.batch_sizes {
            *histogram.entry(s).or_insert(0u64) += 1;
        }
        let requests = sorted.len() as u64;
        let elapsed = match (self.first_submit, self.last_complete) {
            (Some(a), Some(b)) if b > a => (b - a).as_secs_f64(),
            _ => 0.0,
        };
        RuntimeMetrics {
            requests,
            batches: self.batch_sizes.len() as u64,
            mean_batch: if self.batch_sizes.is_empty() {
                0.0
            } else {
                self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
            },
            batch_histogram: histogram.into_iter().collect(),
            p50_us: percentile(&sorted, 0.50),
            p95_us: percentile(&sorted, 0.95),
            p99_us: percentile(&sorted, 0.99),
            requests_per_sec: if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 },
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample; 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A point-in-time summary of the runtime's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeMetrics {
    /// Requests completed (replies delivered).
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// `(batch_size, count)` pairs, ascending by size.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Median request latency (submit → reply), microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Completed requests per second over the active serving window
    /// (first submission to last completion).
    pub requests_per_sec: f64,
}

impl RuntimeMetrics {
    /// Serialises the metrics as a JSON object (the workspace builds
    /// without serde, so this is hand-rolled like `nshd-bench`'s
    /// reports).
    pub fn to_json(&self) -> String {
        let histogram: Vec<String> =
            self.batch_histogram.iter().map(|(s, c)| format!("[{s},{c}]")).collect();
        format!(
            concat!(
                "{{\"requests\":{},\"batches\":{},\"mean_batch\":{:.2},",
                "\"batch_histogram\":[{}],",
                "\"latency_us\":{{\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                "\"requests_per_sec\":{:.1}}}"
            ),
            self.requests,
            self.batches,
            self.mean_batch,
            histogram.join(","),
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.requests_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let mut inner = MetricsInner::default();
        let t0 = Instant::now();
        inner.note_submit(t0);
        inner.note_batch(4, (1..=4).map(|i| Duration::from_micros(i * 100)));
        inner.note_batch(2, (1..=2).map(|i| Duration::from_micros(i * 50)));
        let m = inner.snapshot();
        assert_eq!(m.requests, 6);
        assert_eq!(m.batches, 2);
        assert!((m.mean_batch - 3.0).abs() < 1e-9);
        assert_eq!(m.batch_histogram, vec![(2, 1), (4, 1)]);
        assert!(m.p50_us > 0.0 && m.p99_us >= m.p95_us && m.p95_us >= m.p50_us);
        assert!(m.requests_per_sec > 0.0);
    }

    #[test]
    fn json_has_every_field() {
        let mut inner = MetricsInner::default();
        inner.note_submit(Instant::now());
        inner.note_batch(3, (1..=3).map(Duration::from_micros));
        let json = inner.snapshot().to_json();
        for key in [
            "\"requests\":",
            "\"batches\":",
            "\"batch_histogram\":[[3,1]]",
            "\"latency_us\":",
            "\"p99\":",
            "\"requests_per_sec\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
