//! A minimal std-only worker pool with per-worker channels and
//! join-on-drop shutdown.

use nshd_core::PipelineError;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// A fixed set of worker threads, each fed through its own channel.
///
/// Per-worker channels (rather than one shared work queue) keep job
/// dispatch deterministic: the batcher assigns chunk `i` of a batch to
/// worker `i % workers`, so no locking or work-stealing is involved.
///
/// Dropping the pool closes every channel and joins every thread; jobs
/// already sent are still processed before a worker exits (channel
/// receivers drain buffered messages after disconnect).
pub struct WorkerPool<J: Send + 'static> {
    senders: Vec<Sender<J>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads, each running `handler` on every job it
    /// receives until the pool is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `workers == 0` or the OS
    /// refuses to spawn a thread; threads already spawned are joined
    /// before the error is returned (the partial pool is dropped).
    #[must_use = "the pool is only constructed when every worker spawns"]
    pub fn new<F>(workers: usize, handler: F) -> Result<Self, PipelineError>
    where
        F: Fn(J) + Send + Sync + Clone + 'static,
    {
        if workers == 0 {
            return Err(PipelineError::Runtime {
                stage: "pool",
                detail: "a worker pool needs at least one thread".into(),
            });
        }
        let mut pool = WorkerPool {
            senders: Vec::with_capacity(workers),
            handles: Vec::with_capacity(workers),
        };
        for i in 0..workers {
            let (tx, rx) = channel::<J>();
            let handler = handler.clone();
            let spawned =
                std::thread::Builder::new().name(format!("nshd-worker-{i}")).spawn(move || {
                    for job in rx {
                        handler(job);
                    }
                });
            match spawned {
                Ok(handle) => {
                    pool.senders.push(tx);
                    pool.handles.push(handle);
                }
                Err(e) => {
                    return Err(PipelineError::Runtime {
                        stage: "pool",
                        detail: format!("failed to spawn worker thread {i}: {e}"),
                    });
                }
            }
        }
        Ok(pool)
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has no workers (never true for a live pool).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a job to worker `worker`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `worker` is out of range
    /// or that worker's thread has terminated.
    pub fn send(&self, worker: usize, job: J) -> Result<(), PipelineError> {
        let sender = self.senders.get(worker).ok_or_else(|| PipelineError::Runtime {
            stage: "pool",
            detail: format!("worker index {worker} out of range ({} workers)", self.senders.len()),
        })?;
        sender.send(job).map_err(|_| PipelineError::Runtime {
            stage: "pool",
            detail: format!("worker thread {worker} terminated early"),
        })
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Closing the channels lets each worker's `for job in rx` loop
        // finish; then wait for them so no thread outlives the pool.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked already reported via the done
            // channel going dead; nothing more to do here.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_workers_process_their_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let pool = WorkerPool::new(3, move |j: usize| {
            c.fetch_add(j, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        for i in 0..9 {
            pool.send(i % 3, 1000 + i).unwrap();
        }
        drop(pool); // joins: every sent job must have run
        let expect: usize = (0..9).map(|i| 1000 + i).sum();
        assert_eq!(counter.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn drop_with_no_jobs_terminates() {
        let pool = WorkerPool::new(2, |_: ()| {}).unwrap();
        drop(pool); // must not hang
    }

    #[test]
    fn zero_workers_and_bad_indices_are_reported() {
        let Err(err) = WorkerPool::new(0, |_: ()| {}) else {
            panic!("zero-worker pool accepted");
        };
        assert!(err.to_string().contains("at least one"), "{err}");
        let pool = WorkerPool::new(1, |_: ()| {}).unwrap();
        let err = pool.send(5, ()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
