//! A minimal std-only worker pool with per-worker channels and
//! join-on-drop shutdown.

use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// A fixed set of worker threads, each fed through its own channel.
///
/// Per-worker channels (rather than one shared work queue) keep job
/// dispatch deterministic: the batcher assigns chunk `i` of a batch to
/// worker `i % workers`, so no locking or work-stealing is involved.
///
/// Dropping the pool closes every channel and joins every thread; jobs
/// already sent are still processed before a worker exits (channel
/// receivers drain buffered messages after disconnect).
pub struct WorkerPool<J: Send + 'static> {
    senders: Vec<Sender<J>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads, each running `handler` on every job it
    /// receives until the pool is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new<F>(workers: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + Clone + 'static,
    {
        assert!(workers > 0, "a worker pool needs at least one thread");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<J>();
            let handler = handler.clone();
            let handle = std::thread::Builder::new()
                .name(format!("nshd-worker-{i}"))
                .spawn(move || {
                    for job in rx {
                        handler(job);
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has no workers (never true for a live pool).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a job to worker `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or the worker thread died.
    pub fn send(&self, worker: usize, job: J) {
        self.senders[worker].send(job).expect("worker thread terminated early");
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Closing the channels lets each worker's `for job in rx` loop
        // finish; then wait for them so no thread outlives the pool.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked already reported via the done
            // channel going dead; nothing more to do here.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_workers_process_their_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let pool = WorkerPool::new(3, move |j: usize| {
            c.fetch_add(j, Ordering::SeqCst);
        });
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        for i in 0..9 {
            pool.send(i % 3, 1000 + i);
        }
        drop(pool); // joins: every sent job must have run
        let expect: usize = (0..9).map(|i| 1000 + i).sum();
        assert_eq!(counter.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn drop_with_no_jobs_terminates() {
        let pool = WorkerPool::new(2, |_: ()| {});
        drop(pool); // must not hang
    }
}
